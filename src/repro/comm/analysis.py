"""Communication analysis: extract every transfer a compiled program
needs, with its pattern classification and its *placement level* (how
far out of the loop nest message vectorization can hoist it).

For an assignment ``lhs = rhs`` executed by the owners of ``lhs``:

* every rhs reference (and every lhs subscript reference) whose data
  position differs from the executor position yields a transfer;
* the transfer's placement is bounded by where the transferred value is
  produced — "This communication takes place inside the i-loop, because
  of a dependence from the definition of x to the use of x inside the
  loop" (paper Section 2.1);
* scalar mappings decide positions: replicated / private-no-align data
  is free, aligned data lives with its target.

Privatized control-flow predicates (Section 4) are delivered to the
union of the dependent statements' executors; non-privatized ones to
all processors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.context import AnalysisContext
from ..core.locality import (
    Position,
    all_any,
    classify_transfer,
    comm_free,
    position_of_array_ref,
)
from ..core.mapping_kinds import ControlFlowDecision, ReductionMapping
from ..ir.expr import ArrayElemRef, Ref, ScalarRef
from ..ir.stmt import AssignStmt, IfStmt, LoopStmt, Stmt
from ..mapping.descriptors import ArrayMapping
from ..partition.owner_computes import ExecutorInfo
from .events import CommEvent, CommReport, ReduceEvent


@dataclass
class CommOptions:
    #: disable to model a placement-blind compiler (every transfer sits
    #: in the innermost loop) — cost-model ablation
    message_vectorization: bool = True


class CommAnalysis:
    def __init__(
        self,
        ctx: AnalysisContext,
        scalar_pass,
        effective_mappings: dict[str, ArrayMapping],
        executors: dict[int, ExecutorInfo],
        cf_decisions: dict[int, ControlFlowDecision],
        options: CommOptions | None = None,
    ):
        self.ctx = ctx
        self.scalar_pass = scalar_pass
        self.mappings = effective_mappings
        self.executors = executors
        self.cf_decisions = cf_decisions
        self.options = options or CommOptions()

    # ------------------------------------------------------------------

    def run(self) -> CommReport:
        report = CommReport()
        for stmt in self.ctx.proc.all_stmts():
            if isinstance(stmt, AssignStmt):
                self._analyze_assign(stmt, report)
            elif isinstance(stmt, IfStmt):
                self._analyze_predicate(stmt, report)
            elif isinstance(stmt, LoopStmt):
                self._analyze_bounds(stmt, report)
        self._collect_reductions(report)
        for ordinal, event in enumerate(report.events):
            event.ordinal = ordinal
        return report

    # ------------------------------------------------------------------

    def _position_of_ref(self, ref: Ref) -> Position:
        if isinstance(ref, ArrayElemRef):
            return position_of_array_ref(ref, self.mappings[ref.symbol.name])
        return self.scalar_pass.position_of_scalar_use(ref)

    def _placement(self, ref: Ref, stmt: Stmt) -> int:
        if not self.options.message_vectorization:
            return stmt.nesting_level
        return self.scalar_pass.comm_blocked_level(ref, stmt)

    def _emit(
        self,
        stmt: Stmt,
        ref: Ref,
        executor_pos: Position,
        report: CommReport,
        note: str = "",
    ) -> None:
        data_pos = self._position_of_ref(ref)
        if comm_free(data_pos, executor_pos):
            return
        pattern = classify_transfer(data_pos, executor_pos)
        report.events.append(
            CommEvent(
                stmt=stmt,
                ref=ref,
                pattern=pattern,
                placement_level=self._placement(ref, stmt),
                data_position=data_pos,
                executor_position=executor_pos,
                note=note,
            )
        )

    def _analyze_assign(self, stmt: AssignStmt, report: CommReport) -> None:
        executor = self.executors[stmt.stmt_id]
        for ref in stmt.rhs.refs():
            self._emit(stmt, ref, executor.position, report)
        if isinstance(stmt.lhs, ArrayElemRef):
            # Subscripts of the lhs decide ownership: every processor
            # evaluates the guard, so partitioned subscript data must be
            # broadcast (this is why lhs-subscript uses get the dummy
            # replicated consumer reference in the mapping algorithm).
            everyone = all_any(self.ctx.grid.rank)
            for sub in stmt.lhs.subscripts:
                for ref in sub.refs():
                    self._emit(stmt, ref, everyone, report, note="lhs subscript")

    def _analyze_predicate(self, stmt: IfStmt, report: CommReport) -> None:
        decision = self.cf_decisions.get(stmt.stmt_id)
        if decision is not None and decision.privatized and not decision.dependent_refs:
            return  # nobody needs the predicate beyond local control
        executor_pos = self._predicate_destination(stmt, decision)
        for ref in stmt.uses():
            self._emit(
                stmt,
                ref,
                executor_pos,
                report,
                note="control predicate",
            )

    def _predicate_destination(
        self, stmt: IfStmt, decision: ControlFlowDecision | None
    ) -> Position:
        """Where the predicate's data must be available: the union of
        the dependent statements' executors when the statement is
        privatized, otherwise all processors."""
        grid_rank = self.ctx.grid.rank
        if decision is None or not decision.privatized:
            return all_any(grid_rank)
        positions = []
        for dep_ref in decision.dependent_refs:
            if isinstance(dep_ref, ArrayElemRef):
                positions.append(
                    position_of_array_ref(dep_ref, self.mappings[dep_ref.symbol.name])
                )
            elif isinstance(dep_ref, ScalarRef):
                def_id = self.ctx.ssa.def_of_lhs.get(dep_ref.ref_id)
                mapping = (
                    self.scalar_pass.decisions.get(def_id) if def_id else None
                )
                positions.append(self.scalar_pass.position_of_mapping(mapping))
        if not positions:
            return all_any(grid_rank)
        return positions_union(positions, grid_rank)

    def _analyze_bounds(self, stmt: LoopStmt, report: CommReport) -> None:
        # Loop bounds are evaluated by every processor reaching the
        # loop; partitioned data in a bound must be broadcast.
        executor_pos = all_any(self.ctx.grid.rank)
        for ref in stmt.uses():
            self._emit(stmt, ref, executor_pos, report, note="loop bound")

    # ------------------------------------------------------------------

    def _collect_reductions(self, report: CommReport) -> None:
        seen: set[int] = set()
        for reduction in self.ctx.reductions:
            update = reduction.update_stmts[0]
            if update.stmt_id in seen:
                continue
            if reduction.is_array_reduction:
                array_reductions = getattr(self.scalar_pass, "array_reductions", {})
                entry = array_reductions.get(update.stmt_id)
                if entry is None:
                    continue
                _, mapping = entry
                seen.add(update.stmt_id)
                report.reduces.append(
                    ReduceEvent(
                        stmt=update,
                        loop_level=reduction.loop.level,
                        grid_dims=mapping.replicated_grid_dims,
                        op=reduction.op,
                        elements=self._array_combine_elements(reduction),
                    )
                )
                continue
            d = self.ctx.ssa.def_of_assignment(update)
            if d is None:
                continue
            mapping = self.scalar_pass.decisions.get(d.def_id)
            if not isinstance(mapping, ReductionMapping):
                continue
            if not mapping.replicated_grid_dims:
                continue  # reduction confined to one processor: no combine
            seen.add(update.stmt_id)
            report.reduces.append(
                ReduceEvent(
                    stmt=update,
                    loop_level=reduction.loop.level,
                    grid_dims=mapping.replicated_grid_dims,
                    op=reduction.op,
                    elements=len(reduction.update_stmts),
                )
            )

    def _array_combine_elements(self, reduction) -> int:
        """Elements combined per instance of an array reduction: the
        extent of each accumulator dimension whose subscript varies in
        a loop nested inside the reduction loop."""
        from ..ir.expr import affine_form

        update = reduction.update_stmts[0]
        inner_vars = {
            l.var.name
            for l in update.loops_enclosing()
            if l.level > reduction.loop.level
        }
        elements = 1
        for dim, sub in enumerate(reduction.accumulator.subscripts):
            form = affine_form(sub)
            if form is None or any(s.name in inner_vars for s in form.symbols):
                elements *= reduction.accumulator.symbol.extent(dim)
        return elements


def hoisted_loop_vars(event: CommEvent, stmt: Stmt) -> tuple[str, ...]:
    """Loop variables that remain *outside* a placed transfer: the
    enclosing loops at or above the event's placement level.  Fetch
    coalescing keys on their runtime values — two iterations that only
    differ in loops the message was hoisted out of share one message."""
    level = event.placement_level
    return tuple(
        loop.var.name for loop in stmt.loops_enclosing() if loop.level <= level
    )


def positions_union(positions: list[Position], grid_rank: int) -> Position:
    """Union of executor sets, dimension-wise: identical positions stay
    exact; differing positions widen to 'any' (conservative)."""
    from ..core.locality import ANY, forms_equal

    if not positions:
        return tuple(ANY for _ in range(grid_rank))
    result: list = []
    for g in range(grid_rank):
        dims = [p[g] for p in positions]
        first = dims[0]
        same = all(
            d.kind == first.kind
            and d.fmt == first.fmt
            and (
                d.form is None
                and first.form is None
                or (d.form is not None and first.form is not None and forms_equal(d.form, first.form))
            )
            for d in dims
        )
        result.append(first if same else ANY)
    return tuple(result)
