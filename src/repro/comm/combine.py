"""Global message combining.

Paper Section 5.3: "An examination of the message-passing code produced
by the HPF compiler showed that there is considerable scope for
improving the performance of that version by global message combining
across loop nests. The phpf compiler does not currently perform that
optimization."

This module implements that future-work optimization as an optional
post-pass over the communication report (off by default, matching the
paper's compiler):

1. **deduplication** — two references to the *same* data at the same
   placement (e.g. ``X(I, J+1)`` read by two different statements of
   one nest) need one transfer, not two;
2. **combining** — transfers of the *same array* with the *same
   pattern* at the *same placement anchor* (e.g. the ``X(I±1, J+1)``
   halo reads) are merged into a single message: one startup, summed
   payload.

The cost estimator prices a combined event with a single α and the sum
of the members' volumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.stmt import Stmt
from .events import CommEvent, CommReport


def _anchor_loop_id(stmt: Stmt, level: int) -> int:
    chain = stmt.loops_enclosing()
    if level <= 0:
        return 0
    if level <= len(chain):
        return chain[level - 1].stmt_id
    return chain[-1].stmt_id if chain else 0


def _position_key(event: CommEvent) -> tuple:
    return tuple(str(d) for d in event.data_position) + tuple(
        str(d) for d in event.executor_position
    )


def _dedupe_key(event: CommEvent) -> tuple:
    return (
        event.ref.symbol.name,
        event.placement_level,
        _anchor_loop_id(event.stmt, event.placement_level),
        str(event.pattern),
        _position_key(event),
    )


def _combine_key(event: CommEvent) -> tuple:
    return (
        event.ref.symbol.name,
        event.placement_level,
        _anchor_loop_id(event.stmt, event.placement_level),
        event.pattern.kind,
        event.pattern.offsets,
        event.pattern.bcast_dims,
    )


def combine_messages(report: CommReport) -> CommReport:
    """Return a new report with duplicate transfers removed and
    same-pattern transfers merged. Reduction combines are untouched."""
    # Stage 1: dedupe identical transfers.
    seen: dict[tuple, CommEvent] = {}
    for event in report.events:
        key = _dedupe_key(event)
        if key in seen:
            seen[key].aliases.append(event)
        else:
            seen[key] = event
    # Stage 2: merge distinct transfers of one array/pattern/anchor.
    merged: dict[tuple, CommEvent] = {}
    for event in seen.values():
        key = _combine_key(event)
        if key in merged:
            merged[key].combined_with.append(event)
        else:
            merged[key] = event
    combined = CommReport(events=list(merged.values()), reduces=list(report.reduces))
    return combined


def combining_stats(before: CommReport, after: CommReport) -> dict[str, int]:
    """Summary of what combining achieved (reporting aid)."""
    dups = sum(e.duplicates for e in after.events)
    merged = sum(len(e.combined_with) for e in after.events)
    return {
        "events_before": len(before.events),
        "events_after": len(after.events),
        "duplicates_removed": dups,
        "messages_merged": merged,
    }
