"""Communication passes, registered into the core pass registry.

Importing this module (``repro.comm.__init__`` does it, and the
``repro`` package always imports ``repro.comm``) is what wires
communication analysis into the default pipeline. This registration is
the structural replacement for the lazy ``repro.comm`` import the
driver used to hide in its function body: ``repro.core`` names these
passes in :data:`~repro.core.passes.DEFAULT_PIPELINE` but never
imports this package, so ``repro.core`` and ``repro.comm`` can be
imported in either order.
"""

from __future__ import annotations

from typing import Any

from ..core.passes import Pass, PipelineState, register_pass
from .analysis import CommAnalysis, CommOptions
from .combine import combine_messages


def _run_comm_analysis(state: PipelineState) -> dict[str, Any]:
    report = CommAnalysis(
        state["ctx"],
        state["scalar_pass"],
        state["array_result"].effective,
        state["executors"],
        state["cf_decisions"],
        CommOptions(message_vectorization=state.options.message_vectorization),
    ).run()
    return {"comm": report}


def _run_message_combining(state: PipelineState) -> dict[str, Any]:
    return {"comm": combine_messages(state["comm"])}


COMM_ANALYSIS = Pass(
    name="comm-analysis",
    run=_run_comm_analysis,
    provides=("comm",),
    requires=("ctx", "scalar_pass", "array_result", "executors", "cf_decisions"),
    option_keys=("message_vectorization",),
    cacheable=False,
)

MESSAGE_COMBINING = Pass(
    name="message-combining",
    run=_run_message_combining,
    provides=("comm",),
    requires=("comm",),
    option_keys=("combine_messages",),
    cacheable=False,
    enabled=lambda options: getattr(options, "combine_messages", False),
)


def register() -> None:
    """Idempotently (re-)register the communication passes."""
    register_pass(COMM_ANALYSIS, replace=True)
    register_pass(MESSAGE_COMBINING, replace=True)


register()
