"""Communication analysis: event extraction, message vectorization
placement, and the SP2-class cost model."""

from .analysis import CommAnalysis, CommOptions, positions_union
from .combine import combine_messages, combining_stats
from .costmodel import SP2, MachineModel, flops_of_expr
from .events import CommEvent, CommReport, ReduceEvent
from .passes import COMM_ANALYSIS, MESSAGE_COMBINING

__all__ = [
    "CommAnalysis",
    "CommOptions",
    "COMM_ANALYSIS",
    "MESSAGE_COMBINING",
    "positions_union",
    "combine_messages",
    "combining_stats",
    "SP2",
    "MachineModel",
    "flops_of_expr",
    "CommEvent",
    "CommReport",
    "ReduceEvent",
]
