"""Communication analysis: event extraction, message vectorization
placement, and the SP2-class cost model."""

from .analysis import CommAnalysis, CommOptions, positions_union
from .combine import combine_messages, combining_stats
from .costmodel import SP2, MachineModel, flops_of_expr
from .events import CommEvent, CommReport, ReduceEvent

__all__ = [
    "CommAnalysis",
    "CommOptions",
    "positions_union",
    "combine_messages",
    "combining_stats",
    "SP2",
    "MachineModel",
    "flops_of_expr",
    "CommEvent",
    "CommReport",
    "ReduceEvent",
]
