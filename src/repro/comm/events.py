"""Communication events produced by the communication analysis.

Each event says: to execute statement ``stmt``, reference ``ref`` must
be delivered to the statement's executors with transfer pattern
``pattern``, and the transfer is placed at loop nesting level
``placement_level`` (0 = hoisted before the entire loop nest — the
fully message-vectorized case; equal to the statement's nesting level =
inner-loop communication, the paper's worst case).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.locality import Position, TransferPattern
from ..ir.expr import Ref
from ..ir.stmt import Stmt


@dataclass
class CommEvent:
    stmt: Stmt
    ref: Ref
    pattern: TransferPattern
    placement_level: int
    data_position: Position
    executor_position: Position
    #: why the event exists (reporting/debugging)
    note: str = ""
    #: stable per-compile identity, assigned in program order at
    #: comm-analysis time; the simulator's fetch-coalescing keys use it
    #: (never ``id()``) so startup charging is deterministic across
    #: runs, GC, and pickle round-trips
    ordinal: int = -1
    #: exact duplicates absorbed by message combining (same data, same
    #: placement — transferred once, needed by several statements);
    #: they contribute no cost but keep their identity for the runtime
    aliases: list["CommEvent"] = field(default_factory=list)
    #: distinct transfers merged into this one by message combining
    #: (one startup, summed payload)
    combined_with: list["CommEvent"] = field(default_factory=list)

    @property
    def duplicates(self) -> int:
        return len(self.aliases)

    @property
    def is_inner_loop(self) -> bool:
        return self.placement_level >= self.stmt.nesting_level > 0

    def __str__(self) -> str:
        where = (
            "inner-loop"
            if self.is_inner_loop
            else f"vectorized@level{self.placement_level}"
        )
        return f"S{self.stmt.stmt_id}: {self.ref} {self.pattern} [{where}]"


@dataclass
class ReduceEvent:
    """Global combine of partial reduction results at the exit of the
    reduction loop: an allreduce across the replicated grid dims."""

    stmt: Stmt  # the reduction update statement
    loop_level: int  # level of the reduction loop
    grid_dims: tuple[int, ...]
    op: str
    elements: int = 1

    def __str__(self) -> str:
        dims = ",".join(str(d) for d in self.grid_dims)
        return (
            f"S{self.stmt.stmt_id}: allreduce({self.op}) over grid dims "
            f"{{{dims}}} after loop level {self.loop_level}"
        )


@dataclass
class CommReport:
    """All communication of one compiled program."""

    events: list[CommEvent] = field(default_factory=list)
    reduces: list[ReduceEvent] = field(default_factory=list)

    def inner_loop_events(self) -> list[CommEvent]:
        return [e for e in self.events if e.is_inner_loop]

    def vectorized_events(self) -> list[CommEvent]:
        return [e for e in self.events if not e.is_inner_loop]

    def events_for_stmt(self, stmt_id: int) -> list[CommEvent]:
        return [e for e in self.events if e.stmt.stmt_id == stmt_id]

    def broadcast_events(self) -> list[CommEvent]:
        return [e for e in self.events if e.pattern.kind == "broadcast"]

    def summary(self) -> str:
        lines = [
            f"{len(self.events)} transfer(s): "
            f"{len(self.inner_loop_events())} inner-loop, "
            f"{len(self.vectorized_events())} vectorized; "
            f"{len(self.reduces)} reduction combine(s)"
        ]
        for e in self.events:
            lines.append("  " + str(e))
        for r in self.reduces:
            lines.append("  " + str(r))
        return "\n".join(lines)
