"""Compatibility shim: the machine cost model lives in
:mod:`repro.model`; re-exported here because it conceptually belongs to
the communication layer."""

from ..model import SP2, MachineModel, flops_of_expr

__all__ = ["SP2", "MachineModel", "flops_of_expr"]
