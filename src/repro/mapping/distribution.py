"""Distribution formats (BLOCK / CYCLIC(k) / collapsed) and the
ownership arithmetic they induce, including local↔global index
translation used by the SPMD runtime.

All functions work on 0-based *normalized* indices (global index minus
the declared lower bound); callers normalize once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MappingError


@dataclass(frozen=True)
class DimFormat:
    """Distribution of one array dimension over one grid dimension."""

    kind: str  # "block" | "cyclic"
    extent: int  # number of array elements along the dimension
    procs: int  # grid extent it is distributed over
    chunk: int = 1  # CYCLIC(k) chunk; ignored for block

    def __post_init__(self) -> None:
        if self.kind not in ("block", "cyclic"):
            raise MappingError(f"bad distribution kind {self.kind!r}")
        if self.extent < 1 or self.procs < 1 or self.chunk < 1:
            raise MappingError(
                f"bad distribution parameters extent={self.extent} "
                f"procs={self.procs} chunk={self.chunk}"
            )

    # -- derived quantities --------------------------------------------------

    @property
    def block_size(self) -> int:
        """BLOCK distribution block size: ceil(extent / procs)."""
        return -(-self.extent // self.procs)

    # -- ownership ------------------------------------------------------------

    def owner(self, index: int) -> int:
        """Grid coordinate owning normalized ``index``."""
        if not 0 <= index < self.extent:
            raise MappingError(f"index {index} outside extent {self.extent}")
        if self.kind == "block":
            return index // self.block_size
        return (index // self.chunk) % self.procs

    # -- local section ------------------------------------------------------------

    def local_count(self, coord: int) -> int:
        """Number of elements owned by grid coordinate ``coord``."""
        if not 0 <= coord < self.procs:
            raise MappingError(f"coord {coord} outside procs {self.procs}")
        if self.kind == "block":
            start = coord * self.block_size
            if start >= self.extent:
                return 0
            return min(self.block_size, self.extent - start)
        full_cycles, rem = divmod(self.extent, self.chunk * self.procs)
        count = full_cycles * self.chunk
        offset = coord * self.chunk
        count += max(0, min(self.chunk, rem - offset))
        return count

    def to_local(self, index: int) -> int:
        """Local position (0-based, dense) of normalized global ``index``
        on its owner."""
        if self.kind == "block":
            return index % self.block_size
        cycle, within = divmod(index, self.chunk * self.procs)
        return cycle * self.chunk + within % self.chunk

    def to_global(self, coord: int, local: int) -> int:
        """Inverse of :meth:`to_local` for the section of ``coord``."""
        if self.kind == "block":
            index = coord * self.block_size + local
        else:
            cycle, within = divmod(local, self.chunk)
            index = cycle * self.chunk * self.procs + coord * self.chunk + within
        if not 0 <= index < self.extent:
            raise MappingError(
                f"local {local} on coord {coord} maps outside extent {self.extent}"
            )
        return index

    def owned_indices(self, coord: int):
        """Iterate the normalized global indices owned by ``coord``,
        ascending."""
        for local in range(self.local_count(coord)):
            yield self.to_global(coord, local)

    def max_local_count(self) -> int:
        """Maximum section size over all coordinates (allocation size)."""
        return max(self.local_count(c) for c in range(self.procs))
