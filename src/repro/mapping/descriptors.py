"""Resolved array mappings: DISTRIBUTE/ALIGN directives composed against
the processor grid into ownership descriptors.

An :class:`ArrayMapping` answers, for a global element index vector:

* which grid coordinates own it (a specific coordinate per grid
  dimension, or ``None`` meaning replicated along that dimension),
* where it lives in the owner's local section (dense packing).

Aligned arrays inherit ownership through their alignment target
(ultimately a distributed array), including '*' target dims ⇒
replication along the corresponding grid dimension — exactly the
semantics the paper relies on for ``ALIGN (i) WITH A(*) :: E, F``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..errors import MappingError
from ..ir.program import AlignSpec, DistributeSpec, Procedure
from ..ir.symbols import Symbol
from .distribution import DimFormat
from .grid import ProcessorGrid


@dataclass(frozen=True)
class GridDimRole:
    """What one grid dimension means for one array.

    kind:
      * ``repl`` — array replicated along this grid dimension;
      * ``dist`` — ``array_dim`` is distributed here with ``fmt``; the
        position on the distribution template of global index ``i`` is
        ``stride * i + norm_offset`` (0-based);
      * ``priv`` — array *privatized* along this grid dimension (paper
        Section 3.2): each processor along the dimension has its own
        per-iteration copy. For availability/ownership queries this
        behaves like replication (the local copy is always present and
        imposes no execution constraint), but it is distinct for
        reporting and for the semantics of copy-in/copy-out.
    """

    kind: str
    array_dim: int | None = None
    fmt: DimFormat | None = None
    stride: int = 1
    norm_offset: int = 0

    def template_pos(self, global_index: int) -> int:
        return self.stride * global_index + self.norm_offset


@dataclass(frozen=True)
class ArrayMapping:
    """Complete mapping of one array onto the grid."""

    array: Symbol
    grid: ProcessorGrid
    roles: tuple[GridDimRole, ...]

    # -- classification ---------------------------------------------------------

    @property
    def is_replicated(self) -> bool:
        return all(r.kind != "dist" for r in self.roles)

    @property
    def privatized_grid_dims(self) -> tuple[int, ...]:
        return tuple(g for g, r in enumerate(self.roles) if r.kind == "priv")

    @property
    def is_partitioned(self) -> bool:
        return not self.is_replicated

    def distributed_array_dims(self) -> tuple[int, ...]:
        return tuple(
            r.array_dim for r in self.roles if r.kind == "dist" and r.array_dim is not None
        )

    def grid_dim_of_array_dim(self, array_dim: int) -> int | None:
        for g, role in enumerate(self.roles):
            if role.kind == "dist" and role.array_dim == array_dim:
                return g
        return None

    # -- ownership -----------------------------------------------------------------

    def owner_coords(self, index: tuple[int, ...]) -> tuple[int | None, ...]:
        """Owning coordinate per grid dim; None = replicated (all)."""
        coords: list[int | None] = []
        for role in self.roles:
            if role.kind != "dist":
                coords.append(None)
            else:
                # template_pos folds the template's lower bound into
                # norm_offset, so fmt.owner sees a 0-based position.
                coords.append(role.fmt.owner(role.template_pos(index[role.array_dim])))
        return tuple(coords)

    def owner_ranks(self, index: tuple[int, ...]) -> list[int]:
        """All ranks owning (a copy of) the element."""
        coords = self.owner_coords(index)
        axes = [
            [c] if c is not None else list(range(extent))
            for c, extent in zip(coords, self.grid.shape)
        ]
        return [self.grid.rank_of(tuple(c)) for c in itertools.product(*axes)]

    def primary_owner_rank(self, index: tuple[int, ...]) -> int:
        """A canonical single owner (coordinate 0 along replicated
        dims) — used when one copy must act (e.g. I/O)."""
        coords = tuple(c if c is not None else 0 for c in self.owner_coords(index))
        return self.grid.rank_of(coords)

    def owns(self, rank: int, index: tuple[int, ...]) -> bool:
        coords = self.grid.coords_of(rank)
        for c, owner in zip(coords, self.owner_coords(index)):
            if owner is not None and c != owner:
                return False
        return True

    # -- local sections ---------------------------------------------------------------

    def local_shape(self) -> tuple[int, ...]:
        """Allocation shape of a local section (same on every rank)."""
        shape: list[int] = []
        for dim in range(self.array.rank):
            g = self.grid_dim_of_array_dim(dim)
            if g is None:
                shape.append(self.array.extent(dim))
            else:
                shape.append(self.roles[g].fmt.max_local_count())
        return tuple(shape)

    def local_index(self, index: tuple[int, ...]) -> tuple[int, ...]:
        """Local position of a global element in its owners' sections
        (identical on every owning rank)."""
        local: list[int] = []
        for dim in range(self.array.rank):
            g = self.grid_dim_of_array_dim(dim)
            if g is None:
                local.append(index[dim] - self.array.dims[dim][0])
            else:
                role = self.roles[g]
                local.append(role.fmt.to_local(role.template_pos(index[dim])))
        return tuple(local)

    def owned_global_indices(self, rank: int):
        """Iterate global index vectors owned by ``rank`` (ascending,
        row-major)."""
        coords = self.grid.coords_of(rank)
        per_dim: list[list[int]] = []
        for dim in range(self.array.rank):
            low, high = self.array.dims[dim]
            g = self.grid_dim_of_array_dim(dim)
            if g is None:
                per_dim.append(list(range(low, high + 1)))
            else:
                role = self.roles[g]
                coord = coords[g]
                indices = []
                for idx in range(low, high + 1):
                    if role.fmt.owner(role.template_pos(idx)) == coord:
                        indices.append(idx)
                per_dim.append(indices)
        yield from itertools.product(*per_dim)


# --------------------------------------------------------------------------
# Resolution of directives into mappings
# --------------------------------------------------------------------------


def _roles_from_distribute(
    spec: DistributeSpec, grid: ProcessorGrid
) -> tuple[GridDimRole, ...]:
    array = spec.array
    distributed = [
        (dim, kind, chunk)
        for dim, (kind, chunk) in enumerate(spec.formats)
        if kind != "*"
    ]
    if len(distributed) != grid.rank:
        raise MappingError(
            f"array {array.name}: {len(distributed)} distributed dims do not "
            f"match processor grid rank {grid.rank}"
        )
    roles: list[GridDimRole] = []
    for g, (dim, kind, chunk) in enumerate(distributed):
        low = array.dims[dim][0]
        fmt = DimFormat(
            kind=kind.lower(),
            extent=array.extent(dim),
            procs=grid.shape[g],
            chunk=chunk if chunk is not None else 1,
        )
        roles.append(
            GridDimRole(
                kind="dist",
                array_dim=dim,
                fmt=fmt,
                stride=1,
                norm_offset=-low,
            )
        )
    return tuple(roles)


def _roles_from_align(
    spec: AlignSpec, target_mapping: ArrayMapping
) -> tuple[GridDimRole, ...]:
    array = spec.array
    target = spec.target
    roles: list[GridDimRole] = []
    for g, target_role in enumerate(target_mapping.roles):
        if target_role.kind == "repl":
            roles.append(GridDimRole(kind="repl"))
            continue
        t_dim = target_role.array_dim
        if t_dim in spec.replicated_target_dims:
            roles.append(GridDimRole(kind="repl"))
            continue
        # Find the source dim aligned to target dim t_dim.
        source_dim = None
        stride = offset = 0
        for s_dim, mapping in enumerate(spec.axis_map):
            if mapping is not None and mapping[0] == t_dim:
                source_dim, stride, offset = s_dim, mapping[1], mapping[2]
                break
        if source_dim is None:
            # Target dim is distributed but carries no source dim and is
            # not starred: the source is replicated along it (HPF treats
            # an unmatched distributed target dim as replication only
            # via '*'; we are permissive and replicate).
            roles.append(GridDimRole(kind="repl"))
            continue
        # Compose: source index i sits at target element stride*i+offset,
        # whose template position is target_role applied to it.
        roles.append(
            GridDimRole(
                kind="dist",
                array_dim=source_dim,
                fmt=target_role.fmt,
                stride=target_role.stride * stride,
                norm_offset=target_role.stride * offset + target_role.norm_offset,
            )
        )
    return tuple(roles)


def replicated_mapping(array: Symbol, grid: ProcessorGrid) -> ArrayMapping:
    return ArrayMapping(
        array=array,
        grid=grid,
        roles=tuple(GridDimRole(kind="repl") for _ in range(grid.rank)),
    )


def resolve_mappings(proc: Procedure, grid: ProcessorGrid) -> dict[str, ArrayMapping]:
    """Resolve every array's mapping. Arrays without directives are
    replicated. Alignment chains are followed to any depth."""
    mappings: dict[str, ArrayMapping] = {}
    for spec in proc.distributes:
        mappings[spec.array.name] = ArrayMapping(
            array=spec.array, grid=grid, roles=_roles_from_distribute(spec, grid)
        )
    pending = list(proc.aligns)
    progress = True
    while pending and progress:
        progress = False
        remaining: list[AlignSpec] = []
        for spec in pending:
            target_mapping = mappings.get(spec.target.name)
            if target_mapping is None:
                remaining.append(spec)
                continue
            if spec.array.name in mappings:
                raise MappingError(
                    f"array {spec.array.name} is both distributed and aligned"
                )
            mappings[spec.array.name] = ArrayMapping(
                array=spec.array,
                grid=grid,
                roles=_roles_from_align(spec, target_mapping),
            )
            progress = True
        pending = remaining
    if pending:
        unresolved = ", ".join(s.array.name for s in pending)
        raise MappingError(
            f"unresolvable ALIGN chain (cyclic or missing DISTRIBUTE): {unresolved}"
        )
    for symbol in proc.symbols.arrays():
        if symbol.name not in mappings:
            mappings[symbol.name] = replicated_mapping(symbol, grid)
    return mappings
