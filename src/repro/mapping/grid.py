"""Multi-dimensional processor grids (HPF PROCESSORS arrangements)."""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from ..errors import MappingError


@dataclass(frozen=True)
class ProcessorGrid:
    """A d-dimensional arrangement of P processors.

    Ranks are row-major over the grid coordinates: the last grid
    dimension varies fastest.
    """

    name: str
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape or any(s < 1 for s in self.shape):
            raise MappingError(f"invalid grid shape {self.shape}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    def coords_of(self, rank: int) -> tuple[int, ...]:
        if not 0 <= rank < self.size:
            raise MappingError(f"rank {rank} out of range for {self.shape}")
        coords = []
        rest = rank
        for extent in reversed(self.shape):
            coords.append(rest % extent)
            rest //= extent
        coords.reverse()
        return tuple(coords)

    def rank_of(self, coords: tuple[int, ...]) -> int:
        if len(coords) != self.rank:
            raise MappingError(f"coords {coords} do not match grid rank {self.rank}")
        rank = 0
        for coord, extent in zip(coords, self.shape):
            if not 0 <= coord < extent:
                raise MappingError(f"coord {coords} out of grid {self.shape}")
            rank = rank * extent + coord
        return rank

    def all_coords(self):
        yield from itertools.product(*(range(s) for s in self.shape))

    def all_ranks(self) -> range:
        return range(self.size)

    def neighbors(self, rank: int, dim: int) -> tuple[int | None, int | None]:
        """(previous, next) rank along grid dimension ``dim``."""
        coords = list(self.coords_of(rank))
        prev_rank = next_rank = None
        if coords[dim] > 0:
            coords[dim] -= 1
            prev_rank = self.rank_of(tuple(coords))
            coords[dim] += 1
        if coords[dim] < self.shape[dim] - 1:
            coords[dim] += 1
            next_rank = self.rank_of(tuple(coords))
        return prev_rank, next_rank


def default_grid(num_procs: int, rank: int = 1, name: str = "P") -> ProcessorGrid:
    """A reasonable default grid of ``num_procs`` processors with the
    requested dimensionality (used when a program lacks a PROCESSORS
    directive). Multi-dimensional shapes are made as square as possible.
    """
    if rank == 1:
        return ProcessorGrid(name=name, shape=(num_procs,))
    shape = _balanced_factorization(num_procs, rank)
    return ProcessorGrid(name=name, shape=shape)


def _balanced_factorization(n: int, parts: int) -> tuple[int, ...]:
    """Factor ``n`` into ``parts`` factors, as equal as possible."""
    shape = [1] * parts
    remaining = n
    for k in range(parts):
        target = round(remaining ** (1.0 / (parts - k)))
        factor = 1
        for candidate in range(target, 0, -1):
            if remaining % candidate == 0:
                factor = candidate
                break
        shape[k] = factor
        remaining //= factor
    shape[-1] *= remaining if math.prod(shape) != n else 1
    if math.prod(shape) != n:  # pragma: no cover - defensive
        raise MappingError(f"cannot factor {n} into {parts} dimensions")
    return tuple(sorted(shape, reverse=True))
