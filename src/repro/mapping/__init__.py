"""Data-mapping substrate: processor grids, distribution formats,
ownership descriptors, and directive resolution."""

from .descriptors import (
    ArrayMapping,
    GridDimRole,
    replicated_mapping,
    resolve_mappings,
)
from .distribution import DimFormat
from .grid import ProcessorGrid, default_grid

__all__ = [
    "ArrayMapping",
    "GridDimRole",
    "replicated_mapping",
    "resolve_mappings",
    "DimFormat",
    "ProcessorGrid",
    "default_grid",
]
