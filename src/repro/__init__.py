"""repro — reproduction of Manish Gupta, "On Privatization of Variables
for Data-Parallel Execution" (IPPS 1997).

The package contains a from-scratch mini-HPF compiler with the paper's
privatization framework (scalar mapping, reduction mapping, full and
partial array privatization, control-flow privatization), an
owner-computes partitioner, communication analysis with message
vectorization, a simulated IBM SP2-class distributed-memory machine,
and the benchmark programs of the paper's evaluation (TOMCATV, DGEFA,
APPSP).

Quickstart — the supported surface is the :class:`Session` facade::

    from repro import Session, SweepSpec

    session = Session(num_procs=16, cache=True)
    compiled = session.compile(source_text)
    print(compiled.report())
    print(session.estimate(compiled).summary())
    results = session.sweep(SweepSpec(programs={"prog": source_text},
                                      procs=(4, 16)))

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
regeneration of the paper's tables.
"""

from .api import RunResult, Session
from .api import __all__ as _API_ALL
from .codegen import SequentialInterpreter, print_spmd, run_sequential
from .comm import SP2, MachineModel
from .core import (
    AlignedTo,
    AnalysisCache,
    AnalysisContext,
    ArrayPrivatization,
    BatchJob,
    CompileCache,
    CompiledProgram,
    CompilerOptions,
    FullyReplicatedReduction,
    PassManager,
    PipelineTimings,
    PrivateNoAlign,
    Replicated,
    ReductionMapping,
    ScalarMapping,
    build_context,
    compile_many,
    compile_procedure,
    compile_source,
)
from .ir import Procedure, parse_and_build
from .lang import parse_program
from .machine import SPMDSimulator, simulate
from .mapping import ProcessorGrid
from .perf import PerfEstimator
from .records import RESULT_SCHEMA, comparable, result_record
from .report import table1_tomcatv, table2_dgefa, table3_appsp
from .service import Catalog, JobHandle, SweepService
from .sweep import SweepJob, SweepResult, SweepSpec, run_sweep

__version__ = "1.1.0"

# The supported surface is api.__all__ (the Session facade and its
# types) plus the groups below; everything else is internal.
__all__ = [
    *_API_ALL,
    # persistent sweep service
    "Catalog",
    "JobHandle",
    "SweepService",
    # shared result-record schema
    "RESULT_SCHEMA",
    "comparable",
    "result_record",
    # codegen / validation
    "SequentialInterpreter",
    "print_spmd",
    "run_sequential",
    # machine models
    "SP2",
    "MachineModel",
    # compiler internals (stable subset)
    "AlignedTo",
    "AnalysisCache",
    "AnalysisContext",
    "ArrayPrivatization",
    "BatchJob",
    "FullyReplicatedReduction",
    "PipelineTimings",
    "PrivateNoAlign",
    "Replicated",
    "ReductionMapping",
    "ScalarMapping",
    "build_context",
    "compile_many",
    "compile_procedure",
    "Procedure",
    "parse_and_build",
    "parse_program",
    "SPMDSimulator",
    "simulate",
    "ProcessorGrid",
    # perf + report
    "PerfEstimator",
    "table1_tomcatv",
    "table2_dgefa",
    "table3_appsp",
    "__version__",
]
