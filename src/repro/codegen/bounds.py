"""Loop-bounds shrinking for SPMD code generation.

Paper Section 4: "the loop bounds can be shrunk [9] in the final SPMD
code" — when every statement of a loop is guarded by the ownership of a
reference whose position is an affine function of the loop index on a
BLOCK/CYCLIC template, the guard can be folded into the loop bounds:
each processor iterates only over the indices it owns.

This module decides, per loop, whether shrinking applies and computes
the per-processor iteration range (used by the SPMD pseudo-code printer
and available for inspection/testing).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.driver import CompiledProgram
from ..core.locality import DimPosition
from ..ir.expr import AffineForm
from ..ir.stmt import AssignStmt, IfStmt, LoopStmt, Stmt
from ..mapping.distribution import DimFormat


@dataclass(frozen=True)
class ShrunkBounds:
    """Per-processor iteration range of a shrunk loop.

    The loop over global indices ``lb..ub`` becomes, on the processor
    with coordinate ``c`` along grid dim ``grid_dim``:
    ``max(lb, first_owned(c)) .. min(ub, last_owned(c))`` for BLOCK, or
    the owned stripes for CYCLIC.
    """

    loop: LoopStmt
    grid_dim: int
    fmt: DimFormat
    #: template position of loop index i is stride*i + offset
    stride: int
    offset: int

    def local_range(self, coord: int, lb: int, ub: int) -> list[tuple[int, int]]:
        """Concrete owned index ranges (inclusive) within [lb, ub] for
        the processor coordinate — a single range for BLOCK, stripes for
        CYCLIC."""
        ranges: list[tuple[int, int]] = []
        start = None
        prev = None
        for index in range(lb, ub + 1):
            pos = self.stride * index + self.offset
            if 0 <= pos < self.fmt.extent and self.fmt.owner(pos) == coord:
                if start is None:
                    start = index
                prev = index
            else:
                if start is not None:
                    ranges.append((start, prev))
                    start = None
        if start is not None:
            ranges.append((start, prev))
        return ranges

    def describe(self) -> str:
        kind = self.fmt.kind.upper()
        return (
            f"shrunk to owned {kind} segment on grid dim {self.grid_dim} "
            f"(template pos = {self.stride}*i + {self.offset})"
        )


def _executor_dim_for_loop(
    compiled: CompiledProgram, stmt: Stmt, loop: LoopStmt
) -> tuple[int, DimPosition] | None:
    """The (grid_dim, position) through which ``loop``'s index drives
    ``stmt``'s executor, if exactly one such dimension exists."""
    info = compiled.executors.get(stmt.stmt_id)
    if info is None or info.kind != "owner":
        return None
    hits = []
    for g, dim in enumerate(info.position):
        if dim.kind == "pos" and dim.form is not None:
            if dim.form.coeff(loop.var) != 0:
                hits.append((g, dim))
    if len(hits) == 1:
        return hits[0]
    return None


def _form_as_stride_offset(form: AffineForm, loop: LoopStmt) -> tuple[int, int] | None:
    """Decompose a position form as stride*loopvar + const (no other
    variables)."""
    stride = form.coeff(loop.var)
    others = [s for s, c in form.coeffs if s.name != loop.var.name and c != 0]
    if others or stride == 0:
        return None
    return stride, form.const


def shrinkable_bounds(
    compiled: CompiledProgram, loop: LoopStmt
) -> ShrunkBounds | None:
    """Can the guard of every statement in ``loop``'s body be folded
    into the loop bounds?

    Requires every directly-owned statement in the body to be driven by
    the loop index through the *same* grid dimension with the *same*
    template position; statements with no guard (privatized) or
    replicated execution don't constrain (no-guard ones follow the
    iteration, replicated ones must run everywhere — the latter block
    shrinking)."""
    candidate: tuple[int, int, int, DimFormat] | None = None
    for stmt in loop.walk():
        if stmt is loop or isinstance(stmt, LoopStmt):
            continue
        info = compiled.executors.get(stmt.stmt_id)
        if info is None:
            continue
        if info.kind == "union":
            continue  # follows the iteration's executors
        if info.kind == "all":
            if isinstance(stmt, (AssignStmt, IfStmt)):
                return None  # must execute everywhere: cannot shrink
            continue
        hit = _executor_dim_for_loop(compiled, stmt, loop)
        if hit is None:
            # Guarded, but not (only) by this loop's index: the guard
            # does not constrain this loop's range uniformly.
            continue
        g, dim = hit
        so = _form_as_stride_offset(dim.form, loop)
        if so is None:
            return None
        stride, offset = so
        key = (g, stride, offset, dim.fmt)
        if candidate is None:
            candidate = key
        elif candidate != key:
            return None  # two different ownership patterns: keep guards
    if candidate is None:
        return None
    g, stride, offset, fmt = candidate
    return ShrunkBounds(loop=loop, grid_dim=g, fmt=fmt, stride=stride, offset=offset)


def all_shrinkable_loops(compiled: CompiledProgram) -> dict[int, ShrunkBounds]:
    """ShrunkBounds for every loop where bounds shrinking applies."""
    result: dict[int, ShrunkBounds] = {}
    for loop in compiled.proc.loops():
        shrunk = shrinkable_bounds(compiled, loop)
        if shrunk is not None:
            result[loop.stmt_id] = shrunk
    return result
