"""Sequential reference interpreter — the semantic ground truth.

Executes a procedure on plain global storage (numpy arrays, scalar
dict). The SPMD simulator's results are validated against this
interpreter bit-for-bit in the integration tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import InterpreterError
from ..ir.expr import ArrayElemRef, ScalarRef
from ..ir.program import Procedure
from ..ir.stmt import AssignStmt, IfStmt
from ..ir.symbols import ScalarType, Symbol
from .evalexpr import ValueReader, coerce_store, eval_expr, eval_subscripts
from .walker import ExecutionHooks, Walker


def _dtype_of(symbol: Symbol):
    if symbol.type is ScalarType.INT:
        return np.int64
    if symbol.type is ScalarType.LOGICAL:
        return np.bool_
    return np.float64


class GlobalStore(ValueReader):
    """Global-view storage: one array per symbol, Fortran bounds."""

    def __init__(self, proc: Procedure):
        self.proc = proc
        self.arrays: dict[str, np.ndarray] = {}
        self.scalars: dict[str, float | int | bool] = {}
        for symbol in proc.symbols.arrays():
            shape = tuple(symbol.extent(d) for d in range(symbol.rank))
            self.arrays[symbol.name] = np.zeros(shape, dtype=_dtype_of(symbol))

    # -- indexing ----------------------------------------------------------

    def _offset(self, symbol: Symbol, index: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(idx - symbol.dims[d][0] for d, idx in enumerate(index))

    # -- ValueReader -----------------------------------------------------------

    def read_scalar(self, ref: ScalarRef, env: dict[str, int]):
        name = ref.symbol.name
        if name in env:
            return env[name]
        if name not in self.scalars:
            raise InterpreterError(f"read of undefined scalar {name}")
        return self.scalars[name]

    def read_array(self, ref: ArrayElemRef, index: tuple[int, ...], env):
        return self.arrays[ref.symbol.name][self._offset(ref.symbol, index)].item()

    # -- writes -----------------------------------------------------------------

    def write_scalar(self, symbol: Symbol, value) -> None:
        self.scalars[symbol.name] = coerce_store(value, symbol.type)

    def write_array(self, symbol: Symbol, index: tuple[int, ...], value) -> None:
        self.arrays[symbol.name][self._offset(symbol, index)] = value

    # -- initialization helpers ------------------------------------------------------

    def set_array(self, name: str, values: np.ndarray) -> None:
        target = self.arrays[name.upper()]
        if target.shape != values.shape:
            raise InterpreterError(
                f"shape mismatch for {name}: {values.shape} vs {target.shape}"
            )
        target[...] = values

    def get_array(self, name: str) -> np.ndarray:
        return self.arrays[name.upper()].copy()

    def get_scalar(self, name: str):
        return self.scalars.get(name.upper())


class LoweredSequentialHooks(ExecutionHooks):
    """Sequential execution through the one-time-lowered statement
    closures (``repro.machine.lowering``), with the plain global store
    as the reader. Statements without a lowered closure fall back to
    the tree-walking hooks."""

    def __init__(self, store: GlobalStore, lowered):
        self.store = store
        self.lowered = lowered
        self._slow = SequentialHooks(store)

    def assign(self, stmt: AssignStmt, env: dict[str, int]) -> None:
        fn = self.lowered.assigns.get(stmt.stmt_id)
        if fn is None:
            return self._slow.assign(stmt, env)
        index, value = fn(self.store, env)
        name, lows = self.lowered.lhs_info[stmt.stmt_id]
        if index is None:
            self.store.scalars[name] = value
        else:
            off = tuple(i - lo for i, lo in zip(index, lows))
            self.store.arrays[name][off] = value

    def eval_condition(self, stmt: IfStmt, env: dict[str, int]) -> bool:
        fn = self.lowered.conds.get(stmt.stmt_id)
        if fn is None:
            return self._slow.eval_condition(stmt, env)
        return fn(self.store, env)

    def eval_bound(self, expr, env: dict[str, int]) -> int:
        fn = self.lowered.bounds.get(id(expr))
        if fn is None:
            return self._slow.eval_bound(expr, env)
        return fn(self.store, env)


class SequentialHooks(ExecutionHooks):
    def __init__(self, store: GlobalStore):
        self.store = store

    def assign(self, stmt: AssignStmt, env: dict[str, int]) -> None:
        value = eval_expr(stmt.rhs, self.store, env)
        if isinstance(stmt.lhs, ArrayElemRef):
            index = eval_subscripts(stmt.lhs, self.store, env)
            self.store.write_array(stmt.lhs.symbol, index, value)
        else:
            self.store.write_scalar(stmt.lhs.symbol, value)

    def eval_condition(self, stmt: IfStmt, env: dict[str, int]) -> bool:
        return bool(eval_expr(stmt.cond, self.store, env))

    def eval_bound(self, expr, env: dict[str, int]) -> int:
        return int(eval_expr(expr, self.store, env))


class SequentialInterpreter:
    """Run a procedure sequentially.

    Usage::

        interp = SequentialInterpreter(proc)
        interp.store.set_array("A", values)
        interp.run()
        result = interp.store.get_array("A")
    """

    def __init__(self, proc: Procedure, fast_path: bool = True):
        self.proc = proc
        self.store = GlobalStore(proc)
        self.fast_path = fast_path

    def run(self):
        if self.fast_path:
            # deferred import: repro.machine imports this module
            from ..machine.lowering import lower_procedure

            hooks: ExecutionHooks = LoweredSequentialHooks(
                self.store, lower_procedure(self.proc)
            )
        else:
            hooks = SequentialHooks(self.store)
        walker = Walker(self.proc, hooks)
        return walker.run()


def run_sequential(
    proc: Procedure,
    inputs: dict[str, np.ndarray] | None = None,
    fast_path: bool = True,
):
    """Convenience: run and return the final store."""
    interp = SequentialInterpreter(proc, fast_path=fast_path)
    for name, values in (inputs or {}).items():
        interp.store.set_array(name, values)
    interp.run()
    return interp.store
