"""Structured execution walker shared by the sequential reference
interpreter and the SPMD machine simulator.

Walks the IR statement tree with Fortran semantics: DO loops with
precomputed trip counts, block IFs, one-entry labels, forward/backward
GOTOs resolved within the enclosing statement lists (sufficient for the
F77 idioms the benchmarks use, e.g. ``GO TO 100`` to a labelled
``CONTINUE`` inside the same loop body).

Execution behaviour is delegated to a :class:`ExecutionHooks` object,
so the same control-flow engine drives both back ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InterpreterError
from ..ir.program import Procedure
from ..ir.stmt import (
    AssignStmt,
    CallStmt,
    ContinueStmt,
    GotoStmt,
    IfStmt,
    LoopStmt,
    Stmt,
    StopStmt,
)


class StopExecution(Exception):
    """Raised by STOP."""


class ExecutionHooks:
    """Override points for back ends."""

    def assign(self, stmt: AssignStmt, env: dict[str, int]) -> None:
        raise NotImplementedError

    def eval_condition(self, stmt: IfStmt, env: dict[str, int]) -> bool:
        raise NotImplementedError

    def eval_bound(self, expr, env: dict[str, int]) -> int:
        raise NotImplementedError

    def loop_enter(self, stmt: LoopStmt, env: dict[str, int]) -> None:
        pass

    def loop_exit(self, stmt: LoopStmt, env: dict[str, int]) -> None:
        pass

    def run_loop(
        self,
        stmt: LoopStmt,
        low: int,
        high: int,
        step: int,
        env: dict[str, int],
    ) -> bool:
        """Whole-loop takeover point: return True after executing every
        iteration of the loop (bounds already evaluated), and the walker
        skips its per-iteration while loop.  ``loop_enter`` has fired;
        ``loop_exit`` and the Fortran index-variable epilogue still run.
        The default executes nothing and declines."""
        return False

    def call(self, stmt: CallStmt, env: dict[str, int]) -> None:
        raise InterpreterError(f"CALL {stmt.name} is not supported")


@dataclass
class WalkStats:
    statements_executed: int = 0
    loop_iterations: int = 0
    max_steps: int = 500_000_000

    def bump(self) -> None:
        self.statements_executed += 1
        if self.statements_executed > self.max_steps:
            raise InterpreterError("execution step limit exceeded")


class Walker:
    def __init__(self, proc: Procedure, hooks: ExecutionHooks):
        self.proc = proc
        self.hooks = hooks
        self.env: dict[str, int] = {}
        self.stats = WalkStats()
        #: id(statement list) -> label -> index, so GOTO resolution does
        #: not rescan the list on every jump (DGEFA's pivot loop); the
        #: lists stay alive through ``proc``, keeping the ids stable.
        self._label_maps: dict[int, dict[int, int]] = {}

    def run(self) -> WalkStats:
        try:
            jump = self._exec_block(self.proc.body)
            if jump is not None:
                raise InterpreterError(f"GOTO {jump} escaped the program body")
        except StopExecution:
            pass
        return self.stats

    # ------------------------------------------------------------------

    def _exec_block(self, stmts: list[Stmt]) -> int | None:
        """Execute a statement list; returns a label when a GOTO targets
        a statement outside this list (the jump propagates upward)."""
        i = 0
        while i < len(stmts):
            jump = self._exec_stmt(stmts[i])
            if jump is not None:
                target = self._labels_of(stmts).get(jump)
                if target is None:
                    return jump
                i = target
                continue
            i += 1
        return None

    def _labels_of(self, stmts: list[Stmt]) -> dict[int, int]:
        table = self._label_maps.get(id(stmts))
        if table is None:
            table = {}
            for k, stmt in enumerate(stmts):
                if stmt.label is not None and stmt.label not in table:
                    table[stmt.label] = k
            self._label_maps[id(stmts)] = table
        return table

    @staticmethod
    def _index_of_label(stmts: list[Stmt], label: int) -> int | None:
        for k, stmt in enumerate(stmts):
            if stmt.label == label:
                return k
        return None

    def _exec_stmt(self, stmt: Stmt) -> int | None:
        self.stats.bump()
        if isinstance(stmt, AssignStmt):
            self.hooks.assign(stmt, self.env)
            return None
        if isinstance(stmt, LoopStmt):
            return self._exec_loop(stmt)
        if isinstance(stmt, IfStmt):
            if self.hooks.eval_condition(stmt, self.env):
                return self._exec_block(stmt.then_body)
            return self._exec_block(stmt.else_body)
        if isinstance(stmt, GotoStmt):
            return stmt.target_label
        if isinstance(stmt, ContinueStmt):
            return None
        if isinstance(stmt, StopStmt):
            raise StopExecution()
        if isinstance(stmt, CallStmt):
            self.hooks.call(stmt, self.env)
            return None
        raise InterpreterError(f"cannot execute {stmt!r}")

    def _exec_loop(self, stmt: LoopStmt) -> int | None:
        low = self.hooks.eval_bound(stmt.low, self.env)
        high = self.hooks.eval_bound(stmt.high, self.env)
        step = (
            self.hooks.eval_bound(stmt.step, self.env)
            if stmt.step is not None
            else 1
        )
        if step == 0:
            raise InterpreterError(f"zero step in loop {stmt.var.name}")
        self.hooks.loop_enter(stmt, self.env)
        index = low
        saved = self.env.get(stmt.var.name)
        try:
            if self.hooks.run_loop(stmt, low, high, step, self.env):
                trips = max(0, (high - low + step) // step)
                self.stats.loop_iterations += trips
                index = low + trips * step
                return None
            while (step > 0 and index <= high) or (step < 0 and index >= high):
                self.env[stmt.var.name] = index
                self.stats.loop_iterations += 1
                jump = self._exec_block(stmt.body)
                if jump is not None:
                    # A label outside the body terminates the loop and
                    # propagates; (F77 'GOTO <end label>' is inside).
                    return jump
                index += step
        finally:
            if saved is not None:
                self.env[stmt.var.name] = saved
            else:
                # Fortran leaves the index at its final value; keep it
                # visible for post-loop uses.
                self.env[stmt.var.name] = index
            self.hooks.loop_exit(stmt, self.env)
        return None
