"""Execution back ends: shared structured walker, expression
evaluation, and the sequential reference interpreter."""

from .bounds import ShrunkBounds, all_shrinkable_loops, shrinkable_bounds
from .evalexpr import ValueReader, coerce_store, eval_expr, eval_subscripts
from .seq import (
    GlobalStore,
    SequentialInterpreter,
    run_sequential,
)
from .spmd import SPMDPrinter, print_spmd
from .walker import ExecutionHooks, StopExecution, Walker

__all__ = [
    "ShrunkBounds",
    "all_shrinkable_loops",
    "shrinkable_bounds",
    "SPMDPrinter",
    "print_spmd",
    "ValueReader",
    "coerce_store",
    "eval_expr",
    "eval_subscripts",
    "GlobalStore",
    "SequentialInterpreter",
    "run_sequential",
    "ExecutionHooks",
    "StopExecution",
    "Walker",
]
