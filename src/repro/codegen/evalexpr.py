"""Expression evaluation over pluggable storage.

Both back ends evaluate the same IR expressions; they differ only in
where scalar and array values come from, expressed as a
:class:`ValueReader`.
"""

from __future__ import annotations

import math

from ..errors import InterpreterError
from ..ir.expr import (
    ArrayElemRef,
    BinOp,
    Const,
    Expr,
    IntrinsicCall,
    ScalarRef,
    UnOp,
)
from ..ir.symbols import ScalarType


class ValueReader:
    """Storage interface used by :func:`eval_expr`."""

    def read_scalar(self, ref: ScalarRef, env: dict[str, int]):
        raise NotImplementedError

    def read_array(self, ref: ArrayElemRef, index: tuple[int, ...], env: dict[str, int]):
        raise NotImplementedError


def fortran_int_div(left: int, right: int) -> int:
    """Sign-correct truncating (toward-zero) integer division.

    Fortran's ``/`` truncates toward zero; Python's ``//`` floors, and
    ``int(left / right)`` rounds through a float, losing precision for
    operands beyond 2**53.
    """
    q = left // right
    if q < 0 and q * right != left:
        q += 1
    return q


def eval_subscripts(
    ref: ArrayElemRef, reader: ValueReader, env: dict[str, int]
) -> tuple[int, ...]:
    index = []
    for sub in ref.subscripts:
        value = eval_expr(sub, reader, env)
        index.append(int(value))
    symbol = ref.symbol
    for dim, idx in enumerate(index):
        low, high = symbol.dims[dim]
        if not low <= idx <= high:
            raise InterpreterError(
                f"subscript {idx} out of bounds {low}:{high} for "
                f"{symbol.name} dim {dim + 1}"
            )
    return tuple(index)


def eval_expr(expr: Expr, reader: ValueReader, env: dict[str, int]):
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, ScalarRef):
        symbol = expr.symbol
        if symbol.value is not None:
            return symbol.value
        if symbol.is_loop_var and symbol.name in env:
            return env[symbol.name]
        return reader.read_scalar(expr, env)
    if isinstance(expr, ArrayElemRef):
        index = eval_subscripts(expr, reader, env)
        return reader.read_array(expr, index, env)
    if isinstance(expr, UnOp):
        value = eval_expr(expr.operand, reader, env)
        if expr.op == "-":
            return -value
        if expr.op == ".NOT.":
            return not value
        raise InterpreterError(f"unknown unary op {expr.op!r}")
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, reader, env)
        right = eval_expr(expr.right, reader, env)
        return _apply_binop(expr.op, left, right)
    if isinstance(expr, IntrinsicCall):
        args = [eval_expr(a, reader, env) for a in expr.args]
        return _apply_intrinsic(expr.name, args)
    raise InterpreterError(f"cannot evaluate {expr!r}")


def _apply_binop(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise InterpreterError("integer division by zero")
            return fortran_int_div(left, right)  # Fortran truncates toward zero
        if right == 0:
            raise InterpreterError("division by zero")
        return left / right
    if op == "**":
        return left**right
    if op == "==":
        return left == right
    if op == "/=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == ".AND.":
        return bool(left) and bool(right)
    if op == ".OR.":
        return bool(left) or bool(right)
    raise InterpreterError(f"unknown binary op {op!r}")


def _apply_intrinsic(name: str, args: list):
    if name == "ABS":
        return abs(args[0])
    if name == "MAX":
        return max(args)
    if name == "MIN":
        return min(args)
    if name == "SQRT":
        return math.sqrt(args[0])
    if name == "EXP":
        return math.exp(args[0])
    if name == "LOG":
        return math.log(args[0])
    if name == "SIN":
        return math.sin(args[0])
    if name == "COS":
        return math.cos(args[0])
    if name == "MOD":
        return args[0] % args[1]
    if name == "SIGN":
        return math.copysign(args[0], args[1])
    if name in ("INT",):
        return int(args[0])
    if name in ("REAL", "FLOAT", "DBLE"):
        return float(args[0])
    raise InterpreterError(f"unknown intrinsic {name!r}")


def coerce_store(value, symbol_type: ScalarType):
    """Fortran assignment conversion."""
    if symbol_type is ScalarType.INT:
        return int(value)
    if symbol_type is ScalarType.REAL:
        return float(value)
    return bool(value)
