"""SPMD pseudo-code printer.

Renders the compiled program as the node program an HPF compiler would
emit: communication calls hoisted to their placement levels (message
vectorization made visible), owner-computes guards, shrunk loop bounds
where legal, privatized statements without guards, local reduction
accumulation with an explicit combine at the reduction loop's exit.

The output is *pseudo*-Fortran for human inspection and golden tests —
actual execution happens in :mod:`repro.machine` (interpretive, with
the same semantics)."""

from __future__ import annotations

from ..comm.events import CommEvent, ReduceEvent
from ..core.driver import CompiledProgram
from ..core.mapping_kinds import (
    AlignedTo,
    FullyReplicatedReduction,
    PrivateNoAlign,
    ReductionMapping,
    Replicated,
)
from ..ir.expr import ArrayElemRef, ScalarRef
from ..ir.stmt import (
    AssignStmt,
    CallStmt,
    ContinueStmt,
    GotoStmt,
    IfStmt,
    LoopStmt,
    Stmt,
    StopStmt,
)
from .bounds import ShrunkBounds, all_shrinkable_loops

_INDENT = "  "


class SPMDPrinter:
    def __init__(self, compiled: CompiledProgram):
        self.compiled = compiled
        self.shrunk = all_shrinkable_loops(compiled)
        #: events grouped by (enclosing loop stmt_id at placement, or 0)
        self._events_at: dict[int, list[CommEvent]] = {}
        self._reduces_at: dict[int, list[ReduceEvent]] = {}
        self._group_events()

    # ------------------------------------------------------------------

    def _placement_anchor(self, stmt: Stmt, level: int) -> int:
        """stmt_id of the loop at nesting ``level`` enclosing ``stmt``
        (its body is where the transfer executes); 0 = before the whole
        program."""
        chain = stmt.loops_enclosing()
        if level <= 0:
            return 0
        if level <= len(chain):
            return chain[level - 1].stmt_id
        return chain[-1].stmt_id if chain else 0

    def _group_events(self) -> None:
        for event in self.compiled.comm.events:
            anchor = self._placement_anchor(event.stmt, event.placement_level)
            self._events_at.setdefault(anchor, []).append(event)
        for reduce_event in self.compiled.comm.reduces:
            # Combine runs at the exit of the reduction loop.
            anchor = self._placement_anchor(
                reduce_event.stmt, reduce_event.loop_level
            )
            self._reduces_at.setdefault(anchor, []).append(reduce_event)

    # ------------------------------------------------------------------

    def render(self) -> str:
        grid = self.compiled.grid
        lines: list[str] = [
            f"! SPMD node program for {self.compiled.proc.name}",
            f"! processor grid {grid.name}{grid.shape}; this node: ME = "
            + "(" + ", ".join(f"me{d}" for d in range(grid.rank)) + ")",
            f"! strategy: {self.compiled.options.strategy}",
        ]
        self._emit_comm_block(0, 0, lines)
        for stmt in self.compiled.proc.body:
            self._emit_stmt(stmt, 0, lines)
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------

    def _emit_comm_block(self, anchor: int, depth: int, lines: list[str]) -> None:
        pad = _INDENT * depth
        for event in self._events_at.get(anchor, ()):
            lines.append(pad + f"CALL {self._comm_call(event)}")

    def _comm_call(self, event: CommEvent) -> str:
        ref = event.ref
        what = str(ref)
        where = (
            "inner-loop" if event.is_inner_loop else f"vectorized@{event.placement_level}"
        )
        pattern = event.pattern
        if pattern.kind == "shift":
            offs = ",".join(str(o) for o in pattern.offsets)
            return f"SHIFT_EXCHANGE({what}, offset=({offs}))  ! {where}"
        if pattern.kind == "broadcast":
            dims = ",".join(str(d) for d in pattern.bcast_dims)
            return f"BROADCAST({what}, grid_dims=({dims}))  ! {where}"
        return f"GATHER({what})  ! {where}"

    # ------------------------------------------------------------------

    def _emit_stmt(self, stmt: Stmt, depth: int, lines: list[str]) -> None:
        pad = _INDENT * depth
        if isinstance(stmt, LoopStmt):
            self._emit_loop(stmt, depth, lines)
        elif isinstance(stmt, AssignStmt):
            guard = self._guard_comment(stmt)
            lines.append(pad + f"{stmt.lhs} = {stmt.rhs}{guard}")
        elif isinstance(stmt, IfStmt):
            decision = self.compiled.cf_decisions.get(stmt.stmt_id)
            note = ""
            if decision is not None:
                note = "  ! privatized" if decision.privatized else "  ! on all"
            lines.append(pad + f"IF ({stmt.cond}) THEN{note}")
            for child in stmt.then_body:
                self._emit_stmt(child, depth + 1, lines)
            if stmt.else_body:
                lines.append(pad + "ELSE")
                for child in stmt.else_body:
                    self._emit_stmt(child, depth + 1, lines)
            lines.append(pad + "END IF")
        elif isinstance(stmt, GotoStmt):
            lines.append(pad + f"GO TO {stmt.target_label}")
        elif isinstance(stmt, ContinueStmt):
            label = f"{stmt.label} " if stmt.label is not None else ""
            lines.append(pad + f"{label}CONTINUE")
        elif isinstance(stmt, StopStmt):
            lines.append(pad + "STOP")
        elif isinstance(stmt, CallStmt):
            lines.append(pad + f"CALL {stmt.name}(...)")

    def _emit_loop(self, loop: LoopStmt, depth: int, lines: list[str]) -> None:
        pad = _INDENT * depth
        shrunk = self.shrunk.get(loop.stmt_id)
        head = f"DO {loop.var.name} = "
        if shrunk is not None:
            head += (
                f"MAX({loop.low}, MY_LB{shrunk.grid_dim}), "
                f"MIN({loop.high}, MY_UB{shrunk.grid_dim})"
            )
            if loop.step is not None:
                head += f", {loop.step}"
            head += f"  ! {shrunk.describe()}"
        else:
            head += f"{loop.low}, {loop.high}"
            if loop.step is not None:
                head += f", {loop.step}"
        lines.append(pad + head)
        self._emit_comm_block(loop.stmt_id, depth + 1, lines)
        for stmt in loop.body:
            self._emit_stmt(stmt, depth + 1, lines)
        for reduce_event in self._reduces_at.get(loop.stmt_id, ()):
            dims = ",".join(str(d) for d in reduce_event.grid_dims)
            lines.append(
                _INDENT * (depth + 1)
                + f"! at loop exit: CALL ALLREDUCE({reduce_event.op}, "
                f"grid_dims=({dims}))"
            )
        lines.append(pad + "END DO")

    def _guard_comment(self, stmt: AssignStmt) -> str:
        info = self.compiled.executors.get(stmt.stmt_id)
        if info is None:
            return ""
        # Guard folded into shrunk bounds of an enclosing loop?
        for loop in stmt.loops_enclosing():
            if loop.stmt_id in self.shrunk:
                shrunk = self.shrunk[loop.stmt_id]
                hit = info.kind == "owner" and any(
                    d.kind == "pos"
                    and d.form is not None
                    and d.form.coeff(loop.var) != 0
                    for d in info.position
                )
                if hit:
                    return ""  # no guard needed: bounds already local
        if info.kind == "owner":
            return f"  ! guard: IOWN({info.guard_ref})"
        if info.kind == "union":
            return "  ! privatized: no guard"
        if isinstance(stmt.lhs, ScalarRef):
            mapping = self.compiled.scalar_mapping_of(stmt.stmt_id)
            if isinstance(mapping, (Replicated, FullyReplicatedReduction)):
                return "  ! replicated: all processors execute"
        return "  ! on all processors"


def print_spmd(compiled: CompiledProgram) -> str:
    """Render the compiled program as SPMD pseudo-code."""
    return SPMDPrinter(compiled).render()
