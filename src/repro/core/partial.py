"""Construction of effective array mappings for privatized arrays,
including *partial privatization* (paper Section 3.2).

A privatized array's effective mapping assigns each grid dimension one
of:

* ``priv`` — the array is privatized along this dimension: every
  processor holds a per-iteration private copy of its slice; no
  ownership constraint, no communication;
* ``dist`` — the dimension stays *partitioned*: one of the array's own
  dimensions is distributed here, inheriting the template of the
  alignment target's corresponding dimension (so writes stay local
  under the owner-computes rule and cross-iteration reads become
  shifts).

Full privatization is the special case with every grid dimension
``priv``.
"""

from __future__ import annotations

from ..errors import MappingError
from ..ir.expr import ArrayElemRef, affine_form
from ..ir.program import Procedure
from ..ir.stmt import AssignStmt, LoopStmt
from ..ir.symbols import Symbol
from ..mapping.descriptors import ArrayMapping, GridDimRole


def find_matching_array_dim(
    proc: Procedure,
    array: Symbol,
    loop: LoopStmt,
    driving_vars: set[str],
) -> int | None:
    """Which dimension of ``array`` is traversed by one of
    ``driving_vars`` inside ``loop``? Writes are inspected first (the
    owner-computes rule makes write locality the priority), then reads.
    """
    def scan(refs) -> int | None:
        for ref in refs:
            for dim, sub in enumerate(ref.subscripts):
                form = affine_form(sub)
                if form is None:
                    continue
                for s in form.symbols:
                    if s.name in driving_vars and form.coeff(s) != 0:
                        return dim
        return None

    writes = []
    reads = []
    for stmt in loop.walk():
        for ref in stmt.defs():
            if isinstance(ref, ArrayElemRef) and ref.symbol.name == array.name:
                writes.append(ref)
        for ref in stmt.uses():
            if isinstance(ref, ArrayElemRef) and ref.symbol.name == array.name:
                reads.append(ref)
    dim = scan(writes)
    if dim is None:
        dim = scan(reads)
    return dim


def build_privatized_mapping(
    base: ArrayMapping,
    target_mapping: ArrayMapping | None,
    priv_grid_dims: tuple[int, ...],
    partitioned_dims: dict[int, int],
) -> ArrayMapping:
    """Effective mapping of a privatized array.

    ``partitioned_dims`` maps array_dim → grid_dim; each partitioned
    dimension inherits the template (format/stride/offset) of the
    target's role on that grid dimension, re-based to the array's own
    lower bound so that identical index values co-locate.
    """
    grid = base.grid
    roles: list[GridDimRole] = []
    for g in range(grid.rank):
        if g in priv_grid_dims:
            roles.append(GridDimRole(kind="priv"))
            continue
        array_dim = next(
            (ad for ad, gd in partitioned_dims.items() if gd == g), None
        )
        if array_dim is None:
            roles.append(GridDimRole(kind="repl"))
            continue
        if target_mapping is None:
            raise MappingError(
                f"array {base.array.name}: partitioned dim {array_dim} has "
                f"no alignment target"
            )
        target_role = target_mapping.roles[g]
        if target_role.kind != "dist":
            raise MappingError(
                f"array {base.array.name}: grid dim {g} of target "
                f"{target_mapping.array.name} is not distributed"
            )
        # Identity alignment of index values: array index x sits at the
        # target template position of index x.
        roles.append(
            GridDimRole(
                kind="dist",
                array_dim=array_dim,
                fmt=target_role.fmt,
                stride=target_role.stride,
                norm_offset=target_role.norm_offset,
            )
        )
    return ArrayMapping(array=base.array, grid=grid, roles=tuple(roles))
