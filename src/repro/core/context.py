"""Analysis context: one bundle of every program-analysis result the
mapping passes need, built in the canonical pipeline order (paper
Section 2.2: SSA construction, constant propagation and induction
variable recognition precede the mapping pass)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.constprop import ConstPropInfo, propagate_constants
from ..analysis.dataflow import LivenessInfo, compute_liveness
from ..analysis.dominance import DominatorInfo, compute_dominance
from ..analysis.induction import (
    InductionVar,
    find_induction_vars,
    substitute_induction_vars,
)
from ..analysis.privatizable import PrivatizabilityInfo
from ..analysis.reductions import Reduction, find_reductions
from ..analysis.ssa import SSAInfo
from ..ir.cfg import CFG, build_cfg
from ..ir.program import Procedure
from ..mapping.descriptors import ArrayMapping, resolve_mappings
from ..mapping.grid import ProcessorGrid, default_grid


@dataclass
class AnalysisContext:
    """All analyses over one procedure, after induction-variable
    substitution."""

    proc: Procedure
    grid: ProcessorGrid
    cfg: CFG
    dom: DominatorInfo
    liveness: LivenessInfo
    ssa: SSAInfo
    const: ConstPropInfo
    priv: PrivatizabilityInfo
    reductions: list[Reduction]
    inductions: list[InductionVar]
    array_mappings: dict[str, ArrayMapping]


def _analyze_once(proc: Procedure, grid: ProcessorGrid):
    cfg = build_cfg(proc)
    dom = compute_dominance(cfg)
    liveness = compute_liveness(cfg)
    ssa = SSAInfo(cfg, dom=dom, liveness=liveness)
    const = propagate_constants(ssa)
    return cfg, dom, liveness, ssa, const


def build_context(
    proc: Procedure,
    num_procs: int | None = None,
    grid: ProcessorGrid | None = None,
    substitute_inductions: bool = True,
) -> AnalysisContext:
    """Run the full analysis pipeline. If the program has a PROCESSORS
    directive it fixes the grid shape; ``num_procs`` (total processor
    count) may rescale it proportionally; an explicit ``grid`` overrides
    everything."""
    if grid is None:
        if proc.processors is not None:
            shape = proc.processors.shape
            if num_procs is not None and num_procs != _prod(shape):
                grid = default_grid(num_procs, rank=len(shape), name=proc.processors.name)
            else:
                grid = ProcessorGrid(name=proc.processors.name, shape=tuple(shape))
        else:
            grid = default_grid(num_procs or 1, rank=1)

    cfg, dom, liveness, ssa, const = _analyze_once(proc, grid)
    inductions: list[InductionVar] = []
    if substitute_inductions:
        found = find_induction_vars(proc, ssa, const)
        if found:
            inductions = substitute_induction_vars(
                proc, found, cfg=cfg, ssa=ssa, dom=dom
            )
            cfg, dom, liveness, ssa, const = _analyze_once(proc, grid)

    reductions = find_reductions(proc, ssa)
    priv = PrivatizabilityInfo(proc, cfg, ssa, liveness)
    array_mappings = resolve_mappings(proc, grid)
    return AnalysisContext(
        proc=proc,
        grid=grid,
        cfg=cfg,
        dom=dom,
        liveness=liveness,
        ssa=ssa,
        const=const,
        priv=priv,
        reductions=reductions,
        inductions=inductions,
        array_mappings=array_mappings,
    )


def _prod(shape) -> int:
    total = 1
    for s in shape:
        total *= s
    return total
