"""Analysis context: one bundle of every program-analysis result the
mapping passes need, built in the canonical pipeline order (paper
Section 2.2: SSA construction, constant propagation and induction
variable recognition precede the mapping pass).

This module provides the *stages* — front-end analysis, induction
substitution, reduction recognition, privatizability, directive
resolution — as standalone functions. The pipeline that sequences,
caches, and times them lives in :mod:`repro.core.passes`, which also
exports :func:`~repro.core.passes.build_context`, the one-call
convenience that produces an :class:`AnalysisContext`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.constprop import ConstPropInfo, propagate_constants
from ..analysis.dataflow import LivenessInfo, compute_liveness
from ..analysis.dominance import DominatorInfo, compute_dominance
from ..analysis.induction import (
    InductionVar,
    find_induction_vars,
    substitute_induction_vars,
)
from ..analysis.privatizable import PrivatizabilityInfo
from ..analysis.reductions import Reduction, find_reductions
from ..analysis.ssa import SSAInfo
from ..ir.cfg import CFG, build_cfg
from ..ir.program import Procedure
from ..mapping.descriptors import ArrayMapping, resolve_mappings
from ..mapping.grid import ProcessorGrid, default_grid


@dataclass
class AnalysisContext:
    """All analyses over one procedure, after induction-variable
    substitution."""

    proc: Procedure
    grid: ProcessorGrid
    cfg: CFG
    dom: DominatorInfo
    liveness: LivenessInfo
    ssa: SSAInfo
    const: ConstPropInfo
    priv: PrivatizabilityInfo
    reductions: list[Reduction]
    inductions: list[InductionVar]
    array_mappings: dict[str, ArrayMapping]


@dataclass
class FrontendAnalyses:
    """The SSA-level front end: everything recomputed from scratch when
    a transform pass mutates the statement tree."""

    cfg: CFG
    dom: DominatorInfo
    liveness: LivenessInfo
    ssa: SSAInfo
    const: ConstPropInfo


def analyze_frontend(proc: Procedure) -> FrontendAnalyses:
    """CFG / dominance / liveness / pruned SSA / constant propagation."""
    cfg = build_cfg(proc)
    dom = compute_dominance(cfg)
    liveness = compute_liveness(cfg)
    ssa = SSAInfo(cfg, dom=dom, liveness=liveness)
    const = propagate_constants(ssa)
    return FrontendAnalyses(cfg=cfg, dom=dom, liveness=liveness, ssa=ssa, const=const)


def resolve_grid(proc: Procedure, num_procs: int | None = None) -> ProcessorGrid:
    """The processor grid: a PROCESSORS directive fixes the shape;
    ``num_procs`` (total processor count) may rescale it
    proportionally."""
    if proc.processors is not None:
        shape = proc.processors.shape
        if num_procs is not None and num_procs != _prod(shape):
            return default_grid(num_procs, rank=len(shape), name=proc.processors.name)
        return ProcessorGrid(name=proc.processors.name, shape=tuple(shape))
    return default_grid(num_procs or 1, rank=1)


def substitute_inductions(
    proc: Procedure, frontend: FrontendAnalyses
) -> list[InductionVar]:
    """Induction-variable recognition and closed-form substitution.
    Mutates the statement tree (and bumps ``proc.ir_epoch``) when any
    substitution applies."""
    found = find_induction_vars(proc, frontend.ssa, frontend.const)
    if not found:
        return []
    return substitute_induction_vars(
        proc, found, cfg=frontend.cfg, ssa=frontend.ssa, dom=frontend.dom
    )


def recognize_reductions(
    proc: Procedure, frontend: FrontendAnalyses
) -> list[Reduction]:
    return find_reductions(proc, frontend.ssa)


def analyze_privatizability(
    proc: Procedure, frontend: FrontendAnalyses
) -> PrivatizabilityInfo:
    return PrivatizabilityInfo(proc, frontend.cfg, frontend.ssa, frontend.liveness)


def resolve_array_directives(
    proc: Procedure, grid: ProcessorGrid
) -> dict[str, ArrayMapping]:
    return resolve_mappings(proc, grid)


def assemble_context(
    proc: Procedure,
    grid: ProcessorGrid,
    frontend: FrontendAnalyses,
    inductions: list[InductionVar],
    reductions: list[Reduction],
    priv: PrivatizabilityInfo,
    array_mappings: dict[str, ArrayMapping],
) -> AnalysisContext:
    return AnalysisContext(
        proc=proc,
        grid=grid,
        cfg=frontend.cfg,
        dom=frontend.dom,
        liveness=frontend.liveness,
        ssa=frontend.ssa,
        const=frontend.const,
        priv=priv,
        reductions=reductions,
        inductions=inductions,
        array_mappings=array_mappings,
    )


def _prod(shape) -> int:
    total = 1
    for s in shape:
        total *= s
    return total
