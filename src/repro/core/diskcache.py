"""Persistent on-disk compile cache.

Compiling a ``(source, options)`` point costs the whole pass pipeline;
an experiment grid re-runs the same points across processes and across
days.  :class:`CompileCache` stores the finished
:class:`~repro.core.driver.CompiledProgram` as a content-addressed
pickle under a cache root (``~/.cache/repro`` by default, overridable
with ``REPRO_CACHE_DIR`` or an explicit ``--cache-dir``), keyed on

* the SHA-256 of the source text,
* the canonical *options closure* — every ``CompilerOptions`` field,
  including the machine model, rendered deterministically,
* a *pipeline fingerprint* — cache schema version, package version,
  and the ordered pass names — so a pipeline or format change can
  never resurrect stale artifacts.

Loads are corruption-safe by contract: a missing, truncated,
wrong-schema, or otherwise unreadable entry is treated as a miss (and
best-effort deleted), never an error — the caller simply recompiles.
Stores are atomic (temp file + ``os.replace``) so concurrent sweep
workers sharing one cache root cannot observe half-written entries.

``repro cache stats`` / ``repro cache clear`` manage the cache from
the command line.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from .driver import CompiledProgram

#: bump when the pickled payload layout changes; part of the pipeline
#: fingerprint, so old entries become silent misses, not errors
CACHE_SCHEMA = 1

_MAGIC = "repro-compile-cache"
_SUFFIX = ".pkl"


def _package_version() -> str:
    # Deferred so this module never participates in an import cycle
    # with the package __init__.
    try:
        from .. import __version__

        return __version__
    except Exception:  # pragma: no cover - partial-import edge
        return "unknown"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def _canonical_value(value: Any) -> str:
    """Deterministic rendering of one options field value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        inner = ",".join(
            f"{f.name}={_canonical_value(getattr(value, f.name))}"
            for f in sorted(dataclasses.fields(value), key=lambda f: f.name)
        )
        return f"{type(value).__name__}({inner})"
    return repr(value)


def options_signature(options: Any) -> str:
    """The canonical *options closure*: every field of the options
    dataclass (machine model included), in name order."""
    return ";".join(
        f"{f.name}={_canonical_value(getattr(options, f.name))}"
        for f in sorted(dataclasses.fields(options), key=lambda f: f.name)
    )


def pipeline_fingerprint(pipeline: tuple[str, ...] | None = None) -> str:
    """Fingerprint of the compilation pipeline an entry was produced
    by: schema version, package version, ordered pass names."""
    if pipeline is None:
        from .passes import DEFAULT_PIPELINE

        pipeline = DEFAULT_PIPELINE
    payload = f"{_MAGIC}:{CACHE_SCHEMA}:{_package_version()}:{','.join(pipeline)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class DiskCacheStats:
    """Per-session activity counters of one :class:`CompileCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    store_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "store_errors": self.store_errors,
        }


class CompileCache:
    """Content-addressed pickle store for :class:`CompiledProgram`."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root).expanduser() if root else default_cache_dir()
        self.stats = DiskCacheStats()

    # -- keys --------------------------------------------------------------

    def key(
        self,
        source: str,
        options: Any,
        pipeline: tuple[str, ...] | None = None,
    ) -> str:
        """Content address of one compile: (source hash, options
        closure, pipeline fingerprint)."""
        digest = hashlib.sha256()
        digest.update(hashlib.sha256(source.encode("utf-8")).digest())
        digest.update(options_signature(options).encode("utf-8"))
        digest.update(pipeline_fingerprint(pipeline).encode("utf-8"))
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{_SUFFIX}"

    # -- load / store ------------------------------------------------------

    def load(self, key: str) -> "CompiledProgram | None":
        """Return the cached program, or None on miss.  Any unreadable
        entry (truncated pickle, foreign file, schema drift) counts as
        a miss: the bad file is best-effort removed and the caller
        recompiles — a cache must never be able to crash a build."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                magic, schema, compiled = pickle.load(handle)
            if magic != _MAGIC or schema != CACHE_SCHEMA:
                raise ValueError(f"unexpected cache header {magic!r}/{schema!r}")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return compiled

    def store(self, key: str, compiled: "CompiledProgram") -> bool:
        """Atomically persist ``compiled`` under ``key``.  Best-effort:
        a full disk or unpicklable payload degrades to False, never an
        exception."""
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=_SUFFIX
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        (_MAGIC, CACHE_SCHEMA, compiled),
                        handle,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            self.stats.store_errors += 1
            return False
        self.stats.stores += 1
        return True

    def get_or_compile(
        self,
        source: str,
        options: Any,
        compile_fn: Callable[[], "CompiledProgram"],
        pipeline: tuple[str, ...] | None = None,
    ) -> "tuple[CompiledProgram, bool]":
        """``(program, was_hit)``: load if present, else compile via
        ``compile_fn`` and persist the result."""
        key = self.key(source, options, pipeline)
        compiled = self.load(key)
        if compiled is not None:
            return compiled, True
        compiled = compile_fn()
        self.store(key, compiled)
        return compiled, False

    # -- management --------------------------------------------------------

    def _entry_paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"??/*{_SUFFIX}"))

    def entry_count(self) -> int:
        return len(self._entry_paths())

    def total_bytes(self) -> int:
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats_dict(self) -> dict[str, Any]:
        """On-disk footprint plus this session's activity counters
        (``repro cache stats`` and the CI artifact print this)."""
        return {
            "root": str(self.root),
            "entries": self.entry_count(),
            "bytes": self.total_bytes(),
            "schema": CACHE_SCHEMA,
            "session": self.stats.as_dict(),
        }


def as_compile_cache(
    cache: "CompileCache | str | os.PathLike | bool | None",
) -> "CompileCache | None":
    """Normalize the ``cache=`` convenience forms every entry point
    accepts: None/False → disabled, True → default root, a path →
    cache rooted there, a :class:`CompileCache` → itself."""
    if cache is None or cache is False:
        return None
    if isinstance(cache, CompileCache):
        return cache
    if cache is True:
        return CompileCache()
    return CompileCache(cache)
