"""Array privatization (paper Section 3).

For every loop carrying a ``NEW(array)`` clause:

1. select an alignment target exactly as for scalars (the lhs of a
   statement consuming the array's values, resolved to partitioned
   data);
2. attempt **full privatization**: valid when the target's AlignLevel
   (over all its partitioned dimensions) does not exceed the loop's
   nesting level;
3. otherwise attempt **partial privatization** (Section 3.2): privatize
   only the grid dimensions whose target subscripts are well-defined at
   the loop's level, and keep the array partitioned in the remaining
   grid dimensions by distributing a matching dimension of the array
   itself;
4. if nothing applies (or privatization is disabled), the array stays
   on its declared mapping — replicated when it has no directives,
   which is the disastrous baseline the paper's Table 3 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.expr import ArrayElemRef, ScalarRef, affine_form
from ..ir.stmt import AssignStmt, LoopStmt
from ..ir.symbols import Symbol
from ..mapping.descriptors import ArrayMapping
from .align_level import subscript_align_level
from .context import AnalysisContext
from .mapping_kinds import AlignedTo, ArrayPrivatization, ReductionMapping
from .partial import build_privatized_mapping, find_matching_array_dim


@dataclass
class ArrayMappingOptions:
    privatize_arrays: bool = True
    partial_privatization: bool = True
    #: the paper's stated future work: infer array privatizability
    #: automatically (Tu–Padua coverage analysis) instead of relying on
    #: NEW clauses — see repro.analysis.array_sections
    auto_privatization: bool = False


@dataclass
class ArrayMappingResult:
    """Outcome of the array privatization pass."""

    privatizations: list[ArrayPrivatization] = field(default_factory=list)
    #: effective mapping per array name (privatized arrays overridden)
    effective: dict[str, ArrayMapping] = field(default_factory=dict)
    #: arrays whose privatization was attempted and failed (reporting)
    failures: list[tuple[str, LoopStmt, str]] = field(default_factory=list)


class ArrayMappingPass:
    def __init__(
        self,
        ctx: AnalysisContext,
        scalar_pass,
        options: ArrayMappingOptions | None = None,
    ):
        self.ctx = ctx
        self.scalar_pass = scalar_pass
        self.options = options or ArrayMappingOptions()

    def run(self) -> ArrayMappingResult:
        result = ArrayMappingResult(effective=dict(self.ctx.array_mappings))
        if not self.options.privatize_arrays:
            return result
        for loop in self.ctx.proc.loops():
            candidates: list[Symbol] = []
            for name in loop.new_vars:
                symbol = self.ctx.proc.symbols.lookup(name)
                if symbol is not None and symbol.is_array:
                    candidates.append(symbol)
            if loop.independent:
                # Paper Sec. 3.1: "phpf is also able to infer the
                # privatizability of an array from a weaker form of a
                # parallel loop directive which indicates that a loop
                # has no true loop-carried value-based dependences" —
                # a bare INDEPENDENT asserts exactly that, so any array
                # whose lhs references contribute memory-based carried
                # dependences must be privatizable.
                candidates.extend(self._independent_candidates(loop, candidates))
            if self.options.auto_privatization:
                candidates.extend(self._auto_candidates(loop, candidates))
            for symbol in candidates:
                if symbol.name in {
                    p.array.name for p in result.privatizations
                }:
                    continue  # already privatized w.r.t. an outer loop
                self._privatize_array(symbol, loop, result)
        return result

    def _independent_candidates(
        self, loop, declared: list[Symbol]
    ) -> list[Symbol]:
        """Arrays inferable from a bare INDEPENDENT directive: written
        in the loop with subscripts invariant w.r.t. it (memory-based
        carried dependences that only privatization can remove — the
        directive guarantees they are not value-based)."""
        from ..ir.expr import ArrayElemRef

        declared_names = {s.name for s in declared}
        names: set[str] = set()
        for stmt in loop.walk():
            for ref in stmt.defs():
                if isinstance(ref, ArrayElemRef):
                    names.add(ref.symbol.name)
        out: list[Symbol] = []
        for name in sorted(names):
            if name in declared_names:
                continue
            symbol = self.ctx.proc.symbols.require(name)
            if self.ctx.priv.array_needs_privatization(symbol, loop):
                out.append(symbol)
        return out

    def _auto_candidates(self, loop, declared: list[Symbol]) -> list[Symbol]:
        """Arrays inferable as privatizable without a NEW clause (the
        paper's future-work integration). Only arrays that actually
        carry privatization-removable memory dependences are proposed."""
        from ..analysis.array_sections import auto_privatizable_arrays

        declared_names = {s.name for s in declared}
        out: list[Symbol] = []
        for symbol in auto_privatizable_arrays(
            self.ctx.proc, self.ctx.cfg, self.ctx.liveness, loop
        ):
            if symbol.name in declared_names:
                continue
            if self.ctx.priv.array_needs_privatization(symbol, loop):
                out.append(symbol)
        return out

    # ------------------------------------------------------------------

    def _privatize_array(
        self, array: Symbol, loop: LoopStmt, result: ArrayMappingResult
    ) -> None:
        ctx = self.ctx
        target = self._select_target(array, loop)
        level = loop.level

        if target is None:
            # No partitioned consumer: privatize fully without an
            # alignment constraint (analogue of a scalar's
            # privatization without alignment).
            mapping = build_privatized_mapping(
                result.effective[array.name],
                None,
                priv_grid_dims=tuple(range(ctx.grid.rank)),
                partitioned_dims={},
            )
            priv = ArrayPrivatization(
                array=array,
                loop=loop,
                privatized_grid_dims=tuple(range(ctx.grid.rank)),
            )
            result.privatizations.append(priv)
            result.effective[array.name] = mapping
            return

        target_mapping = ctx.array_mappings[target.symbol.name]
        target_stmt = ctx.proc.stmt_of_ref(target)

        # SubscriptAlignLevel per distributed grid dim of the target.
        dim_levels: dict[int, int] = {}
        for g, role in enumerate(target_mapping.roles):
            if role.kind != "dist":
                continue
            sub = target.subscripts[role.array_dim]
            dim_levels[g] = subscript_align_level(sub, target_stmt, ctx.proc, ctx.ssa)

        full_level = max(dim_levels.values(), default=0)
        if full_level <= level:
            # Full privatization is valid.
            priv_dims = tuple(sorted(dim_levels))
            mapping = build_privatized_mapping(
                result.effective[array.name],
                target_mapping,
                priv_grid_dims=priv_dims
                or tuple(range(ctx.grid.rank)),
                partitioned_dims={},
            )
            result.privatizations.append(
                ArrayPrivatization(
                    array=array,
                    loop=loop,
                    privatized_grid_dims=priv_dims or tuple(range(ctx.grid.rank)),
                    target=target,
                    align_level=full_level,
                )
            )
            result.effective[array.name] = mapping
            return

        if not self.options.partial_privatization:
            result.failures.append(
                (
                    array.name,
                    loop,
                    f"AlignLevel {full_level} > loop level {level}; "
                    f"partial privatization disabled",
                )
            )
            return

        # Partial privatization: privatize grid dims whose subscript is
        # well-defined at the loop's level; partition the rest.
        priv_dims = tuple(g for g, l in dim_levels.items() if l <= level)
        part_grid_dims = tuple(g for g, l in dim_levels.items() if l > level)
        if not priv_dims:
            result.failures.append(
                (array.name, loop, "no grid dimension is privatizable")
            )
            return
        partitioned_dims: dict[int, int] = {}
        for g in part_grid_dims:
            role = target_mapping.roles[g]
            sub = target.subscripts[role.array_dim]
            form = affine_form(sub)
            driving = {s.name for s in form.symbols} if form is not None else set()
            array_dim = find_matching_array_dim(ctx.proc, array, loop, driving)
            if array_dim is None:
                result.failures.append(
                    (
                        array.name,
                        loop,
                        f"no dimension of {array.name} matches the traversal "
                        f"of grid dim {g}",
                    )
                )
                return
            partitioned_dims[array_dim] = g
        mapping = build_privatized_mapping(
            result.effective[array.name],
            target_mapping,
            priv_grid_dims=priv_dims,
            partitioned_dims=partitioned_dims,
        )
        result.privatizations.append(
            ArrayPrivatization(
                array=array,
                loop=loop,
                privatized_grid_dims=priv_dims,
                partitioned_dims=partitioned_dims,
                target=target,
                align_level=max(
                    (dim_levels[g] for g in priv_dims), default=0
                ),
            )
        )
        result.effective[array.name] = mapping

    # ------------------------------------------------------------------

    def _select_target(
        self, array: Symbol, loop: LoopStmt
    ) -> ArrayElemRef | None:
        """Alignment target: the lhs of a statement consuming the
        array's values inside the loop (resolved to partitioned data),
        preferring consumers whose partitioned dims are traversed
        deepest — same heuristic as for scalars."""
        candidates: list[tuple[int, ArrayElemRef]] = []
        for stmt in loop.walk():
            if not isinstance(stmt, AssignStmt):
                continue
            reads_array = any(
                isinstance(r, ArrayElemRef) and r.symbol.name == array.name
                for r in stmt.rhs.refs()
            )
            if not reads_array:
                continue
            resolved = self._resolve_lhs(stmt)
            if resolved is None:
                continue
            mapping = self.ctx.array_mappings.get(resolved.symbol.name)
            if mapping is None or mapping.is_replicated:
                continue
            score = sum(1 for r in mapping.roles if r.kind == "dist")
            candidates.append((score, resolved))
        if not candidates:
            return None
        return max(candidates, key=lambda t: t[0])[1]

    def _resolve_lhs(self, stmt: AssignStmt) -> ArrayElemRef | None:
        if isinstance(stmt.lhs, ArrayElemRef):
            return stmt.lhs
        if isinstance(stmt.lhs, ScalarRef):
            def_id = self.ctx.ssa.def_of_lhs.get(stmt.lhs.ref_id)
            if def_id is None:
                return None
            mapping = self.scalar_pass.decisions.get(def_id)
            if isinstance(mapping, (AlignedTo, ReductionMapping)):
                return mapping.target
        return None


def run_array_mapping(
    ctx: AnalysisContext, scalar_pass, options: ArrayMappingOptions | None = None
) -> ArrayMappingResult:
    return ArrayMappingPass(ctx, scalar_pass, options).run()
