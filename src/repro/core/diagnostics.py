"""Compiler diagnostics: human-readable explanations of the mapping
decisions and performance hazards of a compiled program.

These are the messages a production HPF compiler of the era printed
under ``-qreport``: why a scalar stayed replicated, which transfers
could not be vectorized out of their loops, which arrays are silently
replicated for lack of a directive, and what the privatization passes
accomplished.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.expr import ArrayElemRef, ScalarRef
from ..ir.stmt import AssignStmt, Stmt
from .consumer import classify_use
from .driver import CompiledProgram
from .mapping_kinds import (
    AlignedTo,
    FullyReplicatedReduction,
    PrivateNoAlign,
    Replicated,
    ReductionMapping,
)


@dataclass(frozen=True)
class Diagnostic:
    severity: str  # "info" | "warning"
    code: str
    message: str
    stmt_id: int | None = None

    def __str__(self) -> str:
        where = f" [S{self.stmt_id}]" if self.stmt_id is not None else ""
        return f"{self.severity.upper()} {self.code}{where}: {self.message}"


_REASONS = {
    "loop-bound": "it is used in a loop bound, which every processor evaluates",
    "lhs-subscript": "it subscripts an assignment target, so every processor "
    "needs it to evaluate the ownership guard",
    "if-cond": "it is used in a branch predicate whose dependents span "
    "multiple owners",
    "rhs-subscript": "it subscripts a reference that itself requires "
    "communication",
    "call-arg": "it is passed to an external call",
}


def diagnose(compiled: CompiledProgram) -> list[Diagnostic]:
    """All diagnostics for a compiled program, warnings first."""
    out: list[Diagnostic] = []
    out.extend(_replication_reasons(compiled))
    out.extend(_unmapped_arrays(compiled))
    out.extend(_inner_loop_comm(compiled))
    out.extend(_privatization_failures(compiled))
    out.extend(_veto_notes(compiled))
    out.extend(_transform_notes(compiled))
    out.sort(key=lambda d: (d.severity != "warning", d.code))
    return out


# ----------------------------------------------------------------------


def _replication_reasons(compiled: CompiledProgram):
    """Why did a privatizable scalar stay replicated?"""
    ctx = compiled.ctx
    seen: set[str] = set()
    for stmt in compiled.proc.assignments():
        if not isinstance(stmt.lhs, ScalarRef):
            continue
        mapping = compiled.scalar_mapping_of(stmt.stmt_id)
        if not isinstance(mapping, Replicated):
            continue
        d = ctx.ssa.def_of_assignment(stmt)
        if d is None or ctx.priv.deepest_privatization_level(d) is None:
            continue  # genuinely not privatizable: replication is forced
        name = stmt.lhs.symbol.name
        if name in seen:
            continue
        seen.add(name)
        reason = None
        for use in ctx.ssa.reached_uses(d):
            use_ctx = classify_use(use, ctx.ssa.stmt_of_use(use))
            if use_ctx.role in _REASONS and use_ctx.role != "rhs-value":
                reason = _REASONS[use_ctx.role]
                break
        if reason is None:
            reason = "no partitioned alignment target was valid"
        yield Diagnostic(
            severity="warning",
            code="W-REPL-SCALAR",
            message=(
                f"privatizable scalar {name} stays replicated: {reason}"
            ),
            stmt_id=stmt.stmt_id,
        )


def _unmapped_arrays(compiled: CompiledProgram):
    for name, mapping in sorted(compiled.mappings.items()):
        if not mapping.is_replicated or mapping.privatized_grid_dims:
            continue
        symbol = mapping.array
        declared = compiled.proc.distribute_of(symbol) or compiled.proc.align_of(
            symbol
        )
        if declared is not None:
            continue  # explicitly replicated via '*' alignment: intended
        bytes_total = symbol.size() * compiled.options.machine.element_bytes
        yield Diagnostic(
            severity="warning",
            code="W-REPL-ARRAY",
            message=(
                f"array {name} has no DISTRIBUTE/ALIGN directive and is "
                f"replicated on every processor "
                f"({bytes_total / 1024:.1f} KiB each)"
            ),
        )


def _inner_loop_comm(compiled: CompiledProgram):
    for event in compiled.comm.inner_loop_events():
        yield Diagnostic(
            severity="warning",
            code="W-INNER-COMM",
            message=(
                f"transfer of {event.ref} cannot be vectorized out of the "
                f"innermost loop (the value is produced inside it); pattern "
                f"{event.pattern}"
            ),
            stmt_id=event.stmt.stmt_id,
        )


def _privatization_failures(compiled: CompiledProgram):
    for name, loop, reason in compiled.array_result.failures:
        yield Diagnostic(
            severity="warning",
            code="W-PRIV-FAIL",
            message=(
                f"array {name} could not be privatized w.r.t. loop "
                f"{loop.var.name}: {reason}"
            ),
            stmt_id=loop.stmt_id,
        )


def _veto_notes(compiled: CompiledProgram):
    for stmt in compiled.proc.assignments():
        if not isinstance(stmt.lhs, ScalarRef):
            continue
        mapping = compiled.scalar_mapping_of(stmt.stmt_id)
        if isinstance(mapping, AlignedTo) and not mapping.is_consumer:
            yield Diagnostic(
                severity="info",
                code="I-PRODUCER",
                message=(
                    f"scalar {stmt.lhs.symbol.name} aligned with producer "
                    f"{mapping.target} (consumer alignment would force "
                    f"inner-loop communication)"
                ),
                stmt_id=stmt.stmt_id,
            )


def _transform_notes(compiled: CompiledProgram):
    for iv in compiled.ctx.inductions:
        yield Diagnostic(
            severity="info",
            code="I-INDUCTION",
            message=(
                f"induction variable {iv.symbol.name} replaced by its closed "
                f"form {iv.closed_form} and privatized without alignment"
            ),
            stmt_id=iv.update_stmt.stmt_id,
        )
    seen: set[int] = set()
    for stmt in compiled.proc.assignments():
        mapping = compiled.scalar_mapping_of(stmt.stmt_id)
        if isinstance(mapping, (ReductionMapping, FullyReplicatedReduction)):
            if isinstance(stmt.lhs, ScalarRef) and id(stmt.lhs.symbol) not in seen:
                seen.add(id(stmt.lhs.symbol))
                yield Diagnostic(
                    severity="info",
                    code="I-REDUCTION",
                    message=(
                        f"scalar {stmt.lhs.symbol.name} recognized as a "
                        f"{mapping.op} reduction: {mapping}"
                    ),
                    stmt_id=stmt.stmt_id,
                )
    for priv in compiled.array_result.privatizations:
        yield Diagnostic(
            severity="info",
            code="I-ARRAY-PRIV",
            message=str(priv),
            stmt_id=priv.loop.stmt_id,
        )


def render_diagnostics(diagnostics: list[Diagnostic]) -> str:
    if not diagnostics:
        return "no diagnostics"
    return "\n".join(str(d) for d in diagnostics)
