"""Scalar expansion — the classical alternative the paper's related
work contrasts with (Padua & Wolfe [16]; array expansion, Feautrier
[7]).

Expansion removes the storage-related anti/output dependences of a
privatizable scalar by materializing one element per loop iteration:
``x`` in ``DO i`` becomes ``X_XP(i)``, every definition/use inside the
loop is rewritten to ``X_XP(i)``, and the new array is aligned with the
scalar's would-be consumer target so the owner-computes rule still
places the computation sensibly.

The paper's framework achieves the same parallelism with *O(1)* storage
per processor (a privatized copy) instead of *O(n)*; this module exists
to measure exactly that trade-off (`benchmarks/bench_expansion.py`).

The transformation is a source-level rewrite producing a new
:class:`~repro.ir.program.Procedure` that compiles through the ordinary
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.build import parse_and_build
from ..ir.expr import (
    ArrayElemRef,
    Expr,
    ScalarRef,
    clone_expr,
)
from ..ir.program import AlignSpec, Procedure
from ..ir.stmt import AssignStmt, IfStmt, LoopStmt, Stmt
from ..ir.symbols import ScalarType, Symbol, SymbolKind
from .context import AnalysisContext
from .passes import build_context
from .mapping_kinds import AlignedTo


@dataclass
class ExpansionResult:
    proc: Procedure
    #: scalar name -> expansion array name
    expanded: dict[str, str] = field(default_factory=dict)


def _expansion_candidates(ctx: AnalysisContext) -> dict[str, LoopStmt]:
    """Scalars to expand: privatizable, defined and used within one
    loop, not induction/reduction variables (those have their own
    treatments in both worlds)."""
    reduction_names = {r.symbol.name for r in ctx.reductions} | {
        r.location_symbol.name
        for r in ctx.reductions
        if r.location_symbol is not None
    }
    induction_names = {iv.symbol.name for iv in ctx.inductions}
    candidates: dict[str, LoopStmt] = {}
    for stmt in ctx.proc.assignments():
        if not isinstance(stmt.lhs, ScalarRef):
            continue
        name = stmt.lhs.symbol.name
        if name in reduction_names or name in induction_names:
            continue
        d = ctx.ssa.def_of_assignment(stmt)
        if d is None or stmt.loop is None:
            continue
        if not ctx.priv.is_privatizable(d):
            candidates.pop(name, None)
            continue
        loop = stmt.loop
        previous = candidates.get(name)
        if previous is not None and previous is not loop:
            candidates.pop(name, None)  # used across distinct loops: skip
            continue
        candidates[name] = loop
    return candidates


def _rewrite_expr(expr: Expr, name: str, replacement: ArrayElemRef) -> Expr:
    if isinstance(expr, ScalarRef):
        if expr.symbol.name == name:
            return clone_expr(replacement)
        return expr
    if isinstance(expr, ArrayElemRef):
        expr.subscripts = [
            _rewrite_expr(s, name, replacement) for s in expr.subscripts
        ]
        return expr
    for attr in ("left", "right", "operand"):
        child = getattr(expr, attr, None)
        if child is not None:
            setattr(expr, attr, _rewrite_expr(child, name, replacement))
    args = getattr(expr, "args", None)
    if args is not None:
        expr.args = [_rewrite_expr(a, name, replacement) for a in args]
    return expr


def expand_scalars(source: str, num_procs: int | None = None) -> ExpansionResult:
    """Apply scalar expansion to every eligible privatizable scalar and
    return the transformed procedure (plus the renaming map)."""
    proc = parse_and_build(source)
    ctx = build_context(proc, num_procs=num_procs)
    candidates = _expansion_candidates(ctx)
    # Alignment targets must be computed before the rewriting destroys
    # the scalar definitions the mapping pass inspects.
    targets = {name: _consumer_target_of(ctx, name) for name in candidates}

    expanded: dict[str, str] = {}
    for name, loop in candidates.items():
        scalar = ctx.proc.symbols.require(name)
        array_name = f"{name}_XP"
        if array_name in ctx.proc.symbols:
            continue
        # Classical expansion: one dimension per loop being
        # parallelized — the loops whose indices traverse the consumer
        # target's subscripts (there is no point expanding across a
        # sequential time-step loop). Each dimension is sized by its
        # loop's constant bounds; non-constant bounds disqualify.
        target = targets.get(name)
        if target is None:
            continue  # replicated-data temporaries stay scalars
        chain = [
            l
            for l in [*loop.loops_enclosing(), loop]
            if _drives_target(l, target)
        ]
        if not chain:
            continue
        dims: list[tuple[int, int]] = []
        for l in chain:
            low = ctx.const.eval_expr(l.low)
            high = ctx.const.eval_expr(l.high)
            if not isinstance(low, int) or not isinstance(high, int) or high < low:
                dims = []
                break
            dims.append((low, high))
        if not dims:
            continue
        exp = ctx.proc.symbols.declare(
            Symbol(
                name=array_name,
                kind=SymbolKind.ARRAY,
                type=scalar.type,
                dims=tuple(dims),
            )
        )
        replacement = ArrayElemRef(
            symbol=exp,
            subscripts=[ScalarRef(symbol=l.var) for l in chain],
        )
        # Rewrite within the outermost loop of the chain (the scalar is
        # privatizable, so all its uses live there).
        region = chain[0]
        for stmt in region.walk():
            if isinstance(stmt, AssignStmt):
                if isinstance(stmt.lhs, ScalarRef) and stmt.lhs.symbol.name == name:
                    stmt.lhs = clone_expr(replacement)
                elif isinstance(stmt.lhs, ArrayElemRef):
                    stmt.lhs.subscripts = [
                        _rewrite_expr(s, name, replacement)
                        for s in stmt.lhs.subscripts
                    ]
                stmt.rhs = _rewrite_expr(stmt.rhs, name, replacement)
            elif isinstance(stmt, IfStmt):
                stmt.cond = _rewrite_expr(stmt.cond, name, replacement)
            elif isinstance(stmt, LoopStmt) and stmt is not region:
                stmt.low = _rewrite_expr(stmt.low, name, replacement)
                stmt.high = _rewrite_expr(stmt.high, name, replacement)
        # Align the expanded array with the consumer the mapping
        # algorithm would have chosen for the scalar: each expansion
        # dimension maps to the target dimension traversed by the same
        # loop index, so ownership placement matches the privatized
        # version.
        self_align = _alignment_for_expansion(ctx, exp, chain, target)
        if self_align is not None:
            ctx.proc.aligns.append(self_align)
        expanded[name] = array_name

    ctx.proc.finalize()
    return ExpansionResult(proc=ctx.proc, expanded=expanded)


def _drives_target(loop: LoopStmt, target: ArrayElemRef) -> bool:
    from ..ir.expr import affine_form

    for sub in target.subscripts:
        form = affine_form(sub)
        if form is not None and form.coeff(loop.var) != 0:
            return True
    return False


def _alignment_for_expansion(
    ctx: AnalysisContext,
    exp: Symbol,
    chain: list[LoopStmt],
    target: ArrayElemRef,
) -> AlignSpec | None:
    """Dimension-wise alignment of the expanded array: expansion dim k
    (indexed by loop var v_k) maps onto the target array dimension whose
    subscript is driven by v_k."""
    from ..ir.expr import affine_form

    t_mapping = ctx.array_mappings.get(target.symbol.name)
    if t_mapping is None:
        return None
    axis_map: list[tuple[int, int, int] | None] = [None] * exp.rank
    matched_dims: set[int] = set()
    for k, l in enumerate(chain):
        for t_dim, sub in enumerate(target.subscripts):
            form = affine_form(sub)
            if form is not None and form.coeff(l.var) != 0 and t_dim not in matched_dims:
                stride = form.coeff(l.var)
                offset = form.const
                axis_map[k] = (t_dim, stride, offset)
                matched_dims.add(t_dim)
                break
    if not any(m is not None for m in axis_map):
        return None
    replicated = tuple(
        role.array_dim
        for role in t_mapping.roles
        if role.kind == "dist" and role.array_dim not in matched_dims
    )
    return AlignSpec(
        array=exp,
        target=target.symbol,
        axis_map=tuple(axis_map),
        replicated_target_dims=replicated,
    )


def _consumer_target_of(ctx: AnalysisContext, name: str):
    """What the paper's algorithm would align the scalar with — run the
    scalar mapping pass once and look up the decision."""
    from .scalar_mapping import ScalarMappingOptions, run_scalar_mapping

    scalar_pass = run_scalar_mapping(ctx, ScalarMappingOptions())
    for stmt in ctx.proc.assignments():
        if isinstance(stmt.lhs, ScalarRef) and stmt.lhs.symbol.name == name:
            d = ctx.ssa.def_of_assignment(stmt)
            if d is None:
                continue
            mapping = scalar_pass.decisions.get(d.def_id)
            if isinstance(mapping, AlignedTo):
                return mapping.target
    return None
