"""The pass manager: the compilation pipeline as named, instrumented,
cacheable passes.

The driver used to hard-wire the paper's phases (SSA → induction →
reduction/privatizability → DetermineMapping → partitioning →
communication analysis) as one monolithic function. Here each phase is
a :class:`Pass` with declared inputs/outputs, sequenced by a
:class:`PassManager` that

* caches analysis results in a typed :class:`AnalysisCache` keyed on
  (procedure fingerprint, relevant compiler options), so strategy
  ablations over one procedure re-run only the mapping back end;
* invalidates cached analyses when a transform pass (induction
  substitution, scalar expansion, inlining) mutates the IR — detected
  through ``Procedure.ir_epoch``, which every ``finalize()`` bumps;
* records per-pass wall time and invocation counts into a
  :class:`PipelineTimings` report (``repro compile --timings``).

Passes are looked up in a process-wide registry by name. The core
passes below register themselves at import; the communication passes
are registered by ``repro.comm.passes`` when ``repro.comm`` is
imported (which ``repro/__init__`` always does). That registration is
what breaks the old ``repro.core`` ↔ ``repro.comm`` import cycle:
``repro.core`` never imports ``repro.comm``, it only names its passes.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Callable, NamedTuple

from ..errors import ReproError
from ..ir.build import parse_and_build
from ..ir.program import Procedure
from ..obs import Metrics, NULL_TRACER, Tracer
from ..mapping.grid import ProcessorGrid
from ..partition.owner_computes import run_partitioning
from .array_mapping import ArrayMappingOptions, run_array_mapping
from .context import (
    AnalysisContext,
    analyze_frontend,
    analyze_privatizability,
    assemble_context,
    recognize_reductions,
    resolve_array_directives,
    resolve_grid,
    substitute_inductions,
)
from .control_flow import ControlFlowOptions, run_control_flow
from .scalar_mapping import ScalarMappingOptions, run_scalar_mapping


class PassError(ReproError):
    """Misconfigured or missing pass."""


class UnknownPassError(PassError):
    """A pipeline names a pass that nothing has registered."""


# ---------------------------------------------------------------------------
# Pass descriptors and pipeline state
# ---------------------------------------------------------------------------


@dataclass
class PipelineState:
    """Working state of one compilation: the procedure, the options it
    is compiled under, and the products computed so far."""

    proc: Procedure
    options: Any
    products: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        return self.products[name]

    def __contains__(self, name: str) -> bool:
        return name in self.products


@dataclass(frozen=True)
class Pass:
    """One named pipeline stage.

    ``run`` receives the :class:`PipelineState` and returns a dict of
    the products it provides. ``option_keys`` names the
    ``CompilerOptions`` fields the pass reads — together with the
    option keys of everything it (transitively) requires, they form the
    options part of its cache key.
    """

    name: str
    run: Callable[[PipelineState], dict[str, Any]]
    provides: tuple[str, ...]
    requires: tuple[str, ...] = ()
    option_keys: tuple[str, ...] = ()
    #: mutates the statement tree; triggers cache invalidation and
    #: recomputation of already-computed IR-dependent products
    transforms_ir: bool = False
    #: result depends on the statement tree (False: directives only)
    ir_dependent: bool = True
    #: front-end analyses are cacheable; mapping/comm back-end passes
    #: are cheap relative to their option fan-out and stay uncached
    cacheable: bool = True
    #: predicate on the options deciding whether the pass runs at all
    enabled: Callable[[Any], bool] | None = None


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Pass] = {}


def register_pass(p: Pass, *, replace: bool = False) -> Pass:
    if not replace and p.name in _REGISTRY:
        raise PassError(f"pass {p.name!r} is already registered")
    _REGISTRY[p.name] = p
    return p


def registered_pass(name: str) -> Pass:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownPassError(
            f"no pass named {name!r} is registered "
            f"(registered: {sorted(_REGISTRY)}); the communication passes "
            "are registered by importing repro.comm"
        ) from None


def registered_passes() -> dict[str, Pass]:
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Timings
# ---------------------------------------------------------------------------


@dataclass
class PassTiming:
    name: str
    calls: int = 0
    cache_hits: int = 0
    seconds: float = 0.0


@dataclass
class PipelineTimings:
    """Per-pass wall-time / invocation metrics of one run or, merged,
    of a whole batch."""

    passes: dict[str, PassTiming] = field(default_factory=dict)

    def record(self, name: str, seconds: float, *, cached: bool = False) -> None:
        entry = self.passes.setdefault(name, PassTiming(name=name))
        entry.calls += 1
        entry.seconds += seconds
        if cached:
            entry.cache_hits += 1

    def merge(self, other: "PipelineTimings") -> "PipelineTimings":
        for name, timing in other.passes.items():
            entry = self.passes.setdefault(name, PassTiming(name=name))
            entry.calls += timing.calls
            entry.cache_hits += timing.cache_hits
            entry.seconds += timing.seconds
        return self

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.passes.values())

    def cache_hit(self, name: str) -> bool:
        timing = self.passes.get(name)
        return timing is not None and timing.cache_hits > 0

    def as_dict(self) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "passes": [
                {
                    "name": t.name,
                    "calls": t.calls,
                    "cache_hits": t.cache_hits,
                    "seconds": t.seconds,
                }
                for t in self.passes.values()
            ],
        }

    def render(self) -> str:
        total = self.total_seconds or 1.0
        width = max([len("pass")] + [len(n) for n in self.passes])
        lines = [
            f"{'pass':<{width}} {'calls':>6} {'cached':>7} {'time':>10} {'share':>7}",
            "-" * (width + 34),
        ]
        for t in self.passes.values():
            lines.append(
                f"{t.name:<{width}} {t.calls:>6} {t.cache_hits:>7} "
                f"{t.seconds * 1e3:>8.2f}ms {100 * t.seconds / total:>6.1f}%"
            )
        lines.append(
            f"{'total':<{width}} {'':>6} {'':>7} {self.total_seconds * 1e3:>8.2f}ms"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Analysis cache
# ---------------------------------------------------------------------------


class CacheKey(NamedTuple):
    pass_name: str
    #: (Procedure.uid, ir_epoch) — the epoch is dropped for passes that
    #: only read directives (ir_dependent=False)
    fingerprint: tuple
    #: ((option name, value), ...) over the pass's transitive option keys
    option_sig: tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0


class AnalysisCache:
    """Pass products keyed on (procedure fingerprint, options)."""

    def __init__(self) -> None:
        self._entries: dict[CacheKey, dict[str, Any]] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: CacheKey) -> dict[str, Any] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def store(self, key: CacheKey, products: dict[str, Any]) -> None:
        self._entries[key] = products

    def invalidate_stale(self, proc: Procedure) -> int:
        """Drop every entry of ``proc`` recorded at an older IR epoch
        (called after a transform pass mutates the statement tree)."""
        stale = [
            key
            for key in self._entries
            if key.fingerprint[0] == proc.uid
            and len(key.fingerprint) > 1
            and key.fingerprint[1] != proc.ir_epoch
        ]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------

#: the paper's pipeline, in phase order; the last two names are
#: registered by repro.comm
DEFAULT_PIPELINE: tuple[str, ...] = (
    "grid",
    "ssa",
    "induction",
    "reductions",
    "privatizability",
    "array-directives",
    "context",
    "scalar-mapping",
    "array-mapping",
    "control-flow",
    "partitioning",
    "comm-analysis",
    "message-combining",
    "lowering",
    "slabexec",
    "tierplan",
)


class PassManager:
    """Sequences a pipeline of registered passes over procedures,
    caching analysis products and collecting per-pass metrics.

    One manager may serve many compilations (that is the point): its
    :class:`AnalysisCache` carries front-end analyses across option
    ablations of the same procedure, and its parse cache carries the
    IR across repeated ``compile_source`` calls on the same text.
    ``metrics`` accumulates timings over everything the manager ran.
    """

    def __init__(
        self,
        pipeline: tuple[str, ...] = DEFAULT_PIPELINE,
        cache: AnalysisCache | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.pipeline = tuple(pipeline)
        self.cache = cache if cache is not None else AnalysisCache()
        self.metrics = PipelineTimings()
        #: repro.obs tracer wrapping parse and every pass execution;
        #: the disabled NULL_TRACER by default
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._parse_cache: dict[str, Procedure] = {}
        self._option_closures: dict[str, tuple[str, ...]] = {}

    # -- parsing -----------------------------------------------------------

    def parse(self, source: str, timings: PipelineTimings | None = None) -> Procedure:
        """Parse + lower ``source``, memoized on the source text. Batch
        ablations over one program therefore share a single IR — and
        with it every cached analysis."""
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        started = time.perf_counter()
        with self.tracer.span("parse", cat="compile") as span:
            proc = self._parse_cache.get(digest)
            cached = proc is not None
            if proc is None:
                proc = parse_and_build(source)
                self._parse_cache[digest] = proc
            span.add(cached=cached)
        elapsed = time.perf_counter() - started
        for sink in (timings, self.metrics):
            if sink is not None:
                sink.record("parse", elapsed, cached=cached)
        return proc

    # -- running -----------------------------------------------------------

    def run(
        self,
        proc: Procedure,
        options: Any,
        *,
        targets: tuple[str, ...] | None = None,
        seeds: dict[str, Any] | None = None,
    ) -> tuple[PipelineState, PipelineTimings]:
        """Run the pipeline over ``proc``. ``seeds`` pre-populates
        products (their producing passes are skipped); with ``targets``
        the run stops as soon as all named products exist."""
        state = PipelineState(proc=proc, options=options, products=dict(seeds or {}))
        seeded = frozenset(seeds or ())
        timings = PipelineTimings()
        executed: list[Pass] = []
        for name in self.pipeline:
            if targets is not None and all(t in state.products for t in targets):
                break
            p = registered_pass(name)
            if all(prov in seeded for prov in p.provides):
                continue
            if p.enabled is not None and not p.enabled(options):
                continue
            self._execute(p, state, timings, executed)
            executed.append(p)
        if targets is not None:
            missing = [t for t in targets if t not in state.products]
            if missing:
                raise PassError(
                    f"pipeline {self.pipeline} produced no {missing!r}"
                )
        return state, timings

    def _execute(
        self,
        p: Pass,
        state: PipelineState,
        timings: PipelineTimings,
        executed: list[Pass],
    ) -> None:
        started = time.perf_counter()
        with self.tracer.span(f"pass:{p.name}", cat="compile") as span:
            key = self._cache_key(p, state)
            if key is not None:
                hit = self.cache.lookup(key)
                if hit is not None:
                    state.products.update(hit)
                    span.add(cached=True)
                    self._record(
                        p.name, time.perf_counter() - started, timings, True
                    )
                    return
            missing = [r for r in p.requires if r not in state.products]
            if missing:
                raise PassError(
                    f"pass {p.name!r} requires {missing!r}, not produced by any "
                    f"earlier pass in pipeline {self.pipeline}"
                )
            epoch_before = state.proc.ir_epoch
            products = p.run(state) or {}
            state.products.update(products)
            if p.transforms_ir and state.proc.ir_epoch != epoch_before:
                self._after_ir_mutation(p, state, products, timings, executed)
            elif key is not None:
                self.cache.store(key, products)
            span.add(cached=False)
        self._record(p.name, time.perf_counter() - started, timings, False)

    def _after_ir_mutation(
        self,
        p: Pass,
        state: PipelineState,
        products: dict[str, Any],
        timings: PipelineTimings,
        executed: list[Pass],
    ) -> None:
        """A transform changed the statement tree: purge stale cache
        entries, recompute the IR-dependent products already in flight,
        and re-key the transform's own result at the new epoch (a later
        compile of the now-substituted procedure hits it instead of
        re-running the transform)."""
        self.cache.invalidate_stale(state.proc)
        for earlier in executed:
            if earlier.ir_dependent and not earlier.transforms_ir:
                self._execute(earlier, state, timings, executed=[])
        key = self._cache_key(p, state)
        if key is not None:
            self.cache.store(key, products)

    def _record(
        self, name: str, seconds: float, timings: PipelineTimings, cached: bool
    ) -> None:
        timings.record(name, seconds, cached=cached)
        self.metrics.record(name, seconds, cached=cached)

    # -- obs export --------------------------------------------------------

    def collect_metrics(self, metrics: Metrics) -> Metrics:
        """Export everything the manager accumulated — analysis-cache
        hit rates, per-pass call/hit/time tallies, and the lowering
        LRU's counters — into a :class:`repro.obs.Metrics` registry."""
        stats = self.cache.stats
        metrics.gauge("compile.cache.hits", stats.hits)
        metrics.gauge("compile.cache.misses", stats.misses)
        metrics.gauge("compile.cache.invalidations", stats.invalidations)
        metrics.gauge("compile.cache.entries", len(self.cache))
        for name, timing in self.metrics.passes.items():
            metrics.gauge(f"compile.pass[{name}].calls", timing.calls)
            metrics.gauge(
                f"compile.pass[{name}].cache_hits", timing.cache_hits
            )
            metrics.gauge(
                f"compile.pass[{name}].seconds", round(timing.seconds, 6)
            )
        # deferred import: repro.machine depends on repro.core
        from ..machine.lowering import lowering_cache_stats

        for key, value in lowering_cache_stats().items():
            metrics.gauge(f"lowering.cache.{key}", value)
        return metrics

    # -- cache keys --------------------------------------------------------

    def _cache_key(self, p: Pass, state: PipelineState) -> CacheKey | None:
        if not p.cacheable:
            return None
        fingerprint = (
            (state.proc.uid, state.proc.ir_epoch)
            if p.ir_dependent
            else (state.proc.uid,)
        )
        option_sig = tuple(
            (k, getattr(state.options, k)) for k in self._option_closure(p.name)
        )
        return CacheKey(pass_name=p.name, fingerprint=fingerprint, option_sig=option_sig)

    def _option_closure(self, name: str) -> tuple[str, ...]:
        """Option keys a pass depends on, transitively through the
        passes producing its required products — so e.g. everything
        downstream of the grid inherits ``num_procs``."""
        cached = self._option_closures.get(name)
        if cached is not None:
            return cached
        providers: dict[str, Pass] = {}
        for pipeline_name in self.pipeline:
            candidate = registered_pass(pipeline_name)
            for product in candidate.provides:
                providers.setdefault(product, candidate)
        keys: set[str] = set()
        stack = [registered_pass(name)]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            keys.update(current.option_keys)
            for product in current.requires:
                producer = providers.get(product)
                if producer is not None:
                    stack.append(producer)
        closure = tuple(sorted(keys))
        self._option_closures[name] = closure
        return closure


# ---------------------------------------------------------------------------
# The core passes
# ---------------------------------------------------------------------------


def _run_grid(state: PipelineState) -> dict[str, Any]:
    return {"grid": resolve_grid(state.proc, num_procs=state.options.num_procs)}


def _run_frontend(state: PipelineState) -> dict[str, Any]:
    return {"frontend": analyze_frontend(state.proc)}


def _run_induction(state: PipelineState) -> dict[str, Any]:
    return {"inductions": substitute_inductions(state.proc, state["frontend"])}


def _run_reductions(state: PipelineState) -> dict[str, Any]:
    return {"reductions": recognize_reductions(state.proc, state["frontend"])}


def _run_privatizability(state: PipelineState) -> dict[str, Any]:
    return {"priv": analyze_privatizability(state.proc, state["frontend"])}


def _run_array_directives(state: PipelineState) -> dict[str, Any]:
    return {"array_mappings": resolve_array_directives(state.proc, state["grid"])}


def _run_context(state: PipelineState) -> dict[str, Any]:
    return {
        "ctx": assemble_context(
            state.proc,
            state["grid"],
            state["frontend"],
            state["inductions"],
            state["reductions"],
            state["priv"],
            state["array_mappings"],
        )
    }


def _run_scalar_mapping(state: PipelineState) -> dict[str, Any]:
    o = state.options
    return {
        "scalar_pass": run_scalar_mapping(
            state["ctx"],
            ScalarMappingOptions(
                strategy=o.strategy, align_reductions=o.align_reductions
            ),
        )
    }


def _run_array_mapping(state: PipelineState) -> dict[str, Any]:
    o = state.options
    return {
        "array_result": run_array_mapping(
            state["ctx"],
            state["scalar_pass"],
            ArrayMappingOptions(
                privatize_arrays=o.privatize_arrays,
                partial_privatization=o.partial_privatization,
                auto_privatization=o.auto_privatize_arrays,
            ),
        )
    }


def _run_control_flow(state: PipelineState) -> dict[str, Any]:
    return {
        "cf_decisions": run_control_flow(
            state["ctx"],
            ControlFlowOptions(
                privatize_control_flow=state.options.privatize_control_flow
            ),
        )
    }


def _run_partitioning(state: PipelineState) -> dict[str, Any]:
    array_result = state["array_result"]
    return {
        "executors": run_partitioning(
            state["ctx"],
            state["scalar_pass"],
            array_result.effective,
            state["cf_decisions"],
            array_result.privatizations,
        )
    }


register_pass(
    Pass(
        name="grid",
        run=_run_grid,
        provides=("grid",),
        option_keys=("num_procs",),
        ir_dependent=False,
    )
)
register_pass(
    Pass(name="ssa", run=_run_frontend, provides=("frontend",))
)
register_pass(
    Pass(
        name="induction",
        run=_run_induction,
        provides=("inductions",),
        requires=("frontend",),
        transforms_ir=True,
    )
)
register_pass(
    Pass(
        name="reductions",
        run=_run_reductions,
        provides=("reductions",),
        requires=("frontend",),
    )
)
register_pass(
    Pass(
        name="privatizability",
        run=_run_privatizability,
        provides=("priv",),
        requires=("frontend",),
    )
)
register_pass(
    Pass(
        name="array-directives",
        run=_run_array_directives,
        provides=("array_mappings",),
        requires=("grid",),
    )
)
register_pass(
    Pass(
        name="context",
        run=_run_context,
        provides=("ctx",),
        requires=(
            "grid",
            "frontend",
            "inductions",
            "reductions",
            "priv",
            "array_mappings",
        ),
    )
)
register_pass(
    Pass(
        name="scalar-mapping",
        run=_run_scalar_mapping,
        provides=("scalar_pass",),
        requires=("ctx",),
        option_keys=("strategy", "align_reductions"),
        cacheable=False,
    )
)
register_pass(
    Pass(
        name="array-mapping",
        run=_run_array_mapping,
        provides=("array_result",),
        requires=("ctx", "scalar_pass"),
        option_keys=(
            "privatize_arrays",
            "partial_privatization",
            "auto_privatize_arrays",
        ),
        cacheable=False,
    )
)
register_pass(
    Pass(
        name="control-flow",
        run=_run_control_flow,
        provides=("cf_decisions",),
        requires=("ctx",),
        option_keys=("privatize_control_flow",),
        cacheable=False,
    )
)
register_pass(
    Pass(
        name="partitioning",
        run=_run_partitioning,
        provides=("executors",),
        requires=("ctx", "scalar_pass", "array_result", "cf_decisions"),
        cacheable=False,
    )
)


def _run_lowering(state: PipelineState) -> dict[str, Any]:
    """Lower every statement to cached closures (the simulator's fast
    path). Keyed only on the IR fingerprint, so every option ablation
    of a procedure shares one lowering."""
    # deferred import: repro.machine depends on repro.core
    from ..machine.lowering import lower_procedure

    return {"lowering": lower_procedure(state.proc)}


register_pass(
    Pass(
        name="lowering",
        run=_run_lowering,
        provides=("lowering",),
    )
)


def _run_slabexec(state: PipelineState) -> dict[str, Any]:
    """Classify every loop nest for the simulator's tier-3 slab engine
    (eligibility only — the runtime plans are built lazily per run).
    Depends on executors and communication placement, so it runs
    per-ablation and stays uncached like the mapping back end."""
    # deferred import: repro.machine depends on repro.core
    from ..machine.slabexec import classify_procedure

    ctx = state["ctx"]
    reduction_ids = {
        s.stmt_id for red in ctx.reductions for s in red.update_stmts
    }
    return {
        "slabexec": classify_procedure(
            state.proc,
            state["executors"],
            state["comm"].events,
            reduction_ids,
            grid_rank=state["grid"].rank,
        )
    }


register_pass(
    Pass(
        name="slabexec",
        run=_run_slabexec,
        provides=("slabexec",),
        requires=("ctx", "grid", "executors", "comm"),
        cacheable=False,
    )
)


def _run_tierplan(state: PipelineState) -> dict[str, Any]:
    """Combine the slab-eligibility report with per-nest cost estimates
    into the pickle-safe TierPlan the runtime consults under
    ``tier="auto"``.  Depends on everything the estimator prices, so it
    runs per-ablation and stays uncached like the mapping back end."""
    # deferred import: repro.perf depends on repro.core
    from ..perf.estimator import PerfEstimator
    from ..perf.tierplan import build_tierplan

    constants = getattr(state.options, "nest_cost_constants", None)
    estimator = PerfEstimator(
        SimpleNamespace(
            proc=state.proc,
            options=state.options,
            ctx=state["ctx"],
            grid=state["grid"],
            executors=state["executors"],
            comm=state["comm"],
        ),
        # host-calibrated constants ride on the options (see
        # ``repro calibrate --save``) so the cached TierPlan reflects
        # the fit it was planned with
        nest_cost_constants=dict(constants) if constants else None,
    )
    return {
        "tierplan": build_tierplan(state.proc, state["slabexec"], estimator)
    }


register_pass(
    Pass(
        name="tierplan",
        run=_run_tierplan,
        provides=("tierplan",),
        requires=("ctx", "grid", "executors", "comm", "slabexec"),
        cacheable=False,
    )
)


# ---------------------------------------------------------------------------
# Convenience: the classic one-call context builder
# ---------------------------------------------------------------------------


def build_context(
    proc: Procedure,
    num_procs: int | None = None,
    grid: ProcessorGrid | None = None,
    substitute_inductions: bool = True,
) -> AnalysisContext:
    """Run the analysis pipeline up to the assembled
    :class:`AnalysisContext`. If the program has a PROCESSORS directive
    it fixes the grid shape; ``num_procs`` (total processor count) may
    rescale it proportionally; an explicit ``grid`` overrides
    everything."""
    seeds: dict[str, Any] = {}
    if grid is not None:
        seeds["grid"] = grid
    if not substitute_inductions:
        seeds["inductions"] = []
    state, _ = PassManager().run(
        proc,
        SimpleNamespace(num_procs=num_procs),
        targets=("ctx",),
        seeds=seeds,
    )
    return state["ctx"]
