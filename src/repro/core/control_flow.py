"""Privatized execution of control-flow statements (paper Section 4).

"If the statement S cannot transfer control to a target statement
outside the body of loop L, then S does not contribute to a computation
partitioning guard for the loop L. Essentially, S will be executed by
the union of all processors executing any other statement inside loop L
for a given iteration. ... Any data referenced in the control predicate
of S has to be communicated to the union of all processors that
participate in the execution of any statement that is
control-dependent on S."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.expr import Ref
from ..ir.program import Procedure
from ..ir.stmt import (
    AssignStmt,
    GotoStmt,
    IfStmt,
    LoopStmt,
    Stmt,
    StopStmt,
)
from .context import AnalysisContext
from .mapping_kinds import ControlFlowDecision


@dataclass
class ControlFlowOptions:
    privatize_control_flow: bool = True


def _gotos_in(stmts: list[Stmt]):
    for stmt in stmts:
        for s in stmt.walk():
            if isinstance(s, (GotoStmt, StopStmt)):
                yield s


def _branch_escapes_loop(proc: Procedure, stmt: Stmt, loop: LoopStmt) -> bool:
    """Does ``stmt`` (or anything nested in it) transfer control outside
    ``loop``?"""
    bodies: list[Stmt]
    if isinstance(stmt, IfStmt):
        bodies = list(stmt.then_body) + list(stmt.else_body)
    else:
        bodies = [stmt]
    for s in _gotos_in(bodies):
        if isinstance(s, StopStmt):
            return True
        target = proc.stmt_at_label(s.target_label)
        if target is None or not (
            target is loop or proc.encloses(loop, target)
        ):
            return True
    return False


def _dependent_statements(stmt: IfStmt) -> list[Stmt]:
    """Statements control-dependent on the IF: its branch bodies. A
    GOTO inside a branch additionally makes the remainder of the loop
    body dependent, which the caller approximates by including every
    following sibling up to the GOTO's target."""
    deps: list[Stmt] = []
    for s in stmt.then_body + stmt.else_body:
        deps.extend(s.walk())
    return deps


def _goto_skipped_statements(proc: Procedure, stmt: IfStmt, loop: LoopStmt) -> list[Stmt]:
    """Statements that a forward GOTO inside the IF may skip — they are
    control-dependent on the predicate too."""
    skipped: list[Stmt] = []
    for goto in _gotos_in(list(stmt.then_body) + list(stmt.else_body)):
        if isinstance(goto, StopStmt):
            continue
        target = proc.stmt_at_label(goto.target_label)
        if target is None:
            continue
        container = _containing_body(loop, stmt)
        if container is None:
            continue
        started = False
        for sibling in container:
            if sibling is stmt:
                started = True
                continue
            if sibling is target:
                break
            if started:
                skipped.extend(sibling.walk())
    return skipped


def _containing_body(loop: LoopStmt, stmt: Stmt) -> list[Stmt] | None:
    """The statement list of ``loop``'s body that directly contains
    ``stmt`` (searching nested IF bodies as well)."""
    def search(body: list[Stmt]) -> list[Stmt] | None:
        if any(s is stmt for s in body):
            return body
        for s in body:
            if isinstance(s, IfStmt):
                found = search(s.then_body) or search(s.else_body)
                if found is not None:
                    return found
            elif isinstance(s, LoopStmt):
                found = search(s.body)
                if found is not None:
                    return found
        return None

    return search(loop.body)


class ControlFlowPass:
    """Decide privatized execution for every IF/GOTO inside loops."""

    def __init__(self, ctx: AnalysisContext, options: ControlFlowOptions | None = None):
        self.ctx = ctx
        self.options = options or ControlFlowOptions()

    def run(self) -> dict[int, ControlFlowDecision]:
        decisions: dict[int, ControlFlowDecision] = {}
        for stmt in self.ctx.proc.all_stmts():
            if not isinstance(stmt, (IfStmt, GotoStmt)):
                continue
            decisions[stmt.stmt_id] = self._decide(stmt)
        return decisions

    def _decide(self, stmt: Stmt) -> ControlFlowDecision:
        loop = stmt.loop
        if not self.options.privatize_control_flow:
            return ControlFlowDecision(
                stmt=stmt, privatized=False, reason="control-flow privatization disabled"
            )
        if loop is None:
            return ControlFlowDecision(
                stmt=stmt, privatized=False, reason="outside any loop"
            )
        if _branch_escapes_loop(self.ctx.proc, stmt, loop):
            return ControlFlowDecision(
                stmt=stmt,
                privatized=False,
                reason=f"may branch outside loop {loop.var.name}",
            )
        dependents: list[Stmt] = []
        if isinstance(stmt, IfStmt):
            dependents = _dependent_statements(stmt)
            dependents += _goto_skipped_statements(self.ctx.proc, stmt, loop)
        dependent_refs: list[Ref] = []
        for dep in dependents:
            if isinstance(dep, AssignStmt):
                dependent_refs.append(dep.lhs)
        return ControlFlowDecision(
            stmt=stmt,
            privatized=True,
            dependent_refs=dependent_refs,
            reason=f"all targets inside loop {loop.var.name}",
        )


def run_control_flow(
    ctx: AnalysisContext, options: ControlFlowOptions | None = None
) -> dict[int, ControlFlowDecision]:
    return ControlFlowPass(ctx, options).run()
