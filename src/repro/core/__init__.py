"""The paper's contribution: privatization and mapping of scalar and
array variables for data-parallel (owner-computes) execution."""

from .align_level import (
    align_level,
    alignment_valid,
    subscript_align_level,
    var_level,
)
from .array_mapping import (
    ArrayMappingOptions,
    ArrayMappingResult,
    run_array_mapping,
)
from .consumer import UseContext, classify_use, consumer_candidate
from .context import AnalysisContext, build_context
from .control_flow import ControlFlowOptions, run_control_flow
from .diagnostics import Diagnostic, diagnose, render_diagnostics
from .expansion import ExpansionResult, expand_scalars
from .driver import (
    CompiledProgram,
    CompilerOptions,
    compile_procedure,
    compile_source,
)
from .locality import (
    ANY,
    DimPosition,
    Position,
    TransferPattern,
    all_any,
    classify_transfer,
    comm_free,
    position_of_array_ref,
)
from .mapping_kinds import (
    DUMMY_REPLICATED,
    AlignedTo,
    ArrayPrivatization,
    ControlFlowDecision,
    DummyReplicatedRef,
    FullyReplicatedReduction,
    PrivateNoAlign,
    Replicated,
    ReductionMapping,
    ScalarMapping,
)
from .reduction_mapping import map_reduction, reduction_grid_dims
from .scalar_mapping import (
    STRATEGIES,
    ScalarMappingOptions,
    ScalarMappingPass,
    run_scalar_mapping,
)

__all__ = [
    "Diagnostic",
    "diagnose",
    "render_diagnostics",
    "ExpansionResult",
    "expand_scalars",
    "align_level",
    "alignment_valid",
    "subscript_align_level",
    "var_level",
    "ArrayMappingOptions",
    "ArrayMappingResult",
    "run_array_mapping",
    "UseContext",
    "classify_use",
    "consumer_candidate",
    "AnalysisContext",
    "build_context",
    "ControlFlowOptions",
    "run_control_flow",
    "CompiledProgram",
    "CompilerOptions",
    "compile_procedure",
    "compile_source",
    "ANY",
    "DimPosition",
    "Position",
    "TransferPattern",
    "all_any",
    "classify_transfer",
    "comm_free",
    "position_of_array_ref",
    "DUMMY_REPLICATED",
    "AlignedTo",
    "ArrayPrivatization",
    "ControlFlowDecision",
    "DummyReplicatedRef",
    "FullyReplicatedReduction",
    "PrivateNoAlign",
    "Replicated",
    "ReductionMapping",
    "ScalarMapping",
    "map_reduction",
    "reduction_grid_dims",
    "STRATEGIES",
    "ScalarMappingOptions",
    "ScalarMappingPass",
    "run_scalar_mapping",
]
