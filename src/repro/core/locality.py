"""Symbolic locality algebra: where does a reference live, and does
fetching it require communication given who executes the statement?

A reference's home is described per grid dimension as a
:class:`DimPosition`:

* ``any``     — available on every processor along the dimension
  (replicated or privatized there, or scalar data the paper treats as
  replicated),
* ``pos``     — a position on a distribution template, as an affine
  form of enclosing loop indices (plus the template's format),
* ``unknown`` — not expressible (non-affine subscript): communication
  must be assumed.

Two ``pos`` entries are *communication-free* when they name the same
template (equal :class:`~repro.mapping.distribution.DimFormat`) and the
same affine position for every iteration. This is how the compiler
knows ``B(i)`` is local to the owner of ``A(i)`` but ``A(i+1)`` is not.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.expr import (
    AffineForm,
    ArrayElemRef,
    Const,
    Expr,
    Ref,
    ScalarRef,
    affine_form,
)
from ..mapping.descriptors import ArrayMapping
from ..mapping.distribution import DimFormat


@dataclass(frozen=True)
class DimPosition:
    kind: str  # "any" | "pos" | "unknown"
    fmt: DimFormat | None = None
    form: AffineForm | None = None

    def __str__(self) -> str:
        if self.kind == "pos":
            return f"pos[{self.form}]"
        return self.kind


ANY = DimPosition(kind="any")
UNKNOWN = DimPosition(kind="unknown")

#: A Position has one DimPosition per grid dimension.
Position = tuple[DimPosition, ...]


def all_any(grid_rank: int) -> Position:
    """The position of fully replicated data (or of an executor set
    meaning 'all processors')."""
    return tuple(ANY for _ in range(grid_rank))


def scale_shift(form: AffineForm, stride: int, offset: int) -> AffineForm:
    """stride * form + offset."""
    return AffineForm(
        coeffs=tuple((s, c * stride) for s, c in form.coeffs),
        const=form.const * stride + offset,
    )


def position_of_array_ref(ref: ArrayElemRef, mapping: ArrayMapping) -> Position:
    """Template position of an array reference, per grid dimension."""
    dims: list[DimPosition] = []
    for role in mapping.roles:
        if role.kind != "dist":
            dims.append(ANY)
            continue
        if role.fmt is not None and role.fmt.procs == 1:
            # A dimension distributed over one processor is trivially
            # local everywhere along it.
            dims.append(ANY)
            continue
        sub = ref.subscripts[role.array_dim]
        form = affine_form(sub)
        if form is None:
            dims.append(DimPosition(kind="unknown", fmt=role.fmt))
            continue
        dims.append(
            DimPosition(
                kind="pos",
                fmt=role.fmt,
                form=scale_shift(form, role.stride, role.norm_offset),
            )
        )
    return tuple(dims)


def forms_equal(a: AffineForm, b: AffineForm) -> bool:
    return a.const == b.const and {
        (s.name, c) for s, c in a.coeffs
    } == {(s.name, c) for s, c in b.coeffs}


def forms_constant_offset(a: AffineForm, b: AffineForm) -> int | None:
    """If a - b is a constant (same coefficients), return it."""
    if {(s.name, c) for s, c in a.coeffs} != {(s.name, c) for s, c in b.coeffs}:
        return None
    return a.const - b.const


def dim_comm_free(data: DimPosition, executor: DimPosition) -> bool:
    """Is the data available wherever the executor runs, along this
    grid dimension?"""
    if data.kind == "any":
        return True
    if executor.kind == "any":
        # Executed by all processors along the dimension, but data lives
        # at one position: everyone else must receive it.
        return False
    if data.kind == "unknown" or executor.kind == "unknown":
        return False
    if data.fmt != executor.fmt:
        return False
    return forms_equal(data.form, executor.form)


def comm_free(data: Position, executor: Position) -> bool:
    return all(dim_comm_free(d, e) for d, e in zip(data, executor))


@dataclass(frozen=True)
class TransferPattern:
    """Communication pattern classification for one reference, used by
    the cost model.

    kind:
      * ``none``      — no communication;
      * ``shift``     — constant template-offset difference in one or
        more grid dims (nearest-neighbour or small-hop collective);
      * ``broadcast`` — data at one position must reach all processors
        along at least one grid dim;
      * ``general``   — anything else (gather / irregular / unknown).
    """

    kind: str
    offsets: tuple[int, ...] = ()  # per shifted grid dim, template delta
    bcast_dims: tuple[int, ...] = ()

    def __str__(self) -> str:
        if self.kind == "shift":
            return f"shift{self.offsets}"
        if self.kind == "broadcast":
            return f"broadcast(dims={self.bcast_dims})"
        return self.kind


def classify_transfer(data: Position, executor: Position) -> TransferPattern:
    """Classify the communication needed to deliver ``data`` to
    ``executor`` (``none`` when comm-free)."""
    if comm_free(data, executor):
        return TransferPattern(kind="none")
    offsets: list[int] = []
    bcast_dims: list[int] = []
    general = False
    for g, (d, e) in enumerate(zip(data, executor)):
        if dim_comm_free(d, e):
            continue
        if e.kind == "any" and d.kind in ("pos", "unknown"):
            bcast_dims.append(g)
            continue
        if d.kind == "pos" and e.kind == "pos" and d.fmt == e.fmt:
            delta = forms_constant_offset(d.form, e.form)
            if delta is not None:
                offsets.append(delta)
                continue
        general = True
    if general:
        return TransferPattern(kind="general")
    if bcast_dims:
        return TransferPattern(kind="broadcast", bcast_dims=tuple(bcast_dims))
    return TransferPattern(kind="shift", offsets=tuple(offsets))
