"""Mapping of scalars involved in reductions (paper Section 2.3,
Figure 5).

"Given a statement assigning value to a scalar variable which is
recognized as a reduction, the compiler checks if the scalar definition
is privatizable without copy-out with respect to the loop immediately
surrounding the reduction loop. If so, the special array reference
whose ownership governs the partitioning of the partial reduction
operation serves as the alignment target. ... the compiler constructs a
new alignment mapping in which the scalar variable is replicated in
each dimension over which reduction takes place, and is aligned with
the target array reference in only the remaining grid dimensions."

Grid dimensions "over which reduction takes place" are those whose
distributed array dimension is traversed *inside* the reduction loop
(subscript VarLevel ≥ reduction loop level). In Fig. 5 with
``A(i, j)`` and a ``j``-loop reduction under ``(BLOCK, BLOCK)``, the
second grid dimension is the reduction dimension, so ``s`` is aligned
with row ``A(i, ·)`` in the first grid dimension and replicated in the
second — "the reduction computation can proceed without the need to
broadcast the ith row of A".

In DGEFA's partial pivoting (``(*, CYCLIC)`` columns), the maxloc runs
down a single column: *no* grid dimension is traversed, so the pivot
scalars are aligned with the column's owner and replicated nowhere —
the pivot search is "confined to just the relevant processor".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..analysis.reductions import Reduction
from ..analysis.ssa import SSADef
from ..ir.expr import ArrayElemRef
from ..ir.stmt import AssignStmt
from .align_level import align_level, var_level
from .mapping_kinds import (
    FullyReplicatedReduction,
    ReductionMapping,
    ScalarMapping,
)

if TYPE_CHECKING:  # pragma: no cover
    from .scalar_mapping import ScalarMappingPass


def reduction_grid_dims(
    pass_: "ScalarMappingPass", target: ArrayElemRef, reduction: Reduction
) -> tuple[int, ...]:
    """Grid dimensions spanned by the reduction for a given target
    reference."""
    ctx = pass_.ctx
    mapping = pass_.array_mapping(target)
    stmt = ctx.proc.stmt_of_ref(target)
    dims: list[int] = []
    for g, role in enumerate(mapping.roles):
        if role.kind != "dist":
            continue
        sub = target.subscripts[role.array_dim]
        if var_level(sub, stmt, ctx.proc, ctx.ssa) >= reduction.loop.level:
            dims.append(g)
    return tuple(dims)


def _select_target(
    pass_: "ScalarMappingPass", reduction: Reduction
) -> ArrayElemRef | None:
    """The partial-reduction target: a partitioned array reference from
    the reduction computation."""
    best: ArrayElemRef | None = None
    best_score = -1
    for ref in reduction.candidate_refs:
        mapping = pass_.ctx.array_mappings.get(ref.symbol.name)
        if mapping is None or mapping.is_replicated:
            continue
        # Prefer targets with more partitioned dims traversed outside
        # the reduction (more alignment information preserved).
        score = sum(1 for r in mapping.roles if r.kind == "dist")
        if score > best_score:
            best, best_score = ref, score
    return best


def map_reduction(
    pass_: "ScalarMappingPass",
    d: SSADef,
    stmt: AssignStmt,
    reduction: Reduction,
) -> ScalarMapping:
    """Mapping decision for a reduction-update definition."""
    if not pass_.options.align_reductions:
        return FullyReplicatedReduction(op=reduction.op)

    ctx = pass_.ctx
    outer = reduction.loop.loop  # loop immediately surrounding the reduction
    outer_level = outer.level if outer is not None else 0

    # Privatizable without copy-out w.r.t. the surrounding loop: every
    # use of the result stays within it.
    if outer is not None and not ctx.priv.is_privatizable(d, outer):
        return FullyReplicatedReduction(op=reduction.op)
    if outer is None and not _result_confined_to_program(pass_, d):
        return FullyReplicatedReduction(op=reduction.op)

    target = _select_target(pass_, reduction)
    if target is None:
        return FullyReplicatedReduction(op=reduction.op)

    red_dims = reduction_grid_dims(pass_, target, reduction)
    non_red_dims = tuple(
        g for g in range(ctx.grid.rank) if g not in red_dims
    )
    # Alignment validity in the non-reduction dimensions only.
    level = align_level(
        target,
        ctx.proc,
        ctx.ssa,
        pass_.array_mapping(target),
        restrict_grid_dims=non_red_dims,
    )
    if level > outer_level:
        return FullyReplicatedReduction(op=reduction.op)
    return ReductionMapping(
        target=target,
        replicated_grid_dims=red_dims,
        align_level=level,
        op=reduction.op,
    )


def _result_confined_to_program(pass_: "ScalarMappingPass", d: SSADef) -> bool:
    """For a top-level reduction loop (no surrounding loop) the mapping
    is always expressible; treat the result as confined."""
    return True


def map_array_reduction(
    pass_: "ScalarMappingPass", reduction: Reduction
) -> ReductionMapping | None:
    """Mapping treatment for an *array-valued* reduction (paper Sec.
    3.1): the accumulating statement executes on the owners of the
    partial-reduction target, each processor accumulating its local
    partial results into its copy of the accumulator, with a combine
    across the reduction grid dimensions at the loop's exit.

    Applicable only when the accumulator's own mapping is replicated
    (or privatized) along every grid dimension the reduction spans —
    each participant must hold a private copy to accumulate into.
    """
    from ..ir.expr import affine_form

    ctx = pass_.ctx
    target = _select_target(pass_, reduction)
    if target is None:
        return None
    # Reduction dimensions: traversed inside the reduction loop, but
    # NOT by the accumulator's own indices (those enumerate elements,
    # they are not reduced over).
    acc_vars: set[str] = set()
    for sub in reduction.accumulator.subscripts:
        form = affine_form(sub)
        if form is not None:
            acc_vars.update(s.name for s in form.symbols)
    target_mapping = pass_.array_mapping(target)
    red_dims = tuple(
        g
        for g in reduction_grid_dims(pass_, target, reduction)
        if not _dim_driven_by(target, target_mapping, g, acc_vars)
    )
    if not red_dims:
        return None  # already confined: ordinary owner-computes suffices
    acc_mapping = ctx.array_mappings.get(reduction.symbol.name)
    if acc_mapping is None:
        return None
    for g in red_dims:
        if acc_mapping.roles[g].kind == "dist":
            return None  # accumulator partitioned across the reduction
    return ReductionMapping(
        target=target,
        replicated_grid_dims=red_dims,
        align_level=0,
        op=reduction.op,
    )


def _dim_driven_by(target, target_mapping, grid_dim: int, var_names: set[str]) -> bool:
    """Is the target's subscript on ``grid_dim`` a function of any of
    ``var_names``?"""
    from ..ir.expr import affine_form

    role = target_mapping.roles[grid_dim]
    if role.kind != "dist":
        return False
    form = affine_form(target.subscripts[role.array_dim])
    if form is None:
        return False
    return any(s.name in var_names for s in form.symbols)
