"""Mapping decisions for privatized variables — the vocabulary of the
paper.

A scalar SSA definition receives exactly one of:

* :class:`Replicated` — the naive default ("replication of any variable
  would force all processors to execute the assignment"),
* :class:`AlignedTo` — privatized and owned by the owner of a producer
  or consumer reference,
* :class:`PrivateNoAlign` — privatized without alignment: no
  computation-partitioning guard; viewed as replicated by communication
  analysis,
* :class:`ReductionMapping` — replicated across the grid dimensions the
  reduction spans, aligned with the partial-reduction target in the
  remaining dimensions (paper Section 2.3).

Array privatization decisions are :class:`ArrayPrivatization` records
(full or partial, paper Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.expr import ArrayElemRef, Ref
from ..ir.stmt import LoopStmt, Stmt
from ..ir.symbols import Symbol


@dataclass(frozen=True)
class DummyReplicatedRef:
    """Sentinel consumer reference: the value is needed by all
    processors (paper Section 2.1: "the consumer reference is set to be
    a dummy replicated reference")."""

    reason: str = "needed on all processors"

    def __str__(self) -> str:
        return f"<dummy replicated: {self.reason}>"


DUMMY_REPLICATED = DummyReplicatedRef()


class ScalarMapping:
    """Base class of scalar mapping decisions."""

    kind: str = "?"

    @property
    def is_partitioned(self) -> bool:
        """Does the mapped scalar live on a proper subset of processors
        (in at least one grid dimension)?"""
        return False

    @property
    def available_everywhere(self) -> bool:
        """Can every processor read the value without communication?
        True for replication and (by the paper's convention) for
        privatization without alignment."""
        return False


@dataclass(frozen=True)
class Replicated(ScalarMapping):
    kind: str = field(default="replicated", init=False)

    @property
    def available_everywhere(self) -> bool:
        return True

    def __str__(self) -> str:
        return "replicated"


@dataclass(frozen=True)
class PrivateNoAlign(ScalarMapping):
    """Privatization without alignment. ``loop_level`` is the 1-based
    nesting level of the loop the value is private to (0 = outside any
    loop: executed by all processors)."""

    loop_level: int = 0
    kind: str = field(default="private-no-align", init=False)

    @property
    def available_everywhere(self) -> bool:
        # "For the purpose of communication analysis, the scalar is
        # viewed as if it has been replicated."
        return True

    def __str__(self) -> str:
        return f"private (no alignment, level {self.loop_level})"


@dataclass(frozen=True)
class AlignedTo(ScalarMapping):
    """Privatized and aligned with ``target`` (an array reference).
    ``is_consumer`` records whether the target was a consumer or a
    producer reference (for reporting and the TOMCATV ablation).
    ``align_level`` is the AlignLevel of the target reference."""

    target: ArrayElemRef = None
    align_level: int = 0
    is_consumer: bool = True
    kind: str = field(default="aligned", init=False)

    @property
    def is_partitioned(self) -> bool:
        return True

    def __str__(self) -> str:
        role = "consumer" if self.is_consumer else "producer"
        return f"aligned with {self.target} ({role}, AlignLevel={self.align_level})"


@dataclass(frozen=True)
class ReductionMapping(ScalarMapping):
    """Mapping for a reduction result: replicated along
    ``replicated_grid_dims`` (the dimensions the reduction spans),
    aligned with ``target`` in the other dimensions."""

    target: ArrayElemRef = None
    replicated_grid_dims: tuple[int, ...] = ()
    align_level: int = 0
    op: str = "+"
    kind: str = field(default="reduction", init=False)

    @property
    def is_partitioned(self) -> bool:
        return True  # partitioned in the non-reduction dimensions

    def __str__(self) -> str:
        dims = ",".join(str(d) for d in self.replicated_grid_dims) or "-"
        return (
            f"reduction({self.op}): aligned with {self.target}, "
            f"replicated on grid dims {{{dims}}}"
        )


@dataclass(frozen=True)
class FullyReplicatedReduction(ScalarMapping):
    """Ablation baseline for Table 2: the reduction result is replicated
    in *every* grid dimension (the 'Default' column of the paper)."""

    op: str = "+"
    kind: str = field(default="reduction-replicated", init=False)

    @property
    def available_everywhere(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"reduction({self.op}): replicated"


@dataclass
class ArrayPrivatization:
    """Privatization of ``array`` with respect to ``loop``.

    ``privatized_grid_dims`` — grid dims along which each processor gets
    a private copy; ``partitioned_dims`` — map array_dim → grid_dim kept
    partitioned (non-empty ⇒ *partial* privatization, paper Sec. 3.2).
    ``target`` is the alignment target reference used for the
    partitioned dims.
    """

    array: Symbol
    loop: LoopStmt
    privatized_grid_dims: tuple[int, ...]
    partitioned_dims: dict[int, int] = field(default_factory=dict)
    target: ArrayElemRef | None = None
    align_level: int = 0

    @property
    def is_partial(self) -> bool:
        return bool(self.partitioned_dims)

    def __str__(self) -> str:
        mode = "partial" if self.is_partial else "full"
        return (
            f"{mode} privatization of {self.array.name} w.r.t. loop "
            f"{self.loop.var.name} (priv grid dims {self.privatized_grid_dims}, "
            f"partitioned {self.partitioned_dims})"
        )


@dataclass
class ControlFlowDecision:
    """Privatized-execution decision for a control-flow statement
    (paper Section 4)."""

    stmt: Stmt
    privatized: bool
    #: lhs references of the statements control-dependent on this one —
    #: the predicate's data must reach the union of their owners.
    dependent_refs: list[Ref] = field(default_factory=list)
    reason: str = ""

    def __str__(self) -> str:
        mode = "privatized" if self.privatized else "executed on all processors"
        return f"S{self.stmt.stmt_id}: {mode} ({self.reason})"
