"""The scalar mapping algorithm — paper Figure 3 (``DetermineMapping``)
plus the baseline strategies measured in Table 1.

Strategies:

* ``selected``    — the paper's algorithm: privatization without
  alignment when legal, otherwise consumer alignment unless it causes
  inner-loop communication, otherwise producer alignment; reductions
  get the Section-2.3 mapping.
* ``producer``    — Table 1 column 2: privatize and always align with a
  partitioned producer reference on the defining statement.
* ``replication`` — Table 1 column 1: no privatization, every scalar
  replicated.
* ``consumer``    — ablation: consumer alignment without the inner-loop
  communication veto.
* ``noalign``     — ablation modeling Palermo et al.: every privatizable
  scalar is privatized without alignment, regardless of rhs mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.reductions import Reduction, reduction_for_def
from ..analysis.ssa import SSADef
from ..ir.expr import ArrayElemRef, Expr, Ref, ScalarRef, affine_form
from ..ir.stmt import AssignStmt, LoopStmt, Stmt
from .align_level import align_level, alignment_valid
from .consumer import classify_use, consumer_candidate
from .context import AnalysisContext
from .locality import (
    Position,
    all_any,
    comm_free,
    position_of_array_ref,
)
from .mapping_kinds import (
    DUMMY_REPLICATED,
    AlignedTo,
    DummyReplicatedRef,
    FullyReplicatedReduction,
    PrivateNoAlign,
    Replicated,
    ReductionMapping,
    ScalarMapping,
)

STRATEGIES = ("selected", "producer", "replication", "consumer", "noalign")


@dataclass
class ScalarMappingOptions:
    strategy: str = "selected"
    #: Section 2.3 reduction mapping (Table 2 'Alignment' column) vs the
    #: fully replicated reduction scalar (Table 2 'Default' column).
    align_reductions: bool = True

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}")


class ScalarMappingPass:
    """Runs the mapping pass; afterwards :attr:`decisions` maps each
    real scalar SSA definition (by def_id) to its ScalarMapping, and
    :meth:`mapping_of_use` resolves uses."""

    def __init__(self, ctx: AnalysisContext, options: ScalarMappingOptions | None = None):
        self.ctx = ctx
        self.options = options or ScalarMappingOptions()
        self.decisions: dict[int, ScalarMapping] = {}
        #: stmt_id -> (Reduction, ReductionMapping) for array-valued
        #: reductions (paper Section 3.1)
        self.array_reductions: dict[int, tuple] = {}
        self.noalign_exam: list[tuple[SSADef, AssignStmt, ScalarMapping]] = []
        self._in_progress: set[int] = set()
        self._grid_rank = ctx.grid.rank

    # ===================================================================
    # Entry point
    # ===================================================================

    def run(self) -> "ScalarMappingPass":
        # Reduction scalars first (paper Section 2.3: "treated in a
        # special manner"), so that initializations and post-loop uses
        # adopt the reduction mapping through the consistency rule.
        for reduction in self.ctx.reductions:
            if reduction.is_array_reduction:
                continue
            for stmt in reduction.update_stmts:
                d = self.ctx.ssa.def_of_assignment(stmt)
                if d is not None:
                    self.determine(d)
        self._map_array_reductions()
        for d in self._real_scalar_defs():
            self.determine(d)
        self._finalize_noalign()
        return self

    def _map_array_reductions(self) -> None:
        """Array-valued reductions (paper Section 3.1): record the
        special mapping per update statement; consumed by the
        partitioner, communication analysis, and the simulator."""
        self.array_reductions = {}
        if self.options.strategy == "replication" or not self.options.align_reductions:
            return
        from .reduction_mapping import map_array_reduction

        for reduction in self.ctx.reductions:
            if not reduction.is_array_reduction:
                continue
            mapping = map_array_reduction(self, reduction)
            if mapping is None:
                continue
            for stmt in reduction.update_stmts:
                self.array_reductions[stmt.stmt_id] = (reduction, mapping)

    def _real_scalar_defs(self):
        """Real scalar defs in program order."""
        for stmt in self.ctx.proc.all_stmts():
            if isinstance(stmt, AssignStmt) and isinstance(stmt.lhs, ScalarRef):
                d = self.ctx.ssa.def_of_assignment(stmt)
                if d is not None:
                    yield d

    # ===================================================================
    # DetermineMapping (paper Fig. 3)
    # ===================================================================

    def determine(self, d: SSADef) -> ScalarMapping | None:
        """Mapping decision for one definition (memoized). Returns None
        while ``d`` is being determined further up the recursion (the
        caller must then treat it as not-yet-mapped)."""
        if d.def_id in self.decisions:
            return self.decisions[d.def_id]
        if d.def_id in self._in_progress:
            return None
        if not isinstance(d.stmt, AssignStmt):
            return self._decide(d, Replicated())
        self._in_progress.add(d.def_id)
        try:
            mapping = self._determine_inner(d, d.stmt)
        finally:
            self._in_progress.discard(d.def_id)
        return self._decide(d, mapping)

    def _determine_inner(self, d: SSADef, stmt: AssignStmt) -> ScalarMapping:
        # Adopt the mapping of any related definition already decided
        # (all reaching defs of a use must share one mapping).
        related = self._related_decided(d)
        if related is not None:
            return related

        strategy = self.options.strategy

        # Reductions are handled specially under every strategy that
        # privatizes (paper Section 2.3).
        reduction = reduction_for_def(self.ctx.reductions, stmt)
        if reduction is not None and strategy != "replication":
            return self._reduction_mapping(d, stmt, reduction)

        if strategy == "replication":
            return Replicated()

        priv_level = self.ctx.priv.deepest_privatization_level(d)
        if priv_level is None:
            return Replicated()
        level = priv_level  # paper: "privatizable at nesting level l"

        if strategy == "noalign":
            return PrivateNoAlign(loop_level=level)

        if strategy == "producer":
            producer = self._select_producer(stmt)
            if producer is not None and self._target_valid(producer, level):
                return AlignedTo(
                    target=producer,
                    align_level=self._align_level(producer),
                    is_consumer=False,
                )
            if self.is_rhs_replicated(stmt):
                return PrivateNoAlign(loop_level=level)
            return Replicated()

        # -- 'selected' (paper Fig. 3) and 'consumer' (no-veto ablation)
        rhs_replicated = self.is_rhs_replicated(stmt)
        tentative: ScalarMapping = Replicated()

        noalign_candidate = rhs_replicated and self.ctx.ssa.is_unique_def(d)

        consumer, forced_replication = self._select_consumer(d)
        align_ref: ArrayElemRef | None = consumer
        is_consumer = True
        if forced_replication:
            # A reached use needs the value on all processors: the
            # definition must stay replicated.
            return Replicated()
        if not rhs_replicated and (
            align_ref is None
            or (
                strategy == "selected"
                and self._consumer_causes_inner_loop_comm(stmt, align_ref)
            )
        ):
            producer = self._select_producer(stmt)
            if producer is not None:
                align_ref = producer
                is_consumer = False
        if align_ref is not None and self._target_valid(align_ref, level):
            tentative = AlignedTo(
                target=align_ref,
                align_level=self._align_level(align_ref),
                is_consumer=is_consumer,
            )
        if noalign_candidate:
            # Deferred: if the rhs is still fully replicated at the end
            # of the pass, privatization without alignment wins.
            self.noalign_exam.append((d, stmt, tentative))
        return tentative

    def _decide(self, d: SSADef, mapping: ScalarMapping) -> ScalarMapping:
        if d.def_id in self.decisions:
            # Already fixed (e.g. by consistency propagation from a
            # related definition decided during recursion).
            return self.decisions[d.def_id]
        self.decisions[d.def_id] = mapping
        # Propagate to every reaching definition of every reached use
        # (paper: identical mapping for all reaching defs of a use).
        for use in self.ctx.ssa.reached_uses(d):
            for other in self.ctx.ssa.reaching_real_defs(use):
                if other.is_real and other.def_id not in self.decisions:
                    self.decisions[other.def_id] = mapping
        return mapping

    def _related_decided(self, d: SSADef) -> ScalarMapping | None:
        for use in self.ctx.ssa.reached_uses(d):
            for other in self.ctx.ssa.reaching_real_defs(use):
                if other.def_id != d.def_id and other.def_id in self.decisions:
                    return self.decisions[other.def_id]
        return None

    def _finalize_noalign(self) -> None:
        """Re-examine the deferred list (paper: "At the end of the
        compiler pass ... if all rhs data on the corresponding statement
        continue to be replicated, the scalar definition is privatized
        without alignment")."""
        for d, stmt, _tentative in self.noalign_exam:
            if self.is_rhs_replicated(stmt, final=True):
                mapping = PrivateNoAlign(loop_level=stmt.nesting_level)
                self.decisions[d.def_id] = mapping
                for use in self.ctx.ssa.reached_uses(d):
                    for other in self.ctx.ssa.reaching_real_defs(use):
                        if other.is_real:
                            self.decisions[other.def_id] = mapping

    # ===================================================================
    # Reduction mapping (paper Section 2.3) — see reduction_mapping.py
    # ===================================================================

    def _reduction_mapping(
        self, d: SSADef, stmt: AssignStmt, reduction: Reduction
    ) -> ScalarMapping:
        from .reduction_mapping import map_reduction

        return map_reduction(self, d, stmt, reduction)

    # ===================================================================
    # Positions, availability, communication
    # ===================================================================

    def array_mapping(self, ref: ArrayElemRef):
        return self.ctx.array_mappings[ref.symbol.name]

    def position_of_ref(self, ref: Ref) -> Position:
        if isinstance(ref, ArrayElemRef):
            return position_of_array_ref(ref, self.array_mapping(ref))
        return self.position_of_scalar_use(ref)

    def position_of_scalar_use(self, use: ScalarRef) -> Position:
        """Where does the value of a scalar use live? Loop indices and
        parameters are known everywhere; otherwise governed by the
        mapping of the use's reaching definitions."""
        symbol = use.symbol
        if symbol.is_loop_var or symbol.value is not None:
            return all_any(self._grid_rank)
        mapping = self.mapping_of_use(use)
        return self.position_of_mapping(mapping)

    def position_of_mapping(self, mapping: ScalarMapping | None) -> Position:
        if mapping is None or mapping.available_everywhere:
            return all_any(self._grid_rank)
        if isinstance(mapping, AlignedTo):
            return position_of_array_ref(
                mapping.target, self.array_mapping(mapping.target)
            )
        if isinstance(mapping, ReductionMapping):
            base = position_of_array_ref(
                mapping.target, self.array_mapping(mapping.target)
            )
            return tuple(
                (all_any(1)[0] if g in mapping.replicated_grid_dims else p)
                for g, p in enumerate(base)
            )
        return all_any(self._grid_rank)

    def mapping_of_use(self, use: ScalarRef) -> ScalarMapping | None:
        """The (shared) mapping of the reaching definitions of a use;
        None when still undecided (treated as replicated — paper: "those
        variables appear to be replicated at this stage")."""
        for d in self.ctx.ssa.reaching_real_defs(use):
            decision = self.decisions.get(d.def_id)
            if decision is not None:
                return decision
        return None

    def executor_position(self, stmt: Stmt) -> Position:
        """Owner-computes executor set of a statement as a Position."""
        if isinstance(stmt, AssignStmt):
            if isinstance(stmt.lhs, ArrayElemRef):
                return position_of_array_ref(stmt.lhs, self.array_mapping(stmt.lhs))
            d = self.ctx.ssa.def_of_lhs.get(stmt.lhs.ref_id)
            if d is not None:
                mapping = self.decisions.get(d)
                return self.position_of_mapping(mapping)
        return all_any(self._grid_rank)

    def ref_needs_comm(self, ref: Ref, stmt: Stmt) -> bool:
        """Does fetching ``ref`` for executing ``stmt`` require
        communication under current mappings? (resolver protocol for
        :mod:`repro.core.consumer`)."""
        return not comm_free(self.position_of_ref(ref), self.executor_position(stmt))

    def scalar_available_everywhere(self, use: ScalarRef) -> bool:
        symbol = use.symbol
        if symbol.is_loop_var or symbol.value is not None:
            return True
        mapping = self.mapping_of_use(use)
        return mapping is None or mapping.available_everywhere

    def is_rhs_replicated(self, stmt: AssignStmt, final: bool = False) -> bool:
        """``IsRhsReplicated`` of Fig. 3. During the pass, undecided
        scalars count as replicated; in the ``final`` re-examination the
        remaining undecided ones still default to replication."""
        for ref in stmt.rhs.refs():
            if isinstance(ref, ArrayElemRef):
                if not self.array_mapping(ref).is_replicated:
                    return False
            elif isinstance(ref, ScalarRef):
                if not self.scalar_available_everywhere(ref):
                    return False
        return True

    # ===================================================================
    # Alignment-target selection
    # ===================================================================

    def _align_level(self, ref: ArrayElemRef) -> int:
        return align_level(
            ref, self.ctx.proc, self.ctx.ssa, self.array_mapping(ref)
        )

    def _target_valid(self, ref: ArrayElemRef, level: int) -> bool:
        return alignment_valid(
            ref, level, self.ctx.proc, self.ctx.ssa, self.array_mapping(ref)
        )

    def _select_consumer(
        self, d: SSADef
    ) -> tuple[ArrayElemRef | None, bool]:
        """Traverse reached uses of ``d`` and pick a consumer alignment
        target. Returns (target_or_None, forced_replication)."""
        candidates: list[tuple[int, ArrayElemRef, Stmt]] = []
        for use in self.ctx.ssa.reached_uses(d):
            use_stmt = self.ctx.ssa.stmt_of_use(use)
            ctx = classify_use(use, use_stmt)
            candidate = consumer_candidate(ctx, self)
            if isinstance(candidate, DummyReplicatedRef):
                # Terminate the traversal (paper).
                return None, True
            if candidate is None:
                continue
            resolved = self._resolve_candidate(candidate)
            if resolved is None:
                continue
            score = self._traversal_score(d.stmt, use_stmt, resolved)
            candidates.append((score, resolved, use_stmt))
        if not candidates:
            return None, False
        best = max(candidates, key=lambda t: t[0])
        return best[1], False

    def _resolve_candidate(self, candidate: Ref) -> ArrayElemRef | None:
        """Resolve a candidate consumer reference to a partitioned array
        reference (recursing through privatizable scalar lhs refs)."""
        if isinstance(candidate, ArrayElemRef):
            if self.array_mapping(candidate).is_replicated:
                return None  # "ignores any consumer reference that
                #               refers to replicated data"
            return candidate
        if isinstance(candidate, ScalarRef):
            def_id = self.ctx.ssa.def_of_lhs.get(candidate.ref_id)
            if def_id is None:
                return None
            mapping = self.determine(self.ctx.ssa.defs[def_id])
            if isinstance(mapping, AlignedTo):
                return mapping.target
            if isinstance(mapping, ReductionMapping):
                return mapping.target
            return None
        return None

    def _traversal_score(
        self, def_stmt: Stmt | None, use_stmt: Stmt, ref: ArrayElemRef
    ) -> int:
        """Heuristic preference: a reference whose distributed dimension
        is traversed in the innermost common loop enclosing the scalar
        definition and the reached use (paper: prefer A(i) over A(1))."""
        if def_stmt is None:
            return 0
        common = self.ctx.proc.common_loops(def_stmt, use_stmt)
        if not common:
            return 0
        innermost = common[-1]
        mapping = self.array_mapping(ref)
        for role in mapping.roles:
            if role.kind != "dist":
                continue
            form = affine_form(ref.subscripts[role.array_dim])
            if form is not None and form.coeff(innermost.var) != 0:
                return 1
        return 0

    def _select_producer(self, stmt: AssignStmt) -> ArrayElemRef | None:
        """A partitioned rhs reference on the defining statement."""
        candidates: list[tuple[int, ArrayElemRef]] = []
        for ref in stmt.rhs.refs():
            resolved: ArrayElemRef | None = None
            if isinstance(ref, ArrayElemRef):
                if not self.array_mapping(ref).is_replicated:
                    resolved = ref
            elif isinstance(ref, ScalarRef):
                mapping = self.mapping_of_use(ref)
                if isinstance(mapping, (AlignedTo, ReductionMapping)):
                    resolved = mapping.target
            if resolved is None:
                continue
            score = self._traversal_score(stmt, stmt, resolved)
            candidates.append((score, resolved))
        if not candidates:
            return None
        return max(candidates, key=lambda t: t[0])[1]

    # ===================================================================
    # Inner-loop-communication veto (the cost-model-guided choice)
    # ===================================================================

    def _consumer_causes_inner_loop_comm(
        self, stmt: AssignStmt, consumer: ArrayElemRef
    ) -> bool:
        """Would aligning the definition with ``consumer`` force
        communication *inside the innermost loop* for some rhs reference
        of ``stmt``? (paper: "alignment of def with AlignRef leads to
        inner loop commn. for some RHS ref on stmt")."""
        executor = position_of_array_ref(consumer, self.array_mapping(consumer))
        innermost_level = stmt.nesting_level
        if innermost_level == 0:
            return False
        for ref in stmt.rhs.refs():
            if comm_free(self.position_of_ref(ref), executor):
                continue
            if self.comm_blocked_level(ref, stmt) >= innermost_level:
                return True
        return False

    def comm_blocked_level(self, ref: Ref, stmt: Stmt) -> int:
        """The innermost loop level out of which communication for
        ``ref`` cannot be hoisted (0 = hoistable before the whole nest)
        — message vectorization's limit.

        * array reference: blocked inside any enclosing loop that may
          write the data it reads (flow dependence),
        * scalar reference: blocked inside the innermost loop in which
          the value is recomputed (common loop with a reaching def).
        """
        from ..analysis.dependence import read_may_see_loop_write

        level = 0
        if isinstance(ref, ArrayElemRef):
            for loop in self.ctx.proc.stmt_of_ref(ref).loops_enclosing():
                if read_may_see_loop_write(self.ctx.proc, ref, loop):
                    level = max(level, loop.level)
            # Non-affine / scalar-dependent subscripts also pin the
            # communication to where their values are produced.
            for sub_ref in ref.refs():
                if isinstance(sub_ref, ScalarRef) and sub_ref is not ref:
                    level = max(level, self._scalar_blocked_level(sub_ref, stmt))
            return level
        if isinstance(ref, ScalarRef):
            return self._scalar_blocked_level(ref, stmt)
        return level

    def _scalar_blocked_level(self, ref: ScalarRef, stmt: Stmt) -> int:
        if ref.symbol.is_loop_var or ref.symbol.value is not None:
            return 0
        level = 0
        for d in self.ctx.ssa.reaching_real_defs(ref):
            if d.stmt is None:
                continue
            common = self.ctx.proc.common_loops(d.stmt, stmt)
            if common:
                level = max(level, common[-1].level)
        return level


def run_scalar_mapping(
    ctx: AnalysisContext, options: ScalarMappingOptions | None = None
) -> ScalarMappingPass:
    return ScalarMappingPass(ctx, options).run()
