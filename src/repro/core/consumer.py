"""Consumer-reference identification (paper Section 2.1, Figure 2).

"The consumer reference for a read reference u is a reference r whose
owner needs the value of u during execution of that statement. Thus, in
most cases, under the owner-computes rule, the consumer reference is
the lhs of the assignment statement. For special cases where a read
reference, such as a subscript, is needed by all processors, the
consumer reference is set to be a dummy replicated reference. As an
optimization, for a reference which appears as a subscript of an rhs
reference which does not need communication, phpf sets the consumer
reference to be the lhs reference."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.expr import ArrayElemRef, Expr, Ref, ScalarRef
from ..ir.stmt import AssignStmt, CallStmt, IfStmt, LoopStmt, Stmt
from .mapping_kinds import DUMMY_REPLICATED, DummyReplicatedRef


@dataclass
class UseContext:
    """Syntactic role of one scalar use within its statement."""

    use: ScalarRef
    stmt: Stmt
    role: str  # "rhs-value" | "rhs-subscript" | "lhs-subscript" |
    #          "loop-bound" | "if-cond" | "call-arg"
    enclosing_ref: ArrayElemRef | None = None  # for rhs-subscript


def _contains_ref(expr: Expr, target: ScalarRef) -> bool:
    return any(r is target for r in expr.refs())


def classify_use(use: ScalarRef, stmt: Stmt) -> UseContext:
    """Determine the syntactic role of ``use`` inside ``stmt``."""
    if isinstance(stmt, LoopStmt):
        return UseContext(use=use, stmt=stmt, role="loop-bound")
    if isinstance(stmt, IfStmt):
        return UseContext(use=use, stmt=stmt, role="if-cond")
    if isinstance(stmt, CallStmt):
        return UseContext(use=use, stmt=stmt, role="call-arg")
    if isinstance(stmt, AssignStmt):
        if isinstance(stmt.lhs, ArrayElemRef):
            for sub in stmt.lhs.subscripts:
                if _contains_ref(sub, use):
                    return UseContext(use=use, stmt=stmt, role="lhs-subscript")
        # Inside a subscript of an rhs array reference?
        for ref in stmt.rhs.refs():
            if isinstance(ref, ArrayElemRef):
                for sub in ref.subscripts:
                    if _contains_ref(sub, use):
                        return UseContext(
                            use=use, stmt=stmt, role="rhs-subscript", enclosing_ref=ref
                        )
        return UseContext(use=use, stmt=stmt, role="rhs-value")
    # GOTO/CONTINUE/STOP have no uses; defensive default:
    return UseContext(use=use, stmt=stmt, role="call-arg")


def consumer_candidate(
    ctx: UseContext,
    resolver,
) -> Ref | DummyReplicatedRef | None:
    """The consumer reference for one use.

    ``resolver`` must provide ``ref_needs_comm(ref, stmt) -> bool``
    (does fetching ``ref`` for ``stmt`` under the current mappings
    require communication?).

    Returns the lhs reference, DUMMY_REPLICATED, or None when the use
    imposes no consumer constraint (e.g. a GOTO — cannot happen for
    scalar uses in practice).
    """
    if ctx.role in ("loop-bound", "call-arg"):
        # Loop bounds are evaluated by every processor executing any
        # part of the loop: needed on all processors.
        return DUMMY_REPLICATED
    if ctx.role == "if-cond":
        # Predicate data must reach the union of processors executing
        # control-dependent statements; without control-flow
        # privatization that union is all processors. The control-flow
        # pass (Section 4) refines this; for consumer selection the
        # conservative answer is the dummy replicated reference.
        return DUMMY_REPLICATED
    if ctx.role == "lhs-subscript":
        # The subscript determines ownership of the written element;
        # its value is needed wherever the ownership test runs.
        return DUMMY_REPLICATED
    assert isinstance(ctx.stmt, AssignStmt)
    if ctx.role == "rhs-subscript":
        # Fig. 2: if the enclosing rhs reference needs no communication,
        # only the executing processor needs the subscript -> lhs;
        # otherwise the subscript value must be broadcast.
        if resolver.ref_needs_comm(ctx.enclosing_ref, ctx.stmt):
            return DUMMY_REPLICATED
        return ctx.stmt.lhs
    # rhs-value
    return ctx.stmt.lhs
