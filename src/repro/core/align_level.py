"""VarLevel / SubscriptAlignLevel / AlignLevel (paper Section 2.2,
Figure 4).

* ``VarLevel(s)`` — the innermost loop nesting level in which subscript
  ``s`` varies in value (0 if invariant over the whole nest).
* ``SubscriptAlignLevel(s)`` — ``VarLevel(s)`` when ``s`` is an affine
  function of loop indices, ``VarLevel(s) + 1`` otherwise: the nesting
  level of the outermost loop throughout which the subscript's value is
  well defined.
* ``AlignLevel(r)`` — the maximum SubscriptAlignLevel over the
  subscripts appearing in *partitioned* dimensions of ``r`` (partial
  privatization restricts the dimensions considered — paper Sec. 3.2).

A reference ``r`` can serve as alignment target for a definition
privatizable at nesting level ``l`` iff ``AlignLevel(r) <= l``.
"""

from __future__ import annotations

from ..ir.expr import (
    ArrayElemRef,
    Expr,
    ScalarRef,
    affine_form,
)
from ..ir.program import Procedure
from ..ir.stmt import LoopStmt, Stmt
from ..mapping.descriptors import ArrayMapping
from ..analysis.ssa import SSAInfo


def _level_of_loop_var(name: str, enclosing: list[LoopStmt]) -> int:
    """Nesting level of the enclosing loop whose index is ``name``; 0
    when no enclosing loop uses that index (the value is then fixed
    throughout the nest)."""
    for loop in enclosing:
        if loop.var.name == name:
            return loop.level
    return 0


def var_level(expr: Expr, stmt: Stmt, proc: Procedure, ssa: SSAInfo) -> int:
    """Innermost loop level (w.r.t. the nest enclosing ``stmt``) in
    which ``expr`` varies in value."""
    enclosing = stmt.loops_enclosing()
    level = 0
    for ref in expr.refs():
        if isinstance(ref, ArrayElemRef):
            # An array element in a subscript: varies wherever its own
            # subscripts vary, and wherever the array is (re)defined.
            level = max(level, var_level_of_array_ref(ref, stmt, proc))
            continue
        assert isinstance(ref, ScalarRef)
        symbol = ref.symbol
        if symbol.is_loop_var:
            level = max(level, _level_of_loop_var(symbol.name, enclosing))
            continue
        if symbol.value is not None:  # PARAMETER
            continue
        # Non-index scalar: it varies in the innermost common loop of
        # the statement and any definition that reaches this use —
        # re-execution of the def inside a shared loop changes the value
        # per iteration of that loop.
        for d in ssa.reaching_real_defs(ref):
            if d.stmt is None:
                continue
            common = proc.common_loops(d.stmt, stmt)
            if common:
                level = max(level, common[-1].level)
    return level


def var_level_of_array_ref(ref: ArrayElemRef, stmt: Stmt, proc: Procedure) -> int:
    """Conservative VarLevel of an array element used inside a
    subscript: the deepest enclosing loop of the statement (we do not
    track element-wise array dataflow)."""
    return stmt.nesting_level


def subscript_align_level(
    expr: Expr, stmt: Stmt, proc: Procedure, ssa: SSAInfo
) -> int:
    """SubscriptAlignLevel per the paper's definition."""
    vl = var_level(expr, stmt, proc, ssa)
    form = affine_form(expr)
    if form is not None and _affine_in_enclosing_indices(form, stmt):
        return vl
    return vl + 1


def _affine_in_enclosing_indices(form, stmt: Stmt) -> bool:
    """All symbols of the affine form are indices of loops enclosing the
    statement (or PARAMETER constants, already folded)."""
    enclosing_names = {l.var.name for l in stmt.loops_enclosing()}
    return all(s.name in enclosing_names for s in form.symbols)


def align_level(
    ref: ArrayElemRef,
    proc: Procedure,
    ssa: SSAInfo,
    mapping: ArrayMapping,
    restrict_grid_dims: tuple[int, ...] | None = None,
) -> int:
    """AlignLevel of an array reference.

    ``restrict_grid_dims`` implements partial privatization's modified
    rule: only subscripts in array dimensions distributed on the listed
    grid dimensions are considered.
    """
    stmt = proc.stmt_of_ref(ref)
    level = 0
    for g, role in enumerate(mapping.roles):
        if role.kind != "dist":
            continue
        if restrict_grid_dims is not None and g not in restrict_grid_dims:
            continue
        sub = ref.subscripts[role.array_dim]
        level = max(level, subscript_align_level(sub, stmt, proc, ssa))
    return level


def alignment_valid(
    ref: ArrayElemRef,
    privatization_level: int,
    proc: Procedure,
    ssa: SSAInfo,
    mapping: ArrayMapping,
    restrict_grid_dims: tuple[int, ...] | None = None,
) -> bool:
    """Paper: "the scalar definition which is privatizable at nesting
    level l can be aligned unambiguously with the selected reference r
    if AlignLevel(r) <= l"."""
    return (
        align_level(ref, proc, ssa, mapping, restrict_grid_dims)
        <= privatization_level
    )
