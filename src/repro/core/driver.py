"""Compilation driver: the full phpf-style pipeline.

``compile_source`` / ``compile_procedure`` run, in order:

1. parse + lower to IR,
2. CFG / dominance / liveness / pruned SSA / constant propagation,
3. induction-variable recognition and closed-form substitution
   (then re-analysis),
4. reduction recognition, privatizability analysis, directive-driven
   array mapping resolution,
5. **the paper's mapping passes**: scalar mapping (Fig. 3), reduction
   mapping (Sec. 2.3), array privatization incl. partial (Sec. 3),
   control-flow privatization (Sec. 4),
6. owner-computes computation partitioning,
7. communication analysis with message-vectorization placement.

The result is a :class:`CompiledProgram` consumed by the performance
estimator, the SPMD simulator, and the reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..comm.events import CommReport
from ..model import SP2, MachineModel
from ..ir.build import parse_and_build
from ..ir.program import Procedure
from ..mapping.descriptors import ArrayMapping
from ..mapping.grid import ProcessorGrid
from ..partition.owner_computes import ExecutorInfo, run_partitioning
from .array_mapping import (
    ArrayMappingOptions,
    ArrayMappingResult,
    run_array_mapping,
)
from .context import AnalysisContext, build_context
from .control_flow import ControlFlowOptions, run_control_flow
from .mapping_kinds import ControlFlowDecision, ScalarMapping
from .scalar_mapping import (
    STRATEGIES,
    ScalarMappingOptions,
    ScalarMappingPass,
    run_scalar_mapping,
)


@dataclass
class CompilerOptions:
    """Every knob of the reproduction, including the paper's measured
    baselines and the ablations called out in DESIGN.md."""

    strategy: str = "selected"  # Table 1: selected | producer | replication
    align_reductions: bool = True  # Table 2: True=Alignment, False=Default
    privatize_arrays: bool = True  # Table 3: array privatization on/off
    partial_privatization: bool = True  # Table 3: partial privatization
    privatize_control_flow: bool = True  # Section 4
    message_vectorization: bool = True  # cost-model ablation
    #: global message combining across loop nests — the paper's stated
    #: future work ("The phpf compiler does not currently perform that
    #: optimization"), hence off by default
    combine_messages: bool = False
    #: automatic array privatization without NEW clauses — the paper's
    #: other stated future work; off by default to match phpf
    auto_privatize_arrays: bool = False
    num_procs: int | None = None
    machine: MachineModel = field(default_factory=lambda: SP2)

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )


@dataclass
class CompiledProgram:
    """Everything the back ends need about one compiled program."""

    proc: Procedure
    options: CompilerOptions
    ctx: AnalysisContext
    scalar_pass: ScalarMappingPass
    array_result: ArrayMappingResult
    cf_decisions: dict[int, ControlFlowDecision]
    executors: dict[int, ExecutorInfo]
    comm: CommReport

    @property
    def grid(self) -> ProcessorGrid:
        return self.ctx.grid

    @property
    def mappings(self) -> dict[str, ArrayMapping]:
        """Effective array mappings (privatizations applied)."""
        return self.array_result.effective

    def scalar_mapping_of(self, stmt_id: int) -> ScalarMapping | None:
        """Mapping decision of the scalar assignment ``stmt_id``."""
        stmt = self.proc.stmt(stmt_id)
        d = self.ctx.ssa.def_of_assignment(stmt)
        if d is None:
            return None
        return self.scalar_pass.decisions.get(d.def_id)

    def report(self) -> str:
        """Human-readable compilation report (examples use this)."""
        from ..ir.expr import ScalarRef
        from ..ir.stmt import AssignStmt

        lines = [
            f"=== {self.proc.name} ===",
            f"grid: {self.grid.name}{self.grid.shape} "
            f"({self.grid.size} processors), strategy: {self.options.strategy}",
            "",
            "scalar mappings:",
        ]
        for stmt in self.proc.assignments():
            if isinstance(stmt.lhs, ScalarRef):
                mapping = self.scalar_mapping_of(stmt.stmt_id)
                if mapping is not None:
                    lines.append(f"  {stmt}  ->  {mapping}")
        if self.array_result.privatizations:
            lines.append("")
            lines.append("array privatizations:")
            for priv in self.array_result.privatizations:
                lines.append(f"  {priv}")
        if self.array_result.failures:
            lines.append("")
            lines.append("privatization failures:")
            for name, loop, reason in self.array_result.failures:
                lines.append(f"  {name} @ loop {loop.var.name}: {reason}")
        cf_lines = [
            f"  {d}" for d in self.cf_decisions.values()
        ]
        if cf_lines:
            lines.append("")
            lines.append("control flow:")
            lines.extend(cf_lines)
        lines.append("")
        lines.append("communication:")
        lines.append(self.comm.summary())
        return "\n".join(lines)


def compile_procedure(
    proc: Procedure, options: CompilerOptions | None = None
) -> CompiledProgram:
    options = options or CompilerOptions()
    ctx = build_context(proc, num_procs=options.num_procs)
    scalar_pass = run_scalar_mapping(
        ctx,
        ScalarMappingOptions(
            strategy=options.strategy,
            align_reductions=options.align_reductions,
        ),
    )
    array_result = run_array_mapping(
        ctx,
        scalar_pass,
        ArrayMappingOptions(
            privatize_arrays=options.privatize_arrays,
            partial_privatization=options.partial_privatization,
            auto_privatization=options.auto_privatize_arrays,
        ),
    )
    cf_decisions = run_control_flow(
        ctx, ControlFlowOptions(privatize_control_flow=options.privatize_control_flow)
    )
    # Imported here (not at module level) to keep repro.core importable
    # without repro.comm, which itself depends on repro.core.
    from ..comm.analysis import CommAnalysis, CommOptions

    executors = run_partitioning(
        ctx,
        scalar_pass,
        array_result.effective,
        cf_decisions,
        array_result.privatizations,
    )
    comm = CommAnalysis(
        ctx,
        scalar_pass,
        array_result.effective,
        executors,
        cf_decisions,
        CommOptions(message_vectorization=options.message_vectorization),
    ).run()
    if options.combine_messages:
        from ..comm.combine import combine_messages

        comm = combine_messages(comm)
    return CompiledProgram(
        proc=proc,
        options=options,
        ctx=ctx,
        scalar_pass=scalar_pass,
        array_result=array_result,
        cf_decisions=cf_decisions,
        executors=executors,
        comm=comm,
    )


def compile_source(
    source: str, options: CompilerOptions | None = None
) -> CompiledProgram:
    return compile_procedure(parse_and_build(source), options)
