"""Compilation driver: the full phpf-style pipeline.

``compile_source`` / ``compile_procedure`` run, in order:

1. parse + lower to IR,
2. CFG / dominance / liveness / pruned SSA / constant propagation,
3. induction-variable recognition and closed-form substitution
   (then re-analysis),
4. reduction recognition, privatizability analysis, directive-driven
   array mapping resolution,
5. **the paper's mapping passes**: scalar mapping (Fig. 3), reduction
   mapping (Sec. 2.3), array privatization incl. partial (Sec. 3),
   control-flow privatization (Sec. 4),
6. owner-computes computation partitioning,
7. communication analysis with message-vectorization placement.

Since the PassManager refactor the stages are named passes sequenced
by :class:`~repro.core.passes.PassManager` (see
``docs/ARCHITECTURE.md``); pass ``manager=`` to reuse one manager's
analysis cache across compiles, or use :func:`compile_many` to batch
whole ablation sweeps. The result of every entry point is a
:class:`CompiledProgram` consumed by the performance estimator, the
SPMD simulator, and the reports.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..model import SP2, MachineModel
from ..ir.program import Procedure
from ..mapping.descriptors import ArrayMapping
from ..mapping.grid import ProcessorGrid
from ..partition.owner_computes import ExecutorInfo
from .array_mapping import ArrayMappingResult
from .context import AnalysisContext
from .mapping_kinds import ControlFlowDecision, ScalarMapping
from .passes import PassManager, PipelineTimings
from .scalar_mapping import STRATEGIES, ScalarMappingPass

if TYPE_CHECKING:  # provided by comm/machine passes; no runtime dependency
    from ..comm.events import CommReport
    from ..machine.lowering import LoweredIR
    from ..machine.slabexec import SlabReport
    from ..obs import Tracer
    from ..perf.tierplan import TierPlan

#: the tier-choice cost constants ``repro calibrate`` fits (mirrors the
#: :class:`~repro.perf.estimator.PerfEstimator` attribute names; listed
#: here so options validation does not import the perf layer)
NEST_COST_CONSTANTS = ("C_T2_STMT", "C_PREP", "C_VEC", "C_ELEM")


@dataclass
class CompilerOptions:
    """Every knob of the reproduction, including the paper's measured
    baselines and the ablations called out in DESIGN.md."""

    strategy: str = "selected"  # Table 1: selected | producer | replication
    align_reductions: bool = True  # Table 2: True=Alignment, False=Default
    privatize_arrays: bool = True  # Table 3: array privatization on/off
    partial_privatization: bool = True  # Table 3: partial privatization
    privatize_control_flow: bool = True  # Section 4
    message_vectorization: bool = True  # cost-model ablation
    #: global message combining across loop nests — the paper's stated
    #: future work ("The phpf compiler does not currently perform that
    #: optimization"), hence off by default
    combine_messages: bool = False
    #: automatic array privatization without NEW clauses — the paper's
    #: other stated future work; off by default to match phpf
    auto_privatize_arrays: bool = False
    num_procs: int | None = None
    machine: MachineModel = field(default_factory=lambda: SP2)
    #: host-calibrated nest-cost constants steering tier selection
    #: (``repro calibrate --save``); None uses the estimator's shipped
    #: defaults.  Accepts a mapping or pair sequence and normalizes to
    #: a sorted tuple of ``(name, seconds)`` pairs so the options
    #: closure (compile-cache key, sweep grouping) stays canonical.
    nest_cost_constants: Any = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.num_procs is not None and (
            not isinstance(self.num_procs, int) or self.num_procs < 1
        ):
            raise ValueError(
                f"num_procs must be a positive processor count, "
                f"got {self.num_procs!r}"
            )
        if self.nest_cost_constants is not None:
            pairs = (
                self.nest_cost_constants.items()
                if isinstance(self.nest_cost_constants, Mapping)
                else self.nest_cost_constants
            )
            normalized = tuple(
                sorted((str(name), float(value)) for name, value in pairs)
            )
            unknown = sorted(
                {name for name, _ in normalized} - set(NEST_COST_CONSTANTS)
            )
            if unknown:
                raise ValueError(
                    f"unknown nest-cost constant(s) {unknown}; "
                    f"valid: {sorted(NEST_COST_CONSTANTS)}"
                )
            if any(value <= 0 for _, value in normalized):
                raise ValueError("nest-cost constants must be positive")
            self.nest_cost_constants = normalized or None

    @classmethod
    def from_overrides(
        cls, base: "CompilerOptions | None" = None, **overrides: Any
    ) -> "CompilerOptions":
        """The one construction site for option variants: start from
        ``base`` (or the defaults), apply ``overrides``, and validate.
        The CLI flag parser, the estimator's per-procs sweep, the table
        variants, and :class:`repro.sweep.SweepSpec` axes all build
        their options here, so an unknown knob fails the same way
        everywhere."""
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValueError(
                f"unknown CompilerOptions field(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )
        values = (
            {f.name: getattr(base, f.name) for f in fields(cls)}
            if base is not None
            else {}
        )
        values.update(overrides)
        return cls(**values)

    def overrides_from_defaults(self) -> dict[str, Any]:
        """The fields where this options object differs from the
        defaults — the human-readable part of a sweep label."""
        defaults = CompilerOptions()
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) != getattr(defaults, f.name)
        }


@dataclass
class CompiledProgram:
    """Everything the back ends need about one compiled program."""

    proc: Procedure
    options: CompilerOptions
    ctx: AnalysisContext
    scalar_pass: ScalarMappingPass
    array_result: ArrayMappingResult
    cf_decisions: dict[int, ControlFlowDecision]
    executors: dict[int, ExecutorInfo]
    comm: CommReport
    #: per-pass wall-time metrics of this compilation
    timings: PipelineTimings | None = None
    #: statement closures from the lowering pass (the simulator's fast
    #: path); None when a custom pipeline skipped it
    lowering: "LoweredIR | None" = None
    #: slab-eligibility report from the slabexec pass (the simulator's
    #: tier-3 engine); None when a custom pipeline skipped it
    slabs: "SlabReport | None" = None
    #: cost-driven per-nest tier decisions from the tierplan pass
    #: (consulted by the simulator under ``tier="auto"``); None when a
    #: custom pipeline skipped it
    tierplan: "TierPlan | None" = None

    @property
    def grid(self) -> ProcessorGrid:
        return self.ctx.grid

    @property
    def mappings(self) -> dict[str, ArrayMapping]:
        """Effective array mappings (privatizations applied)."""
        return self.array_result.effective

    def scalar_mapping_of(self, stmt_id: int) -> ScalarMapping | None:
        """Mapping decision of the scalar assignment ``stmt_id``."""
        stmt = self.proc.stmt(stmt_id)
        d = self.ctx.ssa.def_of_assignment(stmt)
        if d is None:
            return None
        return self.scalar_pass.decisions.get(d.def_id)

    def report(self) -> str:
        """Human-readable compilation report (examples use this)."""
        from ..ir.expr import ScalarRef

        lines = [
            f"=== {self.proc.name} ===",
            f"grid: {self.grid.name}{self.grid.shape} "
            f"({self.grid.size} processors), strategy: {self.options.strategy}",
            "",
            "scalar mappings:",
        ]
        for stmt in self.proc.assignments():
            if isinstance(stmt.lhs, ScalarRef):
                mapping = self.scalar_mapping_of(stmt.stmt_id)
                if mapping is not None:
                    lines.append(f"  {stmt}  ->  {mapping}")
        if self.array_result.privatizations:
            lines.append("")
            lines.append("array privatizations:")
            for priv in self.array_result.privatizations:
                lines.append(f"  {priv}")
        if self.array_result.failures:
            lines.append("")
            lines.append("privatization failures:")
            for name, loop, reason in self.array_result.failures:
                lines.append(f"  {name} @ loop {loop.var.name}: {reason}")
        cf_lines = [
            f"  {d}" for d in self.cf_decisions.values()
        ]
        if cf_lines:
            lines.append("")
            lines.append("control flow:")
            lines.extend(cf_lines)
        lines.append("")
        lines.append("communication:")
        lines.append(self.comm.summary())
        return "\n".join(lines)


def compile_procedure(
    proc: Procedure,
    options: CompilerOptions | None = None,
    *,
    manager: PassManager | None = None,
    timings: PipelineTimings | None = None,
    tracer: "Tracer | None" = None,
) -> CompiledProgram:
    options = options or CompilerOptions()
    manager = manager or PassManager(tracer=tracer)
    state, run_timings = manager.run(proc, options)
    all_timings = (timings or PipelineTimings()).merge(run_timings)
    return CompiledProgram(
        proc=proc,
        options=options,
        ctx=state["ctx"],
        scalar_pass=state["scalar_pass"],
        array_result=state["array_result"],
        cf_decisions=state["cf_decisions"],
        executors=state["executors"],
        comm=state["comm"],
        timings=all_timings,
        lowering=state.products.get("lowering"),
        slabs=state.products.get("slabexec"),
        tierplan=state.products.get("tierplan"),
    )


def compile_source(
    source: str,
    options: CompilerOptions | None = None,
    *,
    manager: PassManager | None = None,
    tracer: "Tracer | None" = None,
) -> CompiledProgram:
    """``tracer`` (repro.obs) instruments the pipeline when no explicit
    ``manager`` is given; a passed-in manager keeps its own tracer."""
    manager = manager or PassManager(tracer=tracer)
    timings = PipelineTimings()
    proc = manager.parse(source, timings)
    return compile_procedure(proc, options, manager=manager, timings=timings)


# ---------------------------------------------------------------------------
# Batch compilation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchJob:
    """One unit of :func:`compile_many` work."""

    source: str
    options: CompilerOptions = field(default_factory=CompilerOptions)
    label: str | None = None


_JOB_FIELDS = ("source", "options", "label")


def _as_job(job) -> BatchJob:
    if isinstance(job, BatchJob):
        return job
    if isinstance(job, str):
        return BatchJob(source=job)
    if isinstance(job, Mapping):
        unknown = sorted(set(job) - set(_JOB_FIELDS))
        if unknown:
            raise TypeError(
                f"batch job mapping has unknown field(s) {unknown}; "
                f"expected 'source' (required) plus optional "
                f"'options', 'label'"
            )
        if "source" not in job:
            raise TypeError(
                "batch job mapping is missing the required 'source' field"
            )
        source = job["source"]
        options = job.get("options")
        if options is None:
            options = CompilerOptions()
        elif isinstance(options, Mapping):
            options = CompilerOptions.from_overrides(**options)
        elif not isinstance(options, CompilerOptions):
            raise TypeError(
                f"batch job field 'options' must be a CompilerOptions or a "
                f"mapping of overrides, got {type(options).__name__}"
            )
    elif isinstance(job, (tuple, list)):
        if len(job) != 2:
            raise TypeError(
                f"batch job sequence must be (source, options), "
                f"got {len(job)} element(s)"
            )
        source, options = job
        if not isinstance(options, CompilerOptions):
            raise TypeError(
                f"batch job field 'options' must be a CompilerOptions, "
                f"got {type(options).__name__}"
            )
    else:
        raise TypeError(
            f"cannot interpret {type(job).__name__} as a batch job; pass a "
            f"BatchJob, a source string, a (source, options) pair, or a "
            f"mapping with fields {_JOB_FIELDS}"
        )
    if not isinstance(source, str):
        raise TypeError(
            f"batch job field 'source' must be program text (str), "
            f"got {type(source).__name__}"
        )
    if isinstance(job, Mapping):
        return BatchJob(source=source, options=options, label=job.get("label"))
    return BatchJob(source=source, options=options)


def _compile_one_cached(
    source: str,
    options: CompilerOptions,
    manager: PassManager,
    cache,
) -> CompiledProgram:
    """One compile through the optional persistent cache: a warm entry
    skips the whole pass pipeline."""
    if cache is None:
        return compile_source(source, options, manager=manager)
    compiled, _hit = cache.get_or_compile(
        source,
        options,
        lambda: compile_source(source, options, manager=manager),
        pipeline=manager.pipeline,
    )
    return compiled


def _compile_group(
    source: str,
    options_list: list[CompilerOptions],
    cache_root: str | None = None,
):
    """Pool worker: all ablations of one source share one manager, so
    the parsed IR and every front-end analysis are computed once; a
    persistent cache root additionally short-circuits whole compiles."""
    from .diskcache import CompileCache

    manager = PassManager()
    cache = CompileCache(cache_root) if cache_root else None
    return [
        _compile_one_cached(source, o, manager, cache) for o in options_list
    ]


def compile_many(
    jobs: Iterable[BatchJob | tuple[str, CompilerOptions] | Mapping | str],
    *,
    processes: int | None = None,
    manager: PassManager | None = None,
    cache=None,
) -> list[CompiledProgram]:
    """Compile a batch of (source, options) jobs, returning one
    :class:`CompiledProgram` per job in input order.

    Jobs are grouped by source text; each group runs under one
    :class:`PassManager`, so option ablations of the same program reuse
    the cached parse and front-end analyses. Distinct groups run
    concurrently on a process pool (the passes are pure-Python
    CPU-bound work) sized ``min(processes or cpu_count, group count)``;
    with a single group or a single CPU everything runs in-process,
    where an explicit ``manager`` can also carry its cache in and out.

    ``cache`` enables the persistent compile cache
    (:mod:`repro.core.diskcache`): pass a :class:`CompileCache`, a
    cache-root path, or True for the default root. Warm entries skip
    the pass pipeline entirely, in both the serial and the pooled
    paths.
    """
    from .diskcache import as_compile_cache

    batch: list[BatchJob] = [_as_job(j) for j in jobs]
    groups: dict[str, list[int]] = {}
    for index, job in enumerate(batch):
        groups.setdefault(job.source, []).append(index)

    disk_cache = as_compile_cache(cache)
    results: list[CompiledProgram | None] = [None] * len(batch)
    if processes is None:
        processes = os.cpu_count() or 1
    processes = max(1, min(processes, len(groups)))

    if processes == 1:
        shared = manager or PassManager()
        for source, indices in groups.items():
            for index in indices:
                results[index] = _compile_one_cached(
                    source, batch[index].options, shared, disk_cache
                )
    else:
        cache_root = str(disk_cache.root) if disk_cache is not None else None
        with ProcessPoolExecutor(max_workers=processes) as pool:
            futures = {
                pool.submit(
                    _compile_group,
                    source,
                    [batch[i].options for i in indices],
                    cache_root,
                ): indices
                for source, indices in groups.items()
            }
            for future, indices in futures.items():
                for index, compiled in zip(indices, future.result()):
                    results[index] = compiled
    return results  # type: ignore[return-value]
