"""SPMD execution on the simulated distributed-memory machine.

Runs a compiled program on P virtual processors with per-node memory,
validity tracking, and virtual clocks:

* each assignment executes only on its executor ranks (owner-computes
  guards, privatized/no-guard statements, replicated execution);
* a rank reading an element it does not hold triggers a modeled message
  from a valid owner, coalesced per the static communication analysis's
  placement level (message vectorization: one startup per vectorized
  instance, per-element bandwidth afterwards);
* reduction scalars accumulate privately per rank and are combined by a
  log-tree collective at the reduction loop's exit, exactly as the
  paper's code generation does with its privatized temporary copy;
* control-flow statements privatized by Section 4 are evaluated only by
  the processors that need them.

The simulator is the semantic referee: its gathered results must match
the sequential interpreter bit-for-bit, for every strategy — that is
what the integration tests assert. Its virtual time is also reported,
but large problem sizes are priced by ``repro.perf`` instead.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..codegen.evalexpr import ValueReader, coerce_store, eval_expr, eval_subscripts
from ..codegen.walker import ExecutionHooks, Walker
from ..comm.costmodel import MachineModel, flops_of_expr
from ..comm.events import CommEvent
from ..core.driver import CompiledProgram
from ..core.mapping_kinds import (
    FullyReplicatedReduction,
    ReductionMapping,
)
from ..errors import SimulationError
from ..ir.expr import AffineForm, ArrayElemRef, ScalarRef
from ..ir.stmt import AssignStmt, IfStmt, LoopStmt, Stmt
from ..obs import Metrics, NULL_TRACER, Tracer
from .lowering import FastHooks, FastPath
from .memory import NodeMemory, initialize_array, ownership_mask
from .stats import Clocks, Trace, TrafficStats


class _FetchingReader(ValueReader):
    """Reads through one rank's memory, fetching remote data on demand."""

    def __init__(self, sim: "SPMDSimulator", rank: int, stmt: Stmt):
        self.sim = sim
        self.rank = rank
        self.stmt = stmt

    def read_scalar(self, ref: ScalarRef, env):
        name = ref.symbol.name
        if name in env:
            return env[name]
        memory = self.sim.memories[self.rank]
        if memory.scalar_is_valid(name):
            return memory.scalar_value(name)
        return self.sim.fetch_scalar(self.rank, ref, self.stmt, env)

    def read_array(self, ref: ArrayElemRef, index, env):
        name = ref.symbol.name
        memory = self.sim.memories[self.rank]
        if memory.array_is_valid(name, index):
            return memory.array_value(name, index)
        return self.sim.fetch_array(self.rank, ref, index, self.stmt, env)


class _AuthoritativeReader(ValueReader):
    """Reads the authoritative value (any valid copy) without charging —
    used for guard evaluation and loop bounds, whose data is replicated
    by construction (dummy-replicated consumers / loop-bound events)."""

    def __init__(self, sim: "SPMDSimulator"):
        self.sim = sim

    def read_scalar(self, ref: ScalarRef, env):
        name = ref.symbol.name
        if name in env:
            return env[name]
        return self.sim.authoritative_scalar(name)

    def read_array(self, ref: ArrayElemRef, index, env):
        return self.sim.authoritative_array(ref.symbol.name, index)


class _SPMDHooks(ExecutionHooks):
    def __init__(self, sim: "SPMDSimulator"):
        self.sim = sim

    def assign(self, stmt: AssignStmt, env):
        self.sim.interp_instances += 1
        self.sim.exec_assign(stmt, env)

    def eval_condition(self, stmt: IfStmt, env) -> bool:
        self.sim.interp_instances += 1
        return self.sim.exec_condition(stmt, env)

    def eval_bound(self, expr, env) -> int:
        return int(eval_expr(expr, self.sim.authoritative, env))

    def loop_enter(self, stmt: LoopStmt, env):
        self.sim.on_loop_enter(stmt, env)

    def loop_exit(self, stmt: LoopStmt, env):
        self.sim.on_loop_exit(stmt, env)


class SPMDSimulator:
    def __init__(
        self,
        compiled: CompiledProgram,
        machine: MachineModel | None = None,
        trace_capacity: int = 0,
        fast_path: bool = True,
        slab_path: bool = True,
        tracer: Tracer | None = None,
        metrics: Metrics | None = None,
        tier: str | None = None,
    ):
        self.compiled = compiled
        # ``tier`` names the engine stack explicitly and overrides the
        # legacy fast_path/slab_path flags; None keeps their semantics
        # ("slab" everywhere it can) for existing callers and parity
        # tests.  "auto" additionally consults the compiled TierPlan per
        # nest — cost-driven selection that never regresses below the
        # lowered tier.
        if tier is not None:
            if tier not in ("auto", "interpreted", "lowered", "slab"):
                raise ValueError(
                    f"tier must be auto|interpreted|lowered|slab, got {tier!r}"
                )
            fast_path = tier != "interpreted"
            slab_path = tier in ("auto", "slab")
        self.tier_mode = tier
        #: structured tracing (repro.obs); the disabled NULL_TRACER by
        #: default, so hot paths pay one attribute load and one branch.
        #: Unlike the legacy ``trace`` ring, enabling it does NOT
        #: disable the slab tier.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: metrics registry filled by :meth:`collect_metrics` at the end
        #: of :meth:`run` (None: no collection)
        self.metrics = metrics
        #: escape hatch: False runs the original tree-walking executor;
        #: the parity tests assert both paths agree bit-for-bit
        self.fast_path = fast_path
        #: tier 3: vectorized slab kernels for eligible loop nests
        #: (requires fast_path; False times the lowered closures alone)
        self.slab_path = slab_path
        self._fast: FastPath | None = None
        #: dynamic statement instances executed as slabs vs one at a
        #: time — the bench's eligibility-coverage metric
        self.slab_instances = 0
        self.interp_instances = 0
        #: loop ids the TierPlan approved for slab takeover (None: no
        #: plan consulted — every eligible nest may be taken)
        self._tier_approved: set[int] | None = None
        if tier == "auto":
            plan = getattr(compiled, "tierplan", None)
            if plan is not None and plan.ir_epoch == compiled.proc.ir_epoch:
                self._tier_approved = plan.slab_loops()
        #: runtime record, loop id -> engine that actually ran the nest
        #: ("slab" | "lowered"), exported via canonical_stats()/metrics
        self.tier_decisions: dict[int, str] = {}
        self.proc = compiled.proc
        self.grid = compiled.grid
        self.machine = machine or compiled.options.machine
        self.memories = [NodeMemory(r, self.proc) for r in self.grid.all_ranks()]
        # A VectorMachine (repro.machine.batchexec) carries one lane
        # per swept machine variant: charge every lane in one run.
        from .batchexec import VectorClocks, VectorMachine

        if isinstance(self.machine, VectorMachine):
            self.clocks = VectorClocks(self.grid.size, self.machine)
        else:
            self.clocks = Clocks(self.grid.size, self.machine)
        self.stats = TrafficStats()
        self.trace = Trace(trace_capacity)
        self.authoritative = _AuthoritativeReader(self)
        #: (stmt_id, ref_id) -> CommEvent, for fetch coalescing; when
        #: message combining merged/deduped events, every absorbed
        #: (stmt, ref) pair still resolves to the combined event
        self._events: dict[tuple[int, int], CommEvent] = {}
        for e in compiled.comm.events:
            self._events[(e.stmt.stmt_id, e.ref.ref_id)] = e
            for absorbed in list(e.aliases) + list(e.combined_with):
                self._events[(absorbed.stmt.stmt_id, absorbed.ref.ref_id)] = e
        # Hand-built reports (tests, custom pipelines) may not have run
        # CommAnalysis; give any unassigned event a deterministic
        # ordinal from the report's own order so coalescing keys never
        # fall back to object identity.
        next_ordinal = (
            max((e.ordinal for e in compiled.comm.events), default=-1) + 1
        )
        for e in compiled.comm.events:
            if e.ordinal < 0:
                e.ordinal = next_ordinal
                next_ordinal += 1
        self._fetch_keys_seen: set = set()
        #: loop indices currently iterating (a position form referencing
        #: an inactive loop's index spans the whole dimension)
        self._active_loop_vars: dict[str, int] = {}
        #: reduction bookkeeping
        self._reduction_updates: dict[int, tuple] = {}
        self._reductions_by_loop: dict[int, list] = {}
        self._reduction_snapshots: dict[int, dict[int, float]] = {}
        #: name -> per-rank ownership masks, cached for gather()
        self._owner_masks: dict[str, list[np.ndarray]] = {}
        #: executor-set caches: per-statement "runs everywhere" flag and
        #: position-form-value -> rank list (satellite: stop rebuilding
        #: the itertools product on every statement instance)
        self._all_ranks = list(self.grid.all_ranks())
        self._exec_everywhere: dict[int, bool] = {}
        self._ranks_cache: dict[tuple, list[int]] = {}
        self._index_reductions()
        # Zero-initialize every array with ownership validity (matching
        # the sequential interpreter's zero-filled global store);
        # set_array overwrites the contents afterwards.  Kept pending so
        # untouched arrays on non-executor ranks never allocate.
        for symbol in self.proc.symbols.arrays():
            mapping = self.compiled.mappings[symbol.name]
            for memory in self.memories:
                memory.init_pending(symbol.name, None, mapping)

    # ==================================================================
    # Setup
    # ==================================================================

    def _index_reductions(self) -> None:
        array_reductions = getattr(
            self.compiled.scalar_pass, "array_reductions", {}
        )
        for reduction in self.compiled.ctx.reductions:
            update = reduction.update_stmts[0]
            if reduction.is_array_reduction:
                entry = array_reductions.get(update.stmt_id)
                if entry is None:
                    continue
                _, mapping = entry
                self._reduction_updates[update.stmt_id] = (reduction, mapping)
                self._reductions_by_loop.setdefault(
                    reduction.loop.stmt_id, []
                ).append((reduction, mapping))
                continue
            d = self.compiled.ctx.ssa.def_of_assignment(update)
            mapping = (
                self.compiled.scalar_pass.decisions.get(d.def_id) if d else None
            )
            if not isinstance(mapping, (ReductionMapping, FullyReplicatedReduction)):
                continue
            for stmt in reduction.update_stmts:
                self._reduction_updates[stmt.stmt_id] = (reduction, mapping)
            if isinstance(mapping, ReductionMapping):
                self._reductions_by_loop.setdefault(
                    reduction.loop.stmt_id, []
                ).append((reduction, mapping))

    def set_array(self, name: str, values: np.ndarray) -> None:
        mapping = self.compiled.mappings[name.upper()]
        initialize_array(self.memories, mapping, values)

    def run(self):
        if self.fast_path:
            if self._fast is None:
                self._fast = FastPath(self)
            hooks: ExecutionHooks = FastHooks(self._fast)
            tier = "lowered+slab" if self.slab_path else "lowered"
        else:
            hooks = _SPMDHooks(self)
            tier = "interpreted"
        walker = Walker(self.proc, hooks)
        with self.tracer.span(
            f"simulate[{tier}]", cat="sim", procs=self.grid.size
        ) as span:
            result = walker.run()
            span.add(
                messages=self.stats.messages,
                slab_instances=self.slab_instances,
                interp_instances=self.interp_instances,
            )
        if self.metrics is not None:
            self.collect_metrics(self.metrics)
        return result

    # ==================================================================
    # Authoritative lookups
    # ==================================================================

    def authoritative_scalar(self, name: str):
        for memory in self.memories:
            if memory.scalar_is_valid(name):
                return memory.scalar_value(name)
        raise SimulationError(f"no valid copy of scalar {name} anywhere")

    def authoritative_array(self, name: str, index: tuple[int, ...]):
        mapping = self.compiled.mappings[name]
        for rank in mapping.owner_ranks(index):
            if self.memories[rank].array_is_valid(name, index):
                return self.memories[rank].array_value(name, index)
        for memory in self.memories:
            if memory.array_is_valid(name, index):
                return memory.array_value(name, index)
        raise SimulationError(f"no valid copy of {name}{index} anywhere")

    # ==================================================================
    # Fetch (modeled communication)
    # ==================================================================

    def _coalesce_key(self, event: CommEvent | None, stmt: Stmt, ref_id: int,
                      src: int, dst: int, env) -> tuple:
        if event is None:
            return ("raw", stmt.stmt_id, ref_id, src, dst, tuple(sorted(env.items())))
        from ..comm.analysis import hoisted_loop_vars

        outer = tuple(env.get(name, 0) for name in hoisted_loop_vars(event, stmt))
        # Keyed by the event's stable ordinal so transfers merged by
        # message combining share one startup per placement instance
        # and charging is identical across runs and pickle round-trips.
        return ("evt", event.ordinal, src, dst, outer)

    def _charge_fetch(self, event: CommEvent | None, stmt: Stmt, ref_id: int,
                      src: int, dst: int, env, elements: int = 1) -> None:
        key = self._coalesce_key(event, stmt, ref_id, src, dst, env)
        startup = key not in self._fetch_keys_seen
        self._fetch_keys_seen.add(key)
        self.clocks.charge_message_amortized(src, dst, elements, startup)
        if startup:
            self.stats.messages += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "msg.startup",
                    cat="comm",
                    src=src,
                    dst=dst,
                    stmt=stmt.stmt_id,
                    event=-1 if event is None else event.ordinal,
                )
        self.stats.record_fetch(
            (stmt.stmt_id, ref_id) if event is not None else None, elements
        )

    def fetch_array(self, rank: int, ref: ArrayElemRef, index, stmt: Stmt, env):
        name = ref.symbol.name
        mapping = self.compiled.mappings[name]
        src = None
        for owner in mapping.owner_ranks(index):
            if self.memories[owner].array_is_valid(name, index):
                src = owner
                break
        if src is None:
            for r, memory in enumerate(self.memories):
                if memory.array_is_valid(name, index):
                    src = r
                    break
        if src is None:
            raise SimulationError(
                f"rank {rank}: {name}{index} requested but no rank holds it "
                f"(statement S{stmt.stmt_id})"
            )
        value = self.memories[src].array_value(name, index)
        self.memories[rank].array_store(name, index, value)
        event = self._events.get((stmt.stmt_id, ref.ref_id))
        self._charge_fetch(event, stmt, ref.ref_id, src, rank, env)
        self.trace.record(
            "fetch", f"{name}{index} for S{stmt.stmt_id}", src=src, dst=rank
        )
        return value

    def fetch_scalar(self, rank: int, ref: ScalarRef, stmt: Stmt, env):
        name = ref.symbol.name
        src = None
        for r, memory in enumerate(self.memories):
            if memory.scalar_is_valid(name):
                src = r
                break
        if src is None:
            raise SimulationError(
                f"rank {rank}: scalar {name} requested but no rank holds it "
                f"(statement S{stmt.stmt_id})"
            )
        value = self.memories[src].scalar_value(name)
        self.memories[rank].scalar_store(name, value)
        event = self._events.get((stmt.stmt_id, ref.ref_id))
        self._charge_fetch(event, stmt, ref.ref_id, src, rank, env)
        self.trace.record(
            "fetch", f"{name} for S{stmt.stmt_id}", src=src, dst=rank
        )
        return value

    # ==================================================================
    # Executor sets
    # ==================================================================

    def _eval_form(self, form: AffineForm, env) -> int | None:
        """Evaluate an affine position form; None when some variable has
        no value yet (e.g. the index of a loop that has not started —
        the position then spans the whole dimension)."""
        total = form.const
        for symbol, coeff in form.coeffs:
            if symbol.is_loop_var and symbol.name not in self._active_loop_vars:
                return None  # inactive loop index: spans the dimension
            if symbol.name in env:
                value = env[symbol.name]
            elif symbol.value is not None:
                value = symbol.value
            else:
                value = None
                for memory in self.memories:
                    if memory.scalar_is_valid(symbol.name):
                        value = memory.scalar_value(symbol.name)
                        break
                if value is None:
                    return None
            total += coeff * int(value)
        return total

    def _position_form_values(self, position, env) -> tuple[int | None, ...]:
        return tuple(
            self._eval_form(dim.form, env)
            if dim.kind == "pos" and dim.form is not None and dim.fmt is not None
            else None
            for dim in position
        )

    def _position_ranks(
        self, position, values: tuple[int | None, ...]
    ) -> list[int]:
        axes: list[list[int]] = []
        for g, dim in enumerate(position):
            pos = values[g]
            if pos is not None:
                axes.append([dim.fmt.owner(pos)])
            else:
                axes.append(list(range(self.grid.shape[g])))
        return [self.grid.rank_of(c) for c in itertools.product(*axes)]

    def _ranks_of_position(self, position, env) -> list[int]:
        return self._position_ranks(position, self._position_form_values(position, env))

    def _runs_everywhere(self, stmt: Stmt) -> bool:
        """Reduction-variable statements outside the update set (the
        initialization of the privatized temporary) run everywhere;
        static per statement, so computed once."""
        cached = self._exec_everywhere.get(stmt.stmt_id)
        if cached is not None:
            return cached
        everywhere = False
        if (
            isinstance(stmt, AssignStmt)
            and isinstance(stmt.lhs, ScalarRef)
            and stmt.stmt_id not in self._reduction_updates
        ):
            d = self.compiled.ctx.ssa.def_of_lhs.get(stmt.lhs.ref_id)
            mapping = (
                self.compiled.scalar_pass.decisions.get(d) if d is not None else None
            )
            everywhere = isinstance(mapping, ReductionMapping)
        self._exec_everywhere[stmt.stmt_id] = everywhere
        return everywhere

    def executor_ranks(self, stmt: Stmt, env) -> list[int]:
        info = self.compiled.executors[stmt.stmt_id]
        if self._runs_everywhere(stmt) or info.kind == "all":
            return self._all_ranks
        # Cache on the evaluated position forms: statement instances in
        # different iterations of hoisted-out loops share one entry.
        values = self._position_form_values(info.position, env)
        key = (stmt.stmt_id, values)
        ranks = self._ranks_cache.get(key)
        if ranks is None:
            ranks = self._position_ranks(info.position, values)
            self._ranks_cache[key] = ranks
        return ranks

    # ==================================================================
    # Statement execution
    # ==================================================================

    def _flops(self, stmt: Stmt) -> int:
        if isinstance(stmt, AssignStmt):
            return max(flops_of_expr(stmt.rhs), 1)
        if isinstance(stmt, IfStmt):
            return max(flops_of_expr(stmt.cond), 1)
        return 0

    def exec_assign(self, stmt: AssignStmt, env) -> None:
        ranks = self.executor_ranks(stmt, env)
        if not ranks:
            raise SimulationError(f"S{stmt.stmt_id}: empty executor set")
        reduction_entry = self._reduction_updates.get(stmt.stmt_id)
        is_private_accumulation = reduction_entry is not None

        if isinstance(stmt.lhs, ArrayElemRef):
            name = stmt.lhs.symbol.name
            written_index = None
            for rank in ranks:
                reader = _FetchingReader(self, rank, stmt)
                index = eval_subscripts(stmt.lhs, reader, env)
                value = eval_expr(stmt.rhs, reader, env)
                value = coerce_store(value, stmt.lhs.symbol.type)
                self.memories[rank].array_store(name, index, value)
                self.clocks.charge_compute(rank, self._flops(stmt))
                written_index = index
            if written_index is not None and not is_private_accumulation:
                # Batched invalidation: one offset computation and a
                # direct mask write per non-executor rank, instead of
                # per-element accessor calls.
                executing = set(ranks)
                off = self.memories[0].offset(name, written_index)
                for rank in self._all_ranks:
                    if rank not in executing:
                        memory = self.memories[rank]
                        memory.valid[name][off] = False
                        memory.versions[name] += 1
        else:
            name = stmt.lhs.symbol.name
            for rank in ranks:
                reader = _FetchingReader(self, rank, stmt)
                value = eval_expr(stmt.rhs, reader, env)
                value = coerce_store(value, stmt.lhs.symbol.type)
                self.memories[rank].scalar_store(name, value)
                self.clocks.charge_compute(rank, self._flops(stmt))
            if not is_private_accumulation and len(ranks) < self.grid.size:
                executing = set(ranks)
                for rank in self._all_ranks:
                    if rank not in executing:
                        self.memories[rank].scalar_invalidate(name)

    def exec_condition(self, stmt: IfStmt, env) -> bool:
        decision = self.compiled.cf_decisions.get(stmt.stmt_id)
        if decision is not None and decision.privatized:
            ranks = self._dependent_ranks(decision, env)
        else:
            ranks = list(self.grid.all_ranks())
        if not ranks:
            # Nobody depends on the outcome; evaluate for control flow
            # only (free).
            return bool(eval_expr(stmt.cond, self.authoritative, env))
        results = set()
        for rank in ranks:
            reader = _FetchingReader(self, rank, stmt)
            value = bool(eval_expr(stmt.cond, reader, env))
            self.clocks.charge_compute(rank, self._flops(stmt))
            results.add(value)
        if len(results) != 1:
            raise SimulationError(
                f"S{stmt.stmt_id}: predicate disagrees across processors"
            )
        return results.pop()

    def _dependent_ranks(self, decision, env) -> list[int]:
        ranks: set[int] = set()
        for ref in decision.dependent_refs:
            dep_stmt = self.proc.stmt_of_ref(ref)
            ranks.update(self.executor_ranks(dep_stmt, env))
        return sorted(ranks)

    # ==================================================================
    # Reductions
    # ==================================================================

    def _participant_groups(self, mapping: ReductionMapping, env):
        """Groups of ranks combining together: the aligned (non-reduced)
        coordinates are fixed by the target's position; the reduction
        dims span all coordinates."""
        target_mapping = self.compiled.mappings[mapping.target.symbol.name]
        axes: list[list[int]] = []
        for g in range(self.grid.rank):
            if g in mapping.replicated_grid_dims:
                axes.append(list(range(self.grid.shape[g])))
                continue
            role = target_mapping.roles[g]
            if role.kind != "dist":
                axes.append(list(range(self.grid.shape[g])))
                continue
            sub = mapping.target.subscripts[role.array_dim]
            from ..ir.expr import affine_form

            form = affine_form(sub)
            if form is None:
                axes.append(list(range(self.grid.shape[g])))
                continue
            pos = role.stride * self._eval_form(form, env) + role.norm_offset
            axes.append([role.fmt.owner(pos)])
        ranks = [self.grid.rank_of(c) for c in itertools.product(*axes)]
        return [sorted(ranks)]

    def on_loop_enter(self, stmt: LoopStmt, env) -> None:
        var_name = stmt.var.name
        self._active_loop_vars[var_name] = (
            self._active_loop_vars.get(var_name, 0) + 1
        )
        for reduction, mapping in self._reductions_by_loop.get(stmt.stmt_id, ()):
            key = (stmt.stmt_id, reduction.symbol.name)
            name = reduction.symbol.name
            if reduction.is_array_reduction:
                self._reduction_snapshots[key] = {
                    memory.rank: memory.arrays[name].copy()
                    for memory in self.memories
                }
            else:
                snapshot: dict[int, float] = {}
                for memory in self.memories:
                    if memory.scalar_is_valid(name):
                        snapshot[memory.rank] = memory.scalar_value(name)
                self._reduction_snapshots[key] = snapshot

    def on_loop_exit(self, stmt: LoopStmt, env) -> None:
        var_name = stmt.var.name
        count = self._active_loop_vars.get(var_name, 0) - 1
        if count <= 0:
            self._active_loop_vars.pop(var_name, None)
        else:
            self._active_loop_vars[var_name] = count
        for reduction, mapping in self._reductions_by_loop.get(stmt.stmt_id, ()):
            if reduction.is_array_reduction:
                self._combine_array(reduction, mapping, stmt, env)
            else:
                self._combine(reduction, mapping, stmt, env)

    def _combine_array(
        self, reduction, mapping: ReductionMapping, loop: LoopStmt, env
    ) -> None:
        """Element-wise combine of an array-valued reduction at the
        reduction loop's exit (paper Section 3.1): for each accumulator
        element, merge the partials held by its owner group."""
        name = reduction.symbol.name
        acc_mapping = self.compiled.mappings[name]
        symbol = acc_mapping.array
        snapshots = self._reduction_snapshots.get(
            (loop.stmt_id, name), {}
        )
        group_elements: dict[tuple[int, ...], int] = {}
        ranges = [range(lo, hi + 1) for lo, hi in symbol.dims]
        for index in itertools.product(*ranges):
            group = tuple(sorted(acc_mapping.owner_ranks(index)))
            if len(group) <= 1:
                continue
            offset = self.memories[group[0]].offset(name, index)
            partials = []
            for rank in group:
                base = snapshots[rank][offset] if rank in snapshots else 0.0
                value = self.memories[rank].arrays[name][offset]
                partials.append((rank, float(value), float(base)))
            if all(v == b for _, v, b in partials):
                continue  # untouched element
            if reduction.op == "+":
                combined = partials[0][2] + sum(v - b for _, v, b in partials)
            elif reduction.op == "*":
                combined = partials[0][2]
                for _, v, b in partials:
                    if b == 0:
                        raise SimulationError(
                            "array product reduction from zero base"
                        )
                    combined *= v / b
            elif reduction.op == "MAX":
                combined = max(v for _, v, _ in partials)
            elif reduction.op == "MIN":
                combined = min(v for _, v, _ in partials)
            else:
                raise SimulationError(
                    f"unknown array reduction op {reduction.op}"
                )
            for rank in group:
                self.memories[rank].array_store(name, index, combined)
            group_elements[group] = group_elements.get(group, 0) + 1
        for group, elements in group_elements.items():
            self.clocks.charge_collective(list(group), elements, "reduce")
            self.stats.reductions += 1
            self.trace.record(
                "reduce",
                f"{reduction.op}({name})[{elements} elems] across ranks "
                f"{list(group)}",
            )

    def _combine(self, reduction, mapping: ReductionMapping, loop: LoopStmt, env) -> None:
        name = reduction.symbol.name
        snapshot = self._reduction_snapshots.get((loop.stmt_id, name), {})
        for group in self._participant_groups(mapping, env):
            partials = []
            for rank in group:
                memory = self.memories[rank]
                if memory.scalar_is_valid(name):
                    partials.append((rank, memory.scalar_value(name)))
            if not partials:
                continue
            if reduction.op == "+":
                base = snapshot.get(partials[0][0], 0.0)
                combined = base + sum(v - snapshot.get(r, base) for r, v in partials)
                loc_value = None
            elif reduction.op == "*":
                base = snapshot.get(partials[0][0], 1.0)
                combined = base
                for r, v in partials:
                    prev = snapshot.get(r, base)
                    if prev == 0:
                        raise SimulationError("product reduction from zero base")
                    combined *= v / prev
                loc_value = None
            elif reduction.op in ("MAX", "MAXLOC"):
                best_rank, combined = max(partials, key=lambda t: t[1])
                loc_value = self._location_of(reduction, best_rank)
            elif reduction.op in ("MIN", "MINLOC"):
                best_rank, combined = min(partials, key=lambda t: t[1])
                loc_value = self._location_of(reduction, best_rank)
            else:
                raise SimulationError(f"unknown reduction op {reduction.op}")
            if len(group) > 1:
                self.clocks.charge_collective(group, 1, "reduce")
                self.stats.reductions += 1
                self.trace.record(
                    "reduce",
                    f"{reduction.op}({name}) across ranks {group}",
                )
            for rank in self.grid.all_ranks():
                memory = self.memories[rank]
                if rank in group:
                    memory.scalar_store(name, combined)
                    if loc_value is not None and reduction.location_symbol is not None:
                        memory.scalar_store(reduction.location_symbol.name, loc_value)
                else:
                    memory.scalar_invalidate(name)
                    if reduction.location_symbol is not None:
                        memory.scalar_invalidate(reduction.location_symbol.name)

    def _location_of(self, reduction, rank: int):
        if reduction.location_symbol is None:
            return None
        memory = self.memories[rank]
        loc_name = reduction.location_symbol.name
        if memory.scalar_is_valid(loc_name):
            return memory.scalar_value(loc_name)
        return None

    # ==================================================================
    # Results
    # ==================================================================

    def _masks_of(self, name: str) -> list[np.ndarray]:
        masks = self._owner_masks.get(name)
        if masks is None:
            mapping = self.compiled.mappings[name]
            masks = [ownership_mask(mapping, r) for r in self.grid.all_ranks()]
            self._owner_masks[name] = masks
        return masks

    def gather(self, name: str) -> np.ndarray:
        """Reassemble the global array from owning ranks (vectorized
        ``authoritative_array`` over the whole index space: pass 1 takes
        each element from its lowest-ranked valid owner, pass 2 from the
        lowest-ranked valid copy anywhere — the interpreted element-wise
        lookup order, so the result is bit-identical)."""
        name = name.upper()
        mapping = self.compiled.mappings[name]
        symbol = mapping.array
        shape = tuple(symbol.extent(d) for d in range(symbol.rank))
        result = np.zeros(shape, dtype=self.memories[0].array_dtype(name))
        filled = np.zeros(shape, dtype=np.bool_)
        masks = self._masks_of(name)
        for rank, memory in enumerate(self.memories):
            take = memory.valid[name] & masks[rank]
            take &= ~filled
            if take.any():
                result[take] = memory.arrays[name][take]
                filled |= take
        if not filled.all():
            for memory in self.memories:
                take = memory.valid[name] & ~filled
                if take.any():
                    result[take] = memory.arrays[name][take]
                    filled |= take
        if not filled.all():
            offset = np.unravel_index(int(np.argmax(~filled)), shape)
            index = tuple(
                int(o) + lo for o, (lo, _) in zip(offset, symbol.dims)
            )
            raise SimulationError(f"no valid copy of {name}{index} anywhere")
        return result

    def gather_scalar(self, name: str):
        return self.authoritative_scalar(name.upper())

    @property
    def elapsed(self) -> float:
        return self.clocks.elapsed

    @property
    def slab_coverage(self) -> float:
        """Fraction of dynamic statement instances executed as slabs."""
        total = self.slab_instances + self.interp_instances
        return self.slab_instances / total if total else 0.0

    def canonical_stats(self) -> dict:
        """Clocks + traffic stats as a JSON payload whose keys are
        stable across *compiles* of the same source: per-event fetch
        counts are grouped on the stable event ordinal instead of the
        process-global stmt/ref ids (which drift when one process
        parses the program twice).  The CI determinism gate
        byte-compares two of these."""
        stats = self.stats.as_dict()
        per_event: dict[str, int] = {}
        for (sid, rid), count in sorted(self.stats.per_event_fetches.items()):
            event = self._events.get((sid, rid))
            key = "unplaced" if event is None else f"evt{event.ordinal:04d}"
            per_event[key] = per_event.get(key, 0) + count
        stats["per_event_fetches"] = dict(sorted(per_event.items()))
        # Tier decisions keyed on the loop's pre-order ordinal — like
        # the event ordinals, stable across compiles of one source
        # (stmt ids are process-global and drift).
        ordinals = {
            s.stmt_id: i
            for i, s in enumerate(
                s for s in self.proc.all_stmts() if isinstance(s, LoopStmt)
            )
        }
        tiers = {
            f"L{ordinals[sid]:02d}": choice
            for sid, choice in self.tier_decisions.items()
            if sid in ordinals
        }
        return {
            "procs": self.grid.size,
            "clocks": self.clocks.snapshot(),
            "stats": stats,
            "tiers": dict(sorted(tiers.items())),
        }

    def collect_metrics(self, metrics: Metrics | None = None) -> Metrics:
        """Fill ``metrics`` from the run's accumulated state.

        Batch collection, not hot-path recording: everything here is
        derived from statistics the simulator keeps anyway (the
        coalescing key set, ``TrafficStats``, the tier counters), so a
        metrics-enabled run charges exactly like a plain one.
        Idempotent — totals land in gauges and the per-event
        distributions are rebuilt, so calling it twice (or after a
        second ``run``) never double-counts.
        """
        m = metrics if metrics is not None else (self.metrics or Metrics())
        m.gauge("sim.procs", self.grid.size)
        m.gauge("sim.elapsed", self.elapsed)
        m.gauge("sim.slab_instances", self.slab_instances)
        m.gauge("sim.interp_instances", self.interp_instances)
        m.gauge("sim.slab_coverage", round(self.slab_coverage, 6))
        if self.tier_mode is not None:
            m.gauge(f"tier.mode[{self.tier_mode}]", 1)
        for sid, choice in sorted(self.tier_decisions.items()):
            m.gauge(f"tier.decision[loop=S{sid},choice={choice}]", 1)
        for name, value in self.stats.as_dict().items():
            if isinstance(value, (int, float)):
                m.gauge(f"sim.{name}", value)
        # One physical message (one startup) per distinct coalescing
        # key; group them by event ordinal for the per-placement-
        # instance distribution.
        per_event_messages: dict[int, int] = {}
        for key in self._fetch_keys_seen:
            if key[0] == "evt":
                ordinal = key[1]
                per_event_messages[ordinal] = (
                    per_event_messages.get(ordinal, 0) + 1
                )
        m.histograms.pop("sim.messages_per_event", None)
        for ordinal in sorted(per_event_messages):
            m.observe("sim.messages_per_event", per_event_messages[ordinal])
        m.histograms.pop("sim.elements_per_event", None)
        for key in sorted(self.stats.per_event_fetches):
            m.observe(
                "sim.elements_per_event", self.stats.per_event_fetches[key]
            )
        return m


def simulate(
    compiled: CompiledProgram,
    inputs: dict[str, np.ndarray] | None = None,
    machine: MachineModel | None = None,
    trace_capacity: int = 0,
    fast_path: bool = True,
    slab_path: bool = True,
    tracer: Tracer | None = None,
    metrics: Metrics | None = None,
    tier: str | None = None,
) -> SPMDSimulator:
    sim = SPMDSimulator(
        compiled,
        machine,
        trace_capacity=trace_capacity,
        fast_path=fast_path,
        slab_path=slab_path,
        tracer=tracer,
        metrics=metrics,
        tier=tier,
    )
    for name, values in (inputs or {}).items():
        sim.set_array(name, values)
    sim.run()
    return sim
