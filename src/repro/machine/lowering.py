"""One-time lowering of IR statements to cached Python closures — the
hot path of both execution back ends.

The tree-walking evaluator re-dispatches an ``isinstance`` chain per
expression node per iteration per rank. This module removes that work
once, at lowering time:

* **Expressions** compile to Python code objects via ``compile()``.
  Constant subtrees fold (through the same ``_apply_binop`` /
  ``_apply_intrinsic`` the interpreter uses, so folded values are
  bit-identical), intrinsics inline to direct calls, and subscript
  bounds checks become inline comparisons whose failure path raises the
  interpreter's exact error. Each statement becomes one closure
  ``fn(R, env)`` parameterized over a :class:`ValueReader`-shaped
  reader, so the SPMD simulator and the sequential interpreter share
  the lowered form.
* **Executor sets** (:class:`ExecutorTables`) lower each statement's
  owner-computes position to per-grid-dim coordinate closures over
  precomputed ``fmt.owner`` tables: the per-iteration
  ``_eval_form``/``_ranks_of_position`` recomputation becomes O(1)
  table lookups parameterized only by the enclosing loop indices.
* **Fetches** (:class:`FetchEngine`) resolve sources through
  precomputed owner tables, and fetches sharing a coalescing key are
  served from a numpy block snapshot of the source's owned slab
  (charged exactly as before: one startup per placement instance plus
  per-element bandwidth — identical clock totals by construction).

Lowered closures are cached per ``(proc.uid, proc.ir_epoch)``: any
``finalize()`` after an IR transform bumps the epoch and invalidates
the cache entry. Statements the lowerer cannot handle simply stay
interpreted — the fast path falls back per statement, never changing
semantics. ``SPMDSimulator(..., fast_path=False)`` bypasses the module
entirely; the parity tests use that escape hatch to assert bit-for-bit
identity of results, clocks, and traffic statistics.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..codegen.evalexpr import (
    _apply_binop,
    _apply_intrinsic,
    coerce_store,
    eval_expr,
    fortran_int_div,
)
from ..codegen.walker import ExecutionHooks
from ..comm.analysis import hoisted_loop_vars
from ..comm.costmodel import flops_of_expr
from ..core.mapping_kinds import ReductionMapping
from ..errors import InterpreterError, SimulationError
from ..ir.expr import (
    ArrayElemRef,
    BinOp,
    Const,
    Expr,
    IntrinsicCall,
    ScalarRef,
    UnOp,
)
from ..ir.stmt import AssignStmt, IfStmt, LoopStmt
from ..ir.symbols import ScalarType

_MISS = object()


# ---------------------------------------------------------------------------
# Runtime helpers referenced by generated code
# ---------------------------------------------------------------------------


def _idiv(left: int, right: int) -> int:
    if right == 0:
        raise InterpreterError("integer division by zero")
    return fortran_int_div(left, right)


def _div(left, right):
    if isinstance(left, int) and isinstance(right, int):
        if right == 0:
            raise InterpreterError("integer division by zero")
        return fortran_int_div(left, right)
    if right == 0:
        raise InterpreterError("division by zero")
    return left / right


def _unop(op, value):
    raise InterpreterError(f"unknown unary op {op!r}")


def _oob(symbol, index):
    """Raise the interpreter's exact subscript error for the first
    out-of-bounds dimension of ``index``."""
    for dim, idx in enumerate(index):
        low, high = symbol.dims[dim]
        if not low <= idx <= high:
            raise InterpreterError(
                f"subscript {idx} out of bounds {low}:{high} for "
                f"{symbol.name} dim {dim + 1}"
            )
    raise InterpreterError(f"subscript check failed for {symbol.name}{index}")


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


class _CannotLower(Exception):
    """This expression/statement stays interpreted."""


class _NoFold(Exception):
    """Constant folding declined (e.g. non-finite float literal)."""


#: what a best-effort constant fold may swallow: fold-declined
#: (``_NoFold``), values the interpreter itself would reject at run
#: time (``InterpreterError``: constant division by zero, unknown
#: intrinsic), and numeric-domain errors.  Genuine programming errors
#: (NameError, TypeError, ...) propagate.
_FOLD_ERRORS = (
    _NoFold,
    InterpreterError,
    ArithmeticError,
    ValueError,
    OverflowError,
)

#: what statement-level lowering may swallow before falling back to the
#: interpreter: "stay interpreted" signals plus the fold error set
_LOWER_ERRORS = (_CannotLower,) + _FOLD_ERRORS


class _Emitted:
    __slots__ = ("code", "is_const", "value", "is_int")

    def __init__(self, code, is_const=False, value=None, is_int=False):
        self.code = code
        self.is_const = is_const
        self.value = value
        self.is_int = is_int


_CMP_OPS = {"==": "==", "/=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_MATH_INTRINSICS = {
    "SQRT": "_sqrt",
    "EXP": "_exp",
    "LOG": "_log",
    "SIN": "_sin",
    "COS": "_cos",
}


class _ExprCompiler:
    """Emits Python source for IR expressions into a shared globals
    dict. Folded constants go through the interpreter's own arithmetic
    so values agree bit-for-bit; anything it cannot handle raises
    :class:`_CannotLower` and the statement stays interpreted."""

    def __init__(self, glb: dict):
        self.glb = glb
        self._temp = 0

    def _ref_name(self, ref) -> str:
        name = f"_r{ref.ref_id}"
        self.glb[name] = ref
        return name

    def _sym_name(self, symbol) -> str:
        name = f"_sy_{symbol.name}"
        self.glb[name] = symbol
        return name

    def _const(self, value) -> _Emitted:
        if isinstance(value, float) and not math.isfinite(value):
            raise _NoFold  # repr() would not round-trip as a literal
        return _Emitted(
            repr(value),
            is_const=True,
            value=value,
            is_int=isinstance(value, int) and not isinstance(value, bool),
        )

    def emit(self, expr: Expr) -> _Emitted:
        if isinstance(expr, Const):
            return self._const(expr.value)
        if isinstance(expr, ScalarRef):
            return self._scalar_read(expr)
        if isinstance(expr, ArrayElemRef):
            r = self._ref_name(expr)
            idx = self.index_code(expr)
            return _Emitted(
                f"R.read_array({r}, {idx}, env)",
                is_int=expr.symbol.type is ScalarType.INT,
            )
        if isinstance(expr, UnOp):
            return self._unop(expr)
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, IntrinsicCall):
            return self._intrinsic(expr)
        raise _CannotLower(f"cannot lower {expr!r}")

    def _scalar_read(self, expr: ScalarRef) -> _Emitted:
        symbol = expr.symbol
        if symbol.value is not None:
            try:
                return self._const(symbol.value)
            except _NoFold:
                pass
        r = self._ref_name(expr)
        is_int = symbol.type is ScalarType.INT
        if symbol.value is not None:
            # non-foldable constant value: keep the interpreter's lookup
            sy = self._sym_name(symbol)
            return _Emitted(f"{sy}.value", is_int=is_int)
        if symbol.is_loop_var:
            key = repr(symbol.name)
            return _Emitted(
                f"(env[{key}] if {key} in env else R.read_scalar({r}, env))",
                is_int=is_int,
            )
        return _Emitted(f"R.read_scalar({r}, env)", is_int=is_int)

    def _unop(self, expr: UnOp) -> _Emitted:
        x = self.emit(expr.operand)
        if expr.op == "-":
            if x.is_const:
                try:
                    return self._const(-x.value)
                except _NoFold:
                    pass
            return _Emitted(f"(-{x.code})", is_int=x.is_int)
        if expr.op == ".NOT.":
            if x.is_const:
                return self._const(not x.value)
            return _Emitted(f"(not {x.code})")
        return _Emitted(f"_unop({expr.op!r}, {x.code})")

    def _binop(self, expr: BinOp) -> _Emitted:
        l = self.emit(expr.left)
        r = self.emit(expr.right)
        op = expr.op
        if l.is_const and r.is_const:
            try:
                return self._const(_apply_binop(op, l.value, r.value))
            except _FOLD_ERRORS:  # fold is best-effort; runtime raises instead
                pass
        if op in ("+", "-", "*"):
            return _Emitted(
                f"({l.code} {op} {r.code})", is_int=l.is_int and r.is_int
            )
        if op == "/":
            if l.is_int and r.is_int:
                return _Emitted(f"_idiv({l.code}, {r.code})", is_int=True)
            return _Emitted(f"_div({l.code}, {r.code})")
        if op == "**":
            return _Emitted(f"({l.code} ** {r.code})")
        if op in _CMP_OPS:
            return _Emitted(f"({l.code} {_CMP_OPS[op]} {r.code})")
        # .AND./.OR. must evaluate both operands (the interpreter does,
        # and skipping one could skip a fetch) — bitwise on bools
        if op == ".AND.":
            return _Emitted(f"(bool({l.code}) & bool({r.code}))")
        if op == ".OR.":
            return _Emitted(f"(bool({l.code}) | bool({r.code}))")
        return _Emitted(f"_binop({op!r}, {l.code}, {r.code})")

    def _intrinsic(self, expr: IntrinsicCall) -> _Emitted:
        args = [self.emit(a) for a in expr.args]
        name = expr.name
        if args and all(a.is_const for a in args):
            try:
                return self._const(
                    _apply_intrinsic(name, [a.value for a in args])
                )
            except _FOLD_ERRORS:
                pass
        codes = ", ".join(a.code for a in args)
        all_int = all(a.is_int for a in args)
        if name == "ABS":
            return _Emitted(f"abs({args[0].code})", is_int=args[0].is_int)
        if name in ("MAX", "MIN"):
            fn = name.lower()
            if len(args) == 1:  # max([x]) == x
                return args[0]
            return _Emitted(f"{fn}({codes})", is_int=all_int)
        if name in _MATH_INTRINSICS:
            return _Emitted(f"{_MATH_INTRINSICS[name]}({args[0].code})")
        if name == "MOD":
            return _Emitted(f"({args[0].code} % {args[1].code})", is_int=all_int)
        if name == "SIGN":
            return _Emitted(f"_copysign({args[0].code}, {args[1].code})")
        if name == "INT":
            return _Emitted(f"int({args[0].code})", is_int=True)
        if name in ("REAL", "FLOAT", "DBLE"):
            return _Emitted(f"float({args[0].code})")
        return _Emitted(f"_intr({name!r}, [{codes}])")

    def index_code(self, ref: ArrayElemRef) -> str:
        """Inline ``eval_subscripts``: evaluate every subscript (in
        order, with any side effects), then bounds-check. The checks
        chain with ``&`` — not ``and`` — so every walrus binds even when
        an early check fails, and the error path (``_oob``) raises the
        interpreter's exact message for the first bad dimension."""
        symbol = ref.symbol
        temps: list[str] = []
        checks: list[str] = []
        for dim, sub in enumerate(ref.subscripts):
            e = self.emit(sub)
            code = e.code if e.is_int else f"int({e.code})"
            t = f"_t{self._temp}"
            self._temp += 1
            temps.append(t)
            low, high = symbol.dims[dim]
            checks.append(f"({low} <= ({t} := {code}) <= {high})")
        tup = "(" + ", ".join(temps) + ("," if len(temps) == 1 else "") + ")"
        cond = " & ".join(checks) if len(checks) > 1 else checks[0]
        sy = self._sym_name(symbol)
        return f"({tup} if {cond} else _oob({sy}, {tup}))"

    def store_code(self, emitted: _Emitted, symbol_type: ScalarType) -> str:
        """Fortran assignment conversion (``coerce_store``), inlined."""
        if emitted.is_const:
            return repr(coerce_store(emitted.value, symbol_type))
        if symbol_type is ScalarType.INT:
            return emitted.code if emitted.is_int else f"int({emitted.code})"
        if symbol_type is ScalarType.REAL:
            return f"float({emitted.code})"
        return f"bool({emitted.code})"


# ---------------------------------------------------------------------------
# Lowered procedure
# ---------------------------------------------------------------------------


@dataclass
class LoweredIR:
    """Per-procedure lowering result: one closure per statement the
    lowerer could compile. A missing entry means "stay interpreted"."""

    proc: Any
    ir_epoch: int
    #: stmt_id -> fn(R, env) -> (index-or-None, coerced value)
    assigns: dict[int, Callable] = field(default_factory=dict)
    #: stmt_id -> (lhs symbol name, dim lower bounds or None for scalars)
    lhs_info: dict[int, tuple] = field(default_factory=dict)
    #: stmt_id -> fn(R, env) -> bool
    conds: dict[int, Callable] = field(default_factory=dict)
    #: id(bound expr) -> fn(R, env) -> int
    bounds: dict[int, Callable] = field(default_factory=dict)
    #: stmt_id -> flop count of Assign/If statements (for compute charges)
    flops: dict[int, int] = field(default_factory=dict)
    #: label -> generated source, for debugging/inspection
    sources: dict[str, str] = field(default_factory=dict)

    def __reduce__(self):
        # closures don't pickle (CompiledPrograms travel across the
        # compile pool and the persistent disk cache); ship a lazy
        # stand-in that re-lowers only if statements actually execute
        return (_LazyLowered, (self.proc,))


class _LazyLowered:
    """Unpickled stand-in for a :class:`LoweredIR`.

    Re-lowering eagerly on arrival costs ~10ms of ``builtins.compile``
    calls — paid even by consumers (compile-mode sweeps, report
    printing) that never execute a statement. Defer to first touch;
    :class:`FastPath` forces once so statement execution never goes
    through ``__getattr__``."""

    __slots__ = ("_proc", "_real")

    def __init__(self, proc):
        self._proc = proc
        self._real = None

    def force(self) -> "LoweredIR":
        if self._real is None:
            self._real = lower_procedure(self._proc)
        return self._real

    def __getattr__(self, name):
        # only reached for LoweredIR attributes (slots resolve first)
        return getattr(self.force(), name)

    def __reduce__(self):
        return (_LazyLowered, (self._proc,))


#: (proc.uid, proc.ir_epoch) -> LoweredIR; bounded so long-running
#: processes compiling many procedures don't accumulate dead closures
_LOWERED_CACHE: OrderedDict[tuple[int, int], LoweredIR] = OrderedDict()
_LOWERED_CACHE_MAX = 64

#: process-wide hit/miss/eviction tallies of the lowering LRU, exposed
#: through :func:`lowering_cache_stats` for the obs metrics export
_CACHE_COUNTS = {"hits": 0, "misses": 0, "evictions": 0}


def lowering_cache_stats() -> dict[str, int]:
    """Snapshot of the lowering LRU's activity since process start."""
    return dict(_CACHE_COUNTS, size=len(_LOWERED_CACHE))


def _compile_fn(name: str, body: str, glb: dict, lowered: LoweredIR, label: str):
    src = f"def {name}(R, env):\n    return {body}\n"
    exec(compile(src, f"<lowered:{label}>", "exec"), glb)
    lowered.sources[label] = src
    return glb[name]


def lower_procedure(proc) -> LoweredIR:
    """Lower every statement of ``proc`` to closures, cached on
    ``(proc.uid, proc.ir_epoch)`` — shared across option ablations and
    invalidated by any IR-mutating ``finalize()``."""
    key = (proc.uid, proc.ir_epoch)
    cached = _LOWERED_CACHE.get(key)
    if cached is not None:
        _CACHE_COUNTS["hits"] += 1
        _LOWERED_CACHE.move_to_end(key)
        return cached
    _CACHE_COUNTS["misses"] += 1
    glb: dict[str, Any] = {
        "InterpreterError": InterpreterError,
        "_div": _div,
        "_idiv": _idiv,
        "_sqrt": math.sqrt,
        "_exp": math.exp,
        "_log": math.log,
        "_sin": math.sin,
        "_cos": math.cos,
        "_copysign": math.copysign,
        "_intr": _apply_intrinsic,
        "_binop": _apply_binop,
        "_unop": _unop,
        "_oob": _oob,
    }
    lowered = LoweredIR(proc=proc, ir_epoch=proc.ir_epoch)
    comp = _ExprCompiler(glb)
    for stmt in proc.all_stmts():
        sid = stmt.stmt_id
        if isinstance(stmt, AssignStmt):
            lowered.flops[sid] = max(flops_of_expr(stmt.rhs), 1)
            try:
                rhs = comp.emit(stmt.rhs)
                val = comp.store_code(rhs, stmt.lhs.symbol.type)
                if isinstance(stmt.lhs, ArrayElemRef):
                    # tuple evaluation order = subscripts first, then
                    # rhs — matching the simulator's exec_assign
                    body = f"({comp.index_code(stmt.lhs)}, {val})"
                    lows = tuple(lo for lo, _ in stmt.lhs.symbol.dims)
                else:
                    body = f"(None, {val})"
                    lows = None
                lowered.assigns[sid] = _compile_fn(
                    f"_a{sid}", body, glb, lowered, f"{proc.name}:S{sid}"
                )
                lowered.lhs_info[sid] = (stmt.lhs.symbol.name, lows)
            except _LOWER_ERRORS:
                lowered.lhs_info.pop(sid, None)
        elif isinstance(stmt, IfStmt):
            lowered.flops[sid] = max(flops_of_expr(stmt.cond), 1)
            try:
                cond = comp.emit(stmt.cond)
                lowered.conds[sid] = _compile_fn(
                    f"_c{sid}",
                    f"bool({cond.code})",
                    glb,
                    lowered,
                    f"{proc.name}:S{sid}",
                )
            except _LOWER_ERRORS:
                pass
        elif isinstance(stmt, LoopStmt):
            for expr in (stmt.low, stmt.high, stmt.step):
                if expr is None or id(expr) in lowered.bounds:
                    continue
                try:
                    e = comp.emit(expr)
                    lowered.bounds[id(expr)] = _compile_fn(
                        f"_b{len(lowered.bounds)}",
                        e.code if e.is_int else f"int({e.code})",
                        glb,
                        lowered,
                        f"{proc.name}:S{sid}:bound{len(lowered.bounds)}",
                    )
                except _LOWER_ERRORS:
                    pass
    _LOWERED_CACHE[key] = lowered
    while len(_LOWERED_CACHE) > _LOWERED_CACHE_MAX:
        _CACHE_COUNTS["evictions"] += 1
        _LOWERED_CACHE.popitem(last=False)
    return lowered


# ---------------------------------------------------------------------------
# Executor tables
# ---------------------------------------------------------------------------


class ExecutorTables:
    """Precomputed executor rank descriptors: owner-computes guards as
    O(1) table lookups parameterized only by enclosing loop indices."""

    def __init__(self, sim):
        self.sim = sim
        grid = sim.grid
        self.shape = grid.shape
        strides: list[int] = []
        s = 1
        for extent in reversed(grid.shape):
            strides.append(s)
            s *= extent
        #: row-major rank = sum(coord[g] * strides[g])
        self.strides = tuple(reversed(strides))
        self.all_ranks = list(grid.all_ranks())
        #: shared [rank] singletons so owner-set lookups allocate nothing
        self.singletons = [[r] for r in self.all_ranks]
        self._owner_tables: dict = {}
        self._closures: dict[int, Callable] = {}

    def owner_table(self, fmt) -> list[int]:
        table = self._owner_tables.get(fmt)
        if table is None:
            table = [fmt.owner(p) for p in range(fmt.extent)]
            self._owner_tables[fmt] = table
        return table

    def ranks(self, stmt, env) -> list[int]:
        fn = self._closures.get(stmt.stmt_id)
        if fn is None:
            fn = self._build(stmt)
            self._closures[stmt.stmt_id] = fn
        return fn(env)

    def _build(self, stmt) -> Callable:
        sim = self.sim
        compiled = sim.compiled
        info = compiled.executors[stmt.stmt_id]
        all_ranks = self.all_ranks
        # Reduction-variable statements outside the update set run
        # everywhere (mirrors SPMDSimulator.executor_ranks).
        if (
            isinstance(stmt, AssignStmt)
            and isinstance(stmt.lhs, ScalarRef)
            and stmt.stmt_id not in sim._reduction_updates
        ):
            d = compiled.ctx.ssa.def_of_lhs.get(stmt.lhs.ref_id)
            mapping = (
                compiled.scalar_pass.decisions.get(d) if d is not None else None
            )
            if isinstance(mapping, ReductionMapping):
                return lambda env: all_ranks
        if info.kind == "all":
            return lambda env: all_ranks
        return self._position_closure(info.position)

    def _position_closure(self, position) -> Callable:
        coord_fns: list[Callable | None] = []
        for dim in position:
            if dim.kind == "pos" and dim.form is not None and dim.fmt is not None:
                coord_fns.append(self._form_closure(dim.form, dim.fmt))
            else:
                coord_fns.append(None)
        strides = self.strides
        pos_dims = tuple(
            (strides[g], fn) for g, fn in enumerate(coord_fns) if fn is not None
        )
        # rank contributions of the spanning dims, in itertools.product
        # order (later grid dims vary fastest == ascending ranks)
        span_bases = [0]
        for g, fn in enumerate(coord_fns):
            if fn is None:
                stride = strides[g]
                span_bases = [
                    b + c * stride
                    for b in span_bases
                    for c in range(self.shape[g])
                ]
        if not pos_dims:
            return lambda env: span_bases
        singles = self.singletons if span_bases == [0] else None
        generic = self._generic_closure(coord_fns)

        def ranks_of(env):
            acc = 0
            for stride, fn in pos_dims:
                c = fn(env)
                if c is None:  # inactive loop var: dim spans the grid
                    return generic(env)
                acc += c * stride
            if singles is not None:
                return singles[acc]
            return [acc + b for b in span_bases]

        return ranks_of

    def _generic_closure(self, coord_fns) -> Callable:
        shape = self.shape
        strides = self.strides

        def generic(env):
            ranks = [0]
            for g, fn in enumerate(coord_fns):
                c = fn(env) if fn is not None else None
                if c is None:
                    contrib = [cc * strides[g] for cc in range(shape[g])]
                else:
                    contrib = [c * strides[g]]
                ranks = [r + cc for r in ranks for cc in contrib]
            return ranks

        return generic

    def _form_closure(self, form, fmt) -> Callable:
        """Affine position form -> owning coordinate (or None when it
        spans), with ``fmt.owner`` pre-tabulated. Mirrors
        ``SPMDSimulator._eval_form`` exactly, including the live
        lookup chain env -> symbol.value -> any valid memory copy."""
        table = self.owner_table(fmt)
        extent = fmt.extent
        const = form.const
        terms = tuple(
            (sym.name, coeff, sym.value, bool(sym.is_loop_var))
            for sym, coeff in form.coeffs
        )
        active = self.sim._active_loop_vars
        memories = self.sim.memories
        if not terms:
            if 0 <= const < extent:
                c = table[const]
                return lambda env: c
            return lambda env: fmt.owner(const)  # raises MappingError

        def coord(env):
            pos = const
            for name, coeff, value, is_loop_var in terms:
                if is_loop_var and name not in active:
                    return None
                v = env.get(name, _MISS)
                if v is _MISS:
                    if value is not None:
                        v = value
                    else:
                        v = None
                        for memory in memories:
                            if memory.scalar_valid.get(name, False):
                                v = memory.scalars[name]
                                break
                        if v is None:
                            return None
                pos += coeff * int(v)
            if 0 <= pos < extent:
                return table[pos]
            return fmt.owner(pos)  # raises the canonical MappingError

        return coord


# ---------------------------------------------------------------------------
# Fetch engine: precomputed owner tables + staged block transfers
# ---------------------------------------------------------------------------


class _Stage:
    """Snapshot of a source rank's owned slab, taken on the second
    fetch of a coalescing key and serving the rest of that vectorized
    message as local numpy reads. Valid only while the source array's
    version counter is unchanged."""

    __slots__ = ("src", "version", "los", "his", "data", "valid")

    def __init__(self, src, version, los, his, data, valid):
        self.src = src
        self.version = version
        self.los = los
        self.his = his
        self.data = data
        self.valid = valid


class _ArrayAccess:
    """Per-array fetch metadata: owner tables in ``owner_ranks`` order,
    raw storage handles, and the block-slab geometry for staging."""

    def __init__(self, sim, name: str, etables: ExecutorTables, stage_ok: bool):
        mapping = sim.compiled.mappings[name]
        self.name = name
        self.mapping = mapping
        self.memories = sim.memories
        self.datas = [m.arrays[name] for m in sim.memories]
        self.valids = [m.valid[name] for m in sim.memories]
        grid = sim.grid
        self.grid = grid
        strides = etables.strides
        dist = []
        stageable = stage_ok
        for g, role in enumerate(mapping.roles):
            if role.kind == "dist":
                dist.append(
                    (
                        role.array_dim,
                        role.stride,
                        role.norm_offset,
                        etables.owner_table(role.fmt),
                        role.fmt,
                        strides[g],
                    )
                )
                if role.fmt.kind != "block" or role.stride != 1:
                    stageable = False  # slabs are block-contiguous only
        self.dist = tuple(dist)
        span_bases = [0]
        for g, role in enumerate(mapping.roles):
            if role.kind != "dist":
                stride = strides[g]
                span_bases = [
                    b + c * stride
                    for b in span_bases
                    for c in range(grid.shape[g])
                ]
        self.span_bases = span_bases
        self.singletons = etables.singletons if span_bases == [0] else None
        self.stageable = stageable and bool(dist)
        self._slabs: dict[int, tuple | None] = {}

    def candidates(self, index) -> list[int]:
        """Owning ranks of a global index — same order (and same OOB
        MappingError) as ``ArrayMapping.owner_ranks``."""
        acc = 0
        for array_dim, stride, noff, table, fmt, gstride in self.dist:
            pos = stride * index[array_dim] + noff
            if 0 <= pos < fmt.extent:
                acc += table[pos] * gstride
            else:
                acc += fmt.owner(pos) * gstride  # raises
        if self.singletons is not None:
            return self.singletons[acc]
        return [acc + b for b in self.span_bases]

    def _slab(self, src: int):
        got = self._slabs.get(src, _MISS)
        if got is not _MISS:
            return got
        symbol = self.mapping.array
        coords = self.grid.coords_of(src)
        los: list[int] = []
        his: list[int] = []
        got = None
        for dim in range(symbol.rank):
            n = symbol.extent(dim)
            lo, hi = 0, n
            g = self.mapping.grid_dim_of_array_dim(dim)
            if g is not None:
                role = self.mapping.roles[g]
                fmt = role.fmt
                bs = fmt.block_size
                t_lo = coords[g] * bs
                t_hi = min(t_lo + bs, fmt.extent)
                low_bound = symbol.dims[dim][0]
                # stride == 1: offset of index i is i - low_bound and
                # its template position is i + norm_offset
                lo = max(t_lo - role.norm_offset - low_bound, 0)
                hi = min(t_hi - role.norm_offset - low_bound, n)
            if hi <= lo:
                break
            los.append(lo)
            his.append(hi)
        else:
            slices = tuple(slice(lo, hi) for lo, hi in zip(los, his))
            got = (slices, tuple(los), tuple(his))
        self._slabs[src] = got
        return got

    def stage_from(self, src: int) -> _Stage | None:
        s = self._slab(src)
        if s is None:
            return None
        slices, los, his = s
        return _Stage(
            src,
            self.memories[src].versions[self.name],
            los,
            his,
            self.datas[src][slices].copy(),
            self.valids[src][slices].copy(),
        )


class FetchEngine:
    """Fast-path remote reads: precomputed per-ref coalescing metadata
    and staged numpy block transfers. Charging is identical to the
    interpreted ``fetch_array`` — one startup per coalescing key, one
    bandwidth unit per element, in the same order."""

    _MAX_STAGES = 64

    def __init__(self, fast: "FastPath"):
        self.sim = fast.sim
        self.etables = fast.etables
        self._access: dict[str, _ArrayAccess] = {}
        #: (stmt_id, ref_id) -> (event | None, outer loop var names)
        self._meta: dict[tuple[int, int], tuple] = {}
        #: coalescing key -> _Stage | None (None = staging disabled for
        #: this key after a stale snapshot)
        self._stages: OrderedDict = OrderedDict()
        # arrays accumulating per-rank reduction partials hold
        # rank-divergent values; never stage them
        self._no_stage = {
            reduction.symbol.name
            for reduction, _ in self.sim._reduction_updates.values()
            if reduction.is_array_reduction
        }

    def access(self, name: str) -> _ArrayAccess:
        acc = self._access.get(name)
        if acc is None:
            acc = _ArrayAccess(
                self.sim, name, self.etables, name not in self._no_stage
            )
            self._access[name] = acc
        return acc

    def fetch_array(self, reader, ref, index, off, env):
        sim = self.sim
        name = ref.symbol.name
        acc = self.access(name)
        valids = acc.valids
        src = None
        for owner in acc.candidates(index):
            if valids[owner][off]:
                src = owner
                break
        if src is None:
            for r in range(len(valids)):
                if valids[r][off]:
                    src = r
                    break
        stmt = reader.stmt
        rank = reader.rank
        if src is None:
            raise SimulationError(
                f"rank {rank}: {name}{index} requested but no rank holds it "
                f"(statement S{stmt.stmt_id})"
            )
        sid = stmt.stmt_id
        rid = ref.ref_id
        meta = self._meta.get((sid, rid))
        if meta is None:
            event = sim._events.get((sid, rid))
            if event is None:
                meta = (None, None)
            else:
                meta = (event, hoisted_loop_vars(event, stmt))
            self._meta[(sid, rid)] = meta
        event, outer_names = meta
        if event is None:
            key = ("raw", sid, rid, src, rank, tuple(sorted(env.items())))
        else:
            key = (
                "evt",
                event.ordinal,
                src,
                rank,
                tuple(env.get(n, 0) for n in outer_names),
            )
        seen = sim._fetch_keys_seen
        startup = key not in seen
        value = None
        if startup:
            seen.add(key)
        elif acc.stageable:
            st = self._stages.get(key, _MISS)
            if st is _MISS:
                # second fetch of this key: the message is vectorized,
                # snapshot the source slab as one block transfer
                st = acc.stage_from(src)
                self._remember(key, st)
                if sim.tracer.enabled:
                    sim.tracer.instant(
                        "fetch.stage",
                        cat="comm",
                        array=name,
                        src=src,
                        staged=st is not None,
                    )
            if st is not None:
                if (
                    st.src == src
                    and acc.memories[src].versions[name] == st.version
                ):
                    rel = []
                    for o, lo, hi in zip(off, st.los, st.his):
                        if lo <= o < hi:
                            rel.append(o - lo)
                        else:
                            rel = None
                            break
                    if rel is not None and st.valid[tuple(rel)]:
                        value = st.data[tuple(rel)].item()
                else:
                    # stale snapshot: the source mutated mid-message;
                    # stop staging this key
                    self._stages[key] = None
        if value is None:
            value = acc.datas[src][off].item()
        # deliver into the requesting rank's memory (= array_store)
        arr, valid, _lows, mem = reader.tables[name]
        arr[off] = value
        valid[off] = True
        mem.versions[name] += 1
        sim.clocks.charge_message_amortized(src, rank, 1, startup)
        if startup:
            sim.stats.messages += 1
            if sim.tracer.enabled:
                sim.tracer.instant(
                    "msg.startup",
                    cat="comm",
                    src=src,
                    dst=rank,
                    stmt=sid,
                    event=-1 if event is None else event.ordinal,
                )
        sim.stats.record_fetch((sid, rid) if event is not None else None, 1)
        if sim.trace.enabled:
            sim.trace.record(
                "fetch", f"{name}{index} for S{sid}", src=src, dst=rank
            )
        return value

    def _remember(self, key, st):
        self._stages[key] = st
        while len(self._stages) > self._MAX_STAGES:
            self._stages.popitem(last=False)


# ---------------------------------------------------------------------------
# Fast readers and the fast path itself
# ---------------------------------------------------------------------------


class _RankTables(dict):
    """name -> (data, valid, lows, memory) handle tuples, built on
    first use so lazily-allocated arrays stay unallocated on ranks that
    never touch them."""

    def __init__(self, memory):
        super().__init__()
        self._memory = memory

    def __missing__(self, name):
        memory = self._memory
        rec = (
            memory.arrays[name],
            memory.valid[name],
            memory._lows[name],
            memory,
        )
        self[name] = rec
        return rec


class _FastReader:
    """Per-rank reader with direct storage handles — the lowered-closure
    counterpart of ``_FetchingReader``."""

    __slots__ = ("sim", "engine", "rank", "stmt", "scalars", "scalar_valid", "tables")

    def __init__(self, sim, engine: FetchEngine, rank: int):
        self.sim = sim
        self.engine = engine
        self.rank = rank
        self.stmt = None
        memory = sim.memories[rank]
        self.scalars = memory.scalars
        self.scalar_valid = memory.scalar_valid
        self.tables = _RankTables(memory)

    def read_scalar(self, ref, env):
        name = ref.symbol.name
        if name in env:
            return env[name]
        if self.scalar_valid.get(name, False):
            return self.scalars[name]
        return self.sim.fetch_scalar(self.rank, ref, self.stmt, env)

    def read_array(self, ref, index, env):
        arr, valid, lows, _memory = self.tables[ref.symbol.name]
        off = tuple(i - lo for i, lo in zip(index, lows))
        if valid[off]:
            return arr[off].item()
        return self.engine.fetch_array(self, ref, index, off, env)


class FastPath:
    """Wires the lowered closures, executor tables, and fetch engine to
    one simulator instance. Every statement without a lowered closure
    falls back to the simulator's interpreted execution."""

    def __init__(self, sim):
        self.sim = sim
        lowered = getattr(sim.compiled, "lowering", None)
        if isinstance(lowered, _LazyLowered):
            lowered = lowered.force()
        if lowered is None or lowered.ir_epoch != sim.proc.ir_epoch:
            lowered = lower_procedure(sim.proc)
        self.lowered = lowered
        self.etables = ExecutorTables(sim)
        self.engine = FetchEngine(self)
        self.readers = [_FastReader(sim, self.engine, r) for r in sim.grid.all_ranks()]
        machine = sim.machine
        #: stmt_id -> precomputed compute-charge delta (compute_time is
        #: deterministic in flops, so this is bit-identical to
        #: charge_compute)
        self._dt = {
            sid: machine.compute_time(flops, 1)
            for sid, flops in lowered.flops.items()
        }
        self._assign_recs: dict[int, Any] = {}
        self._cond_recs: dict[int, Any] = {}
        #: tier 3, created on the first loop takeover attempt
        self.slab: Any = None

    # -- assignments -------------------------------------------------------

    def _assign_rec(self, stmt):
        sid = stmt.stmt_id
        fn = self.lowered.assigns.get(sid)
        if fn is None:
            return False
        name, lows = self.lowered.lhs_info[sid]
        closure = self.etables._closures.get(sid)
        if closure is None:
            closure = self.etables._build(stmt)
            self.etables._closures[sid] = closure
        return (
            fn,
            name,
            lows,
            self._dt[sid],
            sid in self.sim._reduction_updates,
            closure,
        )

    def exec_assign(self, stmt, env) -> None:
        sid = stmt.stmt_id
        self.sim.interp_instances += 1
        rec = self._assign_recs.get(sid)
        if rec is None:
            rec = self._assign_rec(stmt)
            self._assign_recs[sid] = rec
        if rec is False:
            return self.sim.exec_assign(stmt, env)
        fn, name, lows, dt, is_private_accumulation, ranks_of = rec
        ranks = ranks_of(env)
        if not ranks:
            raise SimulationError(f"S{sid}: empty executor set")
        sim = self.sim
        readers = self.readers
        memories = sim.memories
        time = sim.clocks.time
        compute_time = sim.clocks.compute_time
        if lows is not None:  # array lhs
            written = None
            for rank in ranks:
                reader = readers[rank]
                reader.stmt = stmt
                index, value = fn(reader, env)
                arr, valid, _lo, memory = reader.tables[name]
                off = tuple(i - lo for i, lo in zip(index, lows))
                arr[off] = value
                valid[off] = True
                memory.versions[name] += 1
                time[rank] += dt
                compute_time[rank] += dt
                written = off
            if (
                written is not None
                and not is_private_accumulation
                and len(ranks) < len(memories)
            ):
                executing = set(ranks)
                for rank, memory in enumerate(memories):
                    if rank not in executing:
                        memory.valid[name][written] = False
                        memory.versions[name] += 1
        else:  # scalar lhs
            for rank in ranks:
                reader = readers[rank]
                reader.stmt = stmt
                _none, value = fn(reader, env)
                memory = memories[rank]
                memory.scalars[name] = value
                memory.scalar_valid[name] = True
                time[rank] += dt
                compute_time[rank] += dt
            if not is_private_accumulation and len(ranks) < len(memories):
                executing = set(ranks)
                for rank, memory in enumerate(memories):
                    if rank not in executing:
                        memory.scalar_valid[name] = False

    # -- conditions and bounds --------------------------------------------

    def exec_condition(self, stmt, env) -> bool:
        sid = stmt.stmt_id
        self.sim.interp_instances += 1
        rec = self._cond_recs.get(sid)
        if rec is None:
            fn = self.lowered.conds.get(sid)
            if fn is None:
                rec = False
            else:
                decision = self.sim.compiled.cf_decisions.get(sid)
                if decision is not None and decision.privatized:
                    dep = tuple(
                        self.sim.proc.stmt_of_ref(ref)
                        for ref in decision.dependent_refs
                    )
                else:
                    dep = None
                rec = (fn, self._dt[sid], dep)
            self._cond_recs[sid] = rec
        if rec is False:
            return self.sim.exec_condition(stmt, env)
        fn, dt, dep = rec
        sim = self.sim
        if dep is None:
            ranks = self.etables.all_ranks
        else:
            acc: set[int] = set()
            for dep_stmt in dep:
                acc.update(self.etables.ranks(dep_stmt, env))
            ranks = sorted(acc)
        if not ranks:
            # nobody depends on the outcome; evaluate for control flow
            # only (free)
            return fn(sim.authoritative, env)
        readers = self.readers
        time = sim.clocks.time
        compute_time = sim.clocks.compute_time
        results = set()
        for rank in ranks:
            reader = readers[rank]
            reader.stmt = stmt
            results.add(fn(reader, env))
            time[rank] += dt
            compute_time[rank] += dt
        if len(results) != 1:
            raise SimulationError(
                f"S{sid}: predicate disagrees across processors"
            )
        return results.pop()

    def eval_bound(self, expr, env) -> int:
        fn = self.lowered.bounds.get(id(expr))
        if fn is None:
            return int(eval_expr(expr, self.sim.authoritative, env))
        return fn(self.sim.authoritative, env)


class FastHooks(ExecutionHooks):
    """Walker hooks driving the fast path; loop bookkeeping (active
    vars, reduction snapshots/combines) stays with the simulator."""

    def __init__(self, fast: FastPath):
        self.fast = fast
        self.sim = fast.sim

    def assign(self, stmt, env) -> None:
        self.fast.exec_assign(stmt, env)

    def eval_condition(self, stmt, env) -> bool:
        return self.fast.exec_condition(stmt, env)

    def eval_bound(self, expr, env) -> int:
        return self.fast.eval_bound(expr, env)

    def loop_enter(self, stmt, env) -> None:
        self.sim.on_loop_enter(stmt, env)

    def loop_exit(self, stmt, env) -> None:
        self.sim.on_loop_exit(stmt, env)

    def run_loop(self, stmt, low, high, step, env) -> bool:
        sim = self.sim
        if not sim.slab_path or sim.trace.enabled:
            return False
        slab = self.fast.slab
        if slab is None:
            from .slabexec import SlabExecutor

            slab = self.fast.slab = SlabExecutor(self.fast)
        return slab.run_loop(stmt, low, high, step, env)
