"""Per-processor memory of the simulated distributed-memory machine.

Each virtual processor holds a full-global-shape copy of every array
plus a validity mask: an element is *valid* on a rank when the rank
owns it (per the effective mapping) or has received it. Reads of
invalid elements trigger modeled communication in the simulator; writes
are only legal on executing ranks. This "distributed memory with
explicit validity" discipline is what lets the simulator detect
mapping/partitioning bugs: an element nobody valid-holds is a compile
error surfaced at run time.

(Full-shape allocation is a simulation convenience — the *semantics*
are those of distributed sections. Test problem sizes are small; large
sizes go through the analytic estimator instead.)
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..ir.program import Procedure
from ..ir.symbols import ScalarType, Symbol
from ..mapping.descriptors import ArrayMapping, GridDimRole


def _dtype_of(symbol: Symbol):
    if symbol.type is ScalarType.INT:
        return np.int64
    if symbol.type is ScalarType.LOGICAL:
        return np.bool_
    return np.float64


class _LazyStore(dict):
    """Array/validity dict that materializes storage on first access.

    ``memory[name]`` via ``__getitem__`` allocates (both the data array
    and its validity mask, together); ``in`` tests, ``.get`` and
    iteration never allocate, so untouched arrays on non-executor ranks
    cost nothing."""

    def __init__(self, memory: "NodeMemory"):
        super().__init__()
        self._memory = memory

    def __missing__(self, name: str) -> np.ndarray:
        self._memory._materialize(name)
        return dict.__getitem__(self, name)


class NodeMemory:
    """Memory of one virtual processor."""

    def __init__(self, rank: int, proc: Procedure):
        self.rank = rank
        self.arrays: dict[str, np.ndarray] = _LazyStore(self)
        self.valid: dict[str, np.ndarray] = _LazyStore(self)
        self.scalars: dict[str, float | int | bool] = {}
        self.scalar_valid: dict[str, bool] = {}
        self._lows: dict[str, tuple[int, ...]] = {}
        self._shapes: dict[str, tuple[int, ...]] = {}
        self._dtypes: dict[str, type] = {}
        #: initial contents deferred until first touch:
        #: name -> (values-or-None, mapping-or-None)
        self._pending: dict[str, tuple[np.ndarray | None, ArrayMapping | None]] = {}
        #: per-array mutation counters, bumped on any store/invalidate;
        #: the fast path's staged block transfers use them to know when
        #: a snapshot of a source slab is still current
        self.versions: dict[str, int] = {}
        for symbol in proc.symbols.arrays():
            shape = tuple(symbol.extent(d) for d in range(symbol.rank))
            self._shapes[symbol.name] = shape
            self._dtypes[symbol.name] = _dtype_of(symbol)
            self._lows[symbol.name] = tuple(lo for lo, _ in symbol.dims)
            self.versions[symbol.name] = 0

    def array_shape(self, name: str) -> tuple[int, ...]:
        return self._shapes[name]

    def array_dtype(self, name: str):
        return self._dtypes[name]

    def _materialize(self, name: str) -> None:
        shape = self._shapes[name]
        data = np.zeros(shape, dtype=self._dtypes[name])
        mask = np.zeros(shape, dtype=np.bool_)
        values, mapping = self._pending.pop(name, (None, None))
        if values is not None:
            data[...] = values
        if mapping is not None:
            mask[...] = ownership_mask(mapping, self.rank)
        dict.__setitem__(self.arrays, name, data)
        dict.__setitem__(self.valid, name, mask)

    def init_pending(
        self,
        name: str,
        values: np.ndarray | None,
        mapping: ArrayMapping | None,
    ) -> None:
        """Record initial contents + ownership validity without
        allocating; writes through if storage already exists."""
        if values is not None and values.shape != self._shapes[name]:
            raise SimulationError(
                f"shape mismatch initializing {name}: "
                f"{values.shape} vs {self._shapes[name]}"
            )
        if name in self.arrays:  # already materialized: write through
            if values is not None:
                self.arrays[name][...] = values
            if mapping is not None:
                self.valid[name][...] = ownership_mask(mapping, self.rank)
        else:
            old_values, old_mapping = self._pending.get(name, (None, None))
            self._pending[name] = (
                values if values is not None else old_values,
                mapping if mapping is not None else old_mapping,
            )
        self.versions[name] += 1

    # -- index helpers -----------------------------------------------------

    def offset(self, name: str, index: tuple[int, ...]) -> tuple[int, ...]:
        lows = self._lows[name]
        return tuple(idx - lo for idx, lo in zip(index, lows))

    # -- arrays ----------------------------------------------------------------

    def array_value(self, name: str, index: tuple[int, ...]):
        return self.arrays[name][self.offset(name, index)].item()

    def array_is_valid(self, name: str, index: tuple[int, ...]) -> bool:
        return bool(self.valid[name][self.offset(name, index)])

    def array_store(self, name: str, index: tuple[int, ...], value) -> None:
        off = self.offset(name, index)
        self.arrays[name][off] = value
        self.valid[name][off] = True
        self.versions[name] += 1

    def array_invalidate(self, name: str, index: tuple[int, ...]) -> None:
        self.valid[name][self.offset(name, index)] = False
        self.versions[name] += 1

    # -- scalars ------------------------------------------------------------------

    def scalar_value(self, name: str):
        if not self.scalar_valid.get(name, False):
            raise SimulationError(
                f"rank {self.rank}: read of invalid scalar {name}"
            )
        return self.scalars[name]

    def scalar_is_valid(self, name: str) -> bool:
        return self.scalar_valid.get(name, False)

    def scalar_store(self, name: str, value) -> None:
        self.scalars[name] = value
        self.scalar_valid[name] = True

    def scalar_invalidate(self, name: str) -> None:
        self.scalar_valid[name] = False


def _owner_vector(role: GridDimRole, low: int, count: int) -> np.ndarray:
    """Owning grid coordinate of every global index along one
    distributed dimension (vectorized ``fmt.owner(template_pos(i))``)."""
    idx = np.arange(low, low + count, dtype=np.int64)
    pos = role.stride * idx + role.norm_offset
    fmt = role.fmt
    bad = (pos < 0) | (pos >= fmt.extent)
    if bad.any():
        # raise the canonical MappingError at the first bad position
        fmt.owner(int(pos[int(np.argmax(bad))]))
    if fmt.kind == "block":
        return pos // fmt.block_size
    return (pos // fmt.chunk) % fmt.procs


def ownership_mask(mapping: ArrayMapping, rank: int) -> np.ndarray:
    """Boolean mask over the full global shape of the elements ``rank``
    owns — the vectorized form of ``mapping.owned_global_indices``."""
    symbol = mapping.array
    coords = mapping.grid.coords_of(rank)
    vecs: list[np.ndarray] = []
    for dim in range(symbol.rank):
        low, high = symbol.dims[dim]
        count = high - low + 1
        g = mapping.grid_dim_of_array_dim(dim)
        if g is None:
            vecs.append(np.ones(count, dtype=np.bool_))
        else:
            vecs.append(_owner_vector(mapping.roles[g], low, count) == coords[g])
    mask = vecs[0]
    for vec in vecs[1:]:
        mask = np.logical_and.outer(mask, vec)
    return mask


def initialize_array(
    memories: list[NodeMemory],
    mapping: ArrayMapping,
    values: np.ndarray,
) -> None:
    """Distribute initial array contents: every rank receives the data,
    but validity follows ownership (owners valid; replicated/privatized
    dims valid everywhere).  Storage stays pending until first touch."""
    name = mapping.array.name
    for memory in memories:
        if memory.array_shape(name) != values.shape:
            raise SimulationError(
                f"shape mismatch initializing {name}: "
                f"{values.shape} vs {memory.array_shape(name)}"
            )
    for memory in memories:
        memory.init_pending(name, values, mapping)
