"""Tier 3: slab-vectorized loop execution.

The lowered closures of :mod:`repro.machine.lowering` (tier 2) still
execute one iteration x one rank x one element at a time.  This module
batches whole loop nests into per-rank numpy kernels — the "generalized
data-parallel operation" view of the paper's privatized loops: each
rank evaluates its owned iteration slab as sliced array expressions and
the virtual clocks are charged in closed form from per-statement charge
tapes.

Eligibility (the fallback ladder's top rung) is decided in two stages:

* a **static classification** (:func:`classify_procedure`, run as the
  ``slabexec`` compiler pass) checks the shape of each loop nest —
  assign-only bodies, affine subscripts, executor sets constant in the
  inner loop variable, communication placed at or above the loop per
  the communication analysis, and no loop-carried dependence at the
  loop per :mod:`repro.analysis.dependence`;
* a **runtime plan** rechecks everything that depends on live state
  (validity of read operands, executor rank sets, divisors, subscript
  bounds) and *bails* — executing nothing and mutating nothing — the
  moment any assumption fails.  A bailed takeover falls back to the
  tier-2 lowered closures, which reproduce the per-iteration semantics
  (including any error and its exact partial state) bit for bit.

Bit-for-bit clock identity is guaranteed by construction: per-instance
compute charges are precomputed ``dt`` values replayed through
``np.add.accumulate`` (strictly sequential, unlike pairwise
``np.sum``), so a slab charges exactly the floating-point sum the
per-iteration path would have produced.  Takeovers that would need a
fetch bail — remote reads keep their exact per-element charging in the
lower tiers — so ``TrafficStats`` is untouched by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..comm.analysis import hoisted_loop_vars
from ..errors import InterpreterError, MappingError, SimulationError
from ..ir.expr import (
    ArrayElemRef,
    BinOp,
    Const,
    IntrinsicCall,
    ScalarRef,
    UnOp,
    affine_form,
)
from ..ir.stmt import AssignStmt, ContinueStmt, IfStmt, LoopStmt
from ..ir.symbols import ScalarType
from .stats import sequential_prefix_sum, sequential_sum

_MISSING = object()


class _Bail(Exception):
    """This takeover declines; nothing has been mutated."""


#: what a bound expression can legitimately raise at evaluation time
#: (mirrors lowering's ``_FOLD_ERRORS``): the interpreter's canonical
#: errors plus numeric-domain failures.  Genuine programming errors —
#: NameError, TypeError, AttributeError — must propagate, not bail.
_BOUND_ERRORS = (InterpreterError, ArithmeticError, ValueError, OverflowError)


# ---------------------------------------------------------------------------
# P-parametric charging forms
# ---------------------------------------------------------------------------
#
# The quantities a slab charges — per-rank slab widths, trip counts,
# collective spans — are small closed-form functions of the processor
# count P, not intrinsically pre-evaluated ints.  The helpers below keep
# them that way: each accepts P as a plain int (the ordinary simulation
# path, returning ints bit-identical to the previous inline arithmetic)
# *or* as an int vector (the procs-lane sweep path, returning the
# per-lane values elementwise).  The runtime plans route their width and
# trip arithmetic through these forms, and :class:`PColumnCharge`
# packages a column nest's whole charge structure so one procs vector is
# priced in a single prefix fold (``charge_column_lanes``).  Nests whose
# structure is not expressible this way (cyclic formats, value-dependent
# executor positions) simply carry no charge model — they re-enter the
# ordinary fallback ladder and are charged from the concrete owner
# tables, exactly as before.


def _ceil_div(a, b):
    """Ceiling division, elementwise on arrays, exact on ints."""
    return -(-a // b)


def slab_trip_count(low, high, step):
    """Trip count of ``DO v = low, high, step`` (0 when empty).

    Closed form ``max(0, (high - low + step) // step)``; ``low``/
    ``high`` may be per-column vectors (triangular nests) and any
    argument may carry a procs-lane axis."""
    n = (high - low + step) // step
    if np.ndim(n) == 0:
        return max(int(n), 0)
    return np.maximum(n, 0)


def slab_block_size(extent, procs):
    """BLOCK slab width ``ceil(extent / P)`` as a function of P."""
    return _ceil_div(extent, procs)


def slab_local_count(extent, procs, coord):
    """Elements of a BLOCK-distributed extent owned by ``coord``:
    ``clamp(extent - coord*ceil(extent/P), 0, ceil(extent/P))``."""
    bs = slab_block_size(extent, procs)
    count = np.maximum(np.minimum(bs, extent - coord * bs), 0)
    return int(count) if np.ndim(count) == 0 else count


def slab_rank_span(extent, procs):
    """Grid coordinates owning at least one element (the collective
    span of a section-wide transfer): ``min(P, ceil(extent / B(P)))``."""
    span = np.minimum(_ceil_div(extent, slab_block_size(extent, procs)), procs)
    return int(span) if np.ndim(span) == 0 else span


def slab_owned_trips(extent, procs, coord, first, stride, trips):
    """How many terms of the position progression ``first, first +
    stride, ...`` (``trips`` terms) fall in BLOCK ``coord``'s section —
    the per-rank column count as a closed form in P.

    Derivation: the section is ``[coord*B, min((coord+1)*B, extent))``
    with ``B = ceil(extent/P)``; intersecting a half-open index range
    with an arithmetic progression is two ceiling divisions."""
    bs = slab_block_size(extent, procs)
    lo = coord * bs
    hi = np.minimum(lo + bs, extent)
    if stride == 0:
        inside = (first >= lo) & (first < hi)
        count = trips * inside
        return int(count) if np.ndim(count) == 0 else count.astype(np.int64)
    if stride > 0:
        k0 = _ceil_div(lo - first, stride)
        k1 = _ceil_div(hi - first, stride)
    else:
        k0 = _ceil_div(first - hi + 1, -stride)
        k1 = (first - lo) // (-stride) + 1
    count = np.maximum(np.clip(k1, 0, trips) - np.clip(k0, 0, trips), 0)
    return int(count) if np.ndim(count) == 0 else count


@dataclass(frozen=True)
class PColumnCharge:
    """The charge structure of one column-style slab nest, parametric
    in P.

    A :class:`ColumnPlan` takeover charges rank ``r`` the per-column
    tape repeated once per owned column; the owned-column count is
    :func:`slab_owned_trips` — a closed form in P — whenever the
    executor position is BLOCK-distributed and affine in the column
    index.  ``unit_len`` is the tape length per column
    (``len(pre) + nsteps*len(body) + len(post)``, P-independent since
    inner bounds are takeover-invariant)."""

    extent: int  #: distributed extent of the executor position dim
    first: int  #: position of the first column
    stride: int  #: position stride between consecutive columns
    trips: int  #: number of columns (outer trip count)
    unit_len: int  #: charge-tape entries per column

    def columns(self, procs, coord):
        """Columns rank ``coord`` owns — elementwise in ``procs``."""
        return slab_owned_trips(
            self.extent, procs, coord, self.first, self.stride, self.trips
        )

    def rank_steps(self, procs, coord):
        """Charge-tape entries rank ``coord`` folds, as a function of P."""
        return self.columns(procs, coord) * self.unit_len

    def span(self, procs):
        """Ranks charged at all (owners of >= 1 column)."""
        if np.ndim(procs) == 0:
            return sum(
                1 for r in range(int(procs)) if self.columns(procs, r) > 0
            )
        return np.asarray([self.span(int(p)) for p in procs], dtype=np.int64)


def charge_column_lanes(clocks, charge: PColumnCharge, unit) -> None:
    """Charge one column nest for a whole procs vector in one pass.

    ``clocks`` are procs-lane clocks
    (:class:`~repro.machine.batchexec.ProcsVectorClocks`), ``unit`` the
    per-column dt tape (``(k,)`` shared across lanes or ``(k, lanes)``
    per-lane).  Rank ``r`` in lane ``m`` folds exactly
    ``charge.columns(P_m, r) * k`` entries of one shared tape padded to
    the widest lane — the prefix-fold trick: zero rows past a lane's
    own steps never enter its prefix, so every lane reproduces its
    dedicated scalar fold bitwise."""
    lanes = clocks.lanes
    unit = np.asarray(unit, dtype=np.float64)
    if unit.ndim == 1:
        unit = np.broadcast_to(unit[:, None], (unit.shape[0], lanes))
    k = unit.shape[0]
    if k == 0:
        return
    for r in range(len(clocks.time)):
        cols = np.asarray(charge.columns(clocks.procs, r), dtype=np.int64)
        max_cols = int(cols.max())
        if max_cols == 0:
            continue
        tape = np.tile(unit, (max_cols, 1))
        steps = cols * k
        clocks.time[r] = sequential_prefix_sum(clocks.time[r], tape, steps)
        clocks.compute_time[r] = sequential_prefix_sum(
            clocks.compute_time[r], tape, steps
        )


def _canon_form(form) -> tuple:
    """Hashable normal form of an affine subscript, comparable across
    refs: (const, sorted (symbol name, coeff) pairs)."""
    return (
        form.const,
        tuple(sorted((s.name, c) for s, c in form.coeffs if c != 0)),
    )


def _form_symbols(form):
    return [s for s, c in form.coeffs if c != 0]


# ---------------------------------------------------------------------------
# Vectorized expression evaluation
# ---------------------------------------------------------------------------
#
# Values are numpy arrays (one lane per iteration) or python/numpy
# scalars; ``is_int`` tracks Fortran INTEGER-ness so division picks the
# toward-zero semantics exactly like the interpreter's dynamic types.


def _vec_idiv(left, right):
    la = np.asarray(left, dtype=np.int64)
    ra = np.asarray(right, dtype=np.int64)
    if np.any(ra == 0):
        raise _Bail("integer division by zero")
    q = np.floor_divide(la, ra)
    q = q + ((q < 0) & (q * ra != la))
    return q


def _as_bool(value):
    return np.asarray(value) != 0


class _Ctx:
    """Evaluation context: resolves loop variables, scalars and array
    reads for one lane set.  Subclassed by the plans."""

    def loop_vec(self, name: str):
        raise NotImplementedError

    @property
    def env(self):
        raise NotImplementedError

    def read_scalar(self, ref: ScalarRef):
        raise NotImplementedError

    def read_array(self, ref: ArrayElemRef):
        raise NotImplementedError


def _eval(expr, ctx: _Ctx):
    """Vectorized twin of ``eval_expr``: returns (value, is_int).
    Anything outside the bit-for-bit-safe whitelist raises _Bail."""
    if isinstance(expr, Const):
        v = expr.value
        # bool is an int subclass, exactly as the interpreted dynamic
        # typing sees it
        return v, isinstance(v, int)
    if isinstance(expr, ScalarRef):
        sym = expr.symbol
        if sym.value is not None:
            v = sym.value
            return v, isinstance(v, int)
        if sym.is_loop_var:
            lv = ctx.loop_vec(sym.name)
            if lv is not None:
                return lv, True
            if sym.name in ctx.env:
                return ctx.env[sym.name], True
        return ctx.read_scalar(expr)
    if isinstance(expr, ArrayElemRef):
        return ctx.read_array(expr)
    if isinstance(expr, UnOp):
        v, vi = _eval(expr.operand, ctx)
        if expr.op == "-":
            return -v, vi
        if expr.op == ".NOT.":
            if isinstance(v, np.ndarray):
                return ~_as_bool(v), False
            return not v, False
        raise _Bail(f"unary op {expr.op}")
    if isinstance(expr, BinOp):
        le, li = _eval(expr.left, ctx)
        re, ri = _eval(expr.right, ctx)
        op = expr.op
        if op == "+":
            return le + re, li and ri
        if op == "-":
            return le - re, li and ri
        if op == "*":
            return le * re, li and ri
        if op == "/":
            if li and ri:
                return _vec_idiv(le, re), True
            if np.any(np.asarray(re) == 0):
                raise _Bail("division by zero")
            return le / re, False
        if op == "==":
            return le == re, False
        if op == "/=":
            return le != re, False
        if op == "<":
            return le < re, False
        if op == "<=":
            return le <= re, False
        if op == ">":
            return le > re, False
        if op == ">=":
            return le >= re, False
        # .AND./.OR. evaluate both operands (so do both lower tiers)
        if op == ".AND.":
            return _as_bool(le) & _as_bool(re), False
        if op == ".OR.":
            return _as_bool(le) | _as_bool(re), False
        raise _Bail(f"binary op {op}")
    if isinstance(expr, IntrinsicCall):
        return _eval_intrinsic(expr, ctx)
    raise _Bail(f"expression {type(expr).__name__}")


def _eval_intrinsic(expr, ctx):
    name = expr.name
    evaluated = [_eval(a, ctx) for a in expr.args]
    vals = [v for v, _ in evaluated]
    ints = [i for _, i in evaluated]
    if name == "ABS":
        v = vals[0]
        return (np.abs(v) if isinstance(v, np.ndarray) else abs(v)), ints[0]
    if name in ("MAX", "MIN"):
        fn = np.maximum if name == "MAX" else np.minimum
        acc = vals[0]
        for v in vals[1:]:
            acc = fn(acc, v)
        return acc, all(ints)
    if name == "SQRT":
        v = np.asarray(vals[0], dtype=np.float64)
        if np.any(v < 0):
            raise _Bail("SQRT of negative value")
        out = np.sqrt(v)
        return (out if isinstance(vals[0], np.ndarray) else float(out)), False
    if name == "MOD":
        if np.any(np.asarray(vals[1]) == 0):
            raise _Bail("MOD by zero")
        return vals[0] % vals[1], all(ints)
    if name == "SIGN":
        return np.copysign(vals[0], vals[1]), False
    if name in ("REAL", "FLOAT", "DBLE"):
        v = vals[0]
        if isinstance(v, np.ndarray):
            return v.astype(np.float64), False
        return float(v), False
    # EXP/LOG/SIN/COS: numpy's SIMD paths are not guaranteed to match
    # libm bit for bit; INT truncation and ** likewise stay scalar.
    raise _Bail(f"intrinsic {name}")


def _coerce_vec(value, is_int, stype: ScalarType, n: int) -> np.ndarray:
    """``coerce_store`` over a whole lane vector, broadcast to n."""
    if stype is ScalarType.INT:
        if not is_int:
            raise _Bail("REAL value stored to INTEGER")
        out = np.empty(n, dtype=np.int64)
        out[...] = value
        return out
    if stype is ScalarType.LOGICAL:
        out = np.empty(n, dtype=np.bool_)
        out[...] = _as_bool(value)
        return out
    out = np.empty(n, dtype=np.float64)
    out[...] = value
    return out

# ---------------------------------------------------------------------------
# Static classification (the ``slabexec`` compiler pass)
# ---------------------------------------------------------------------------


@dataclass
class SlabReport:
    """Pass product: per-loop slab eligibility.

    ``inner`` maps innermost-loop statement ids to ``"ok"`` or the first
    failing reason; ``column`` does the same for outer loops wrapping a
    single ineligible inner loop (executed column-wise); ``triangular``
    covers outer loops wrapping exactly one inner loop whose bounds may
    vary with the outer index (imperfect nests with prologue/epilogue
    assigns included).  Plain ids and strings only, so the product
    pickles with the compiled program and is rebuilt (like the
    lowering) when ``ir_epoch`` is stale.
    """

    ir_epoch: int
    inner: dict[int, str] = field(default_factory=dict)
    column: dict[int, str] = field(default_factory=dict)
    triangular: dict[int, str] = field(default_factory=dict)

    def eligible_loops(self) -> set[int]:
        """Statement ids of every loop with at least one "ok" verdict."""
        out: set[int] = set()
        tri = getattr(self, "triangular", {})  # pre-field pickles
        for table in (self.inner, self.column, tri):
            out.update(sid for sid, v in table.items() if v == "ok")
        return out

    def summary(self) -> dict[str, int]:
        tri = getattr(self, "triangular", {})  # pre-field pickles
        return {
            "inner_ok": sum(1 for v in self.inner.values() if v == "ok"),
            "inner_total": len(self.inner),
            "column_ok": sum(1 for v in self.column.values() if v == "ok"),
            "column_total": len(self.column),
            "triangular_ok": sum(1 for v in tri.values() if v == "ok"),
            "triangular_total": len(tri),
        }


def _placement_map(events) -> dict[int, list[int]]:
    """stmt_id -> placement levels of every comm event charged to it
    (including refs absorbed by message combining)."""
    placements: dict[int, list[int]] = {}
    for e in events:
        refs = [(e.stmt, e)] + [
            (a.stmt, e) for a in list(e.aliases) + list(e.combined_with)
        ]
        for stmt, ev in refs:
            placements.setdefault(stmt.stmt_id, []).append(ev.placement_level)
    return placements


def _stmt_array_refs(stmt: AssignStmt):
    """Every ArrayElemRef in the statement (lhs target + rhs reads,
    including refs nested in subscripts)."""
    out = []
    if isinstance(stmt.lhs, ArrayElemRef):
        out.append(stmt.lhs)
        for sub in stmt.lhs.subscripts:
            out.extend(r for r in sub.refs() if isinstance(r, ArrayElemRef))
    out.extend(r for r in stmt.rhs.refs() if isinstance(r, ArrayElemRef))
    return out


def _check_affine_refs(stmt: AssignStmt) -> str | None:
    for ref in _stmt_array_refs(stmt):
        for sub in ref.subscripts:
            if affine_form(sub) is None:
                return f"non-affine subscript in {ref.symbol.name}"
    return None


def _check_executor(info, v: str | None) -> str | None:
    """Executor must be an owner/all set whose position does not vary
    with the vectorized loop variable ``v`` (None: any loop var)."""
    if info is None:
        return "no executor info"
    if info.kind not in ("owner", "all"):
        return f"executor kind {info.kind}"
    if info.kind == "owner":
        for dim in info.position:
            if dim.kind == "pos" and dim.form is not None:
                for sym in dim.form.symbols:
                    if v is not None and sym.name == v and sym.value is None:
                        return f"executor position varies with {v}"
    return None


def _carried_dependence(proc, loop: LoopStmt, assigns,
                        reduction_ids=frozenset()) -> str | None:
    """Reject any possible cross-iteration flow of values through an
    array at ``loop``'s level (per :mod:`repro.analysis.dependence`).

    A write/read pair sharing *some* dimension whose subscript form is
    identical, has a nonzero coefficient on the loop variable, and is
    otherwise invariant over the loop (no in-body-written scalars)
    touches the same element only in the same iteration — that
    dimension witnesses distance 0 and the pair is allowed; anything
    else that ``may_depend_within_loop`` cannot disprove is treated as
    loop-carried.  A recognized reduction update's own accumulator
    recurrence (write and read in the same update statement) is the
    fold being vectorized, not a rejection."""
    from ..analysis.dependence import may_depend_within_loop

    v = loop.var.name
    written_scalars = {
        s.lhs.symbol.name for s in assigns if isinstance(s.lhs, ScalarRef)
    }

    def zero_distance_witness(wf, of) -> bool:
        for a, b in zip(wf, of):
            if _canon_form(a) != _canon_form(b):
                continue
            if not any(
                c != 0 and sym.name == v and sym.value is None
                for sym, c in a.coeffs
            ):
                continue
            if any(
                sym.value is None and sym.name != v
                and sym.name in written_scalars
                for sym, _c in a.coeffs
            ):
                continue  # the form itself mutates mid-loop
            return True
        return False

    writes = []
    refs = []
    for s in assigns:
        if isinstance(s.lhs, ArrayElemRef):
            writes.append((s, s.lhs))
        for r in _stmt_array_refs(s):
            refs.append((s, r))
    for ws, w in writes:
        w_forms = [affine_form(sub) for sub in w.subscripts]
        if any(f is None for f in w_forms):
            return f"non-affine subscript in {w.symbol.name}"
        for os, o in refs:
            if o is w or o.symbol.name != w.symbol.name:
                continue
            if os is ws and ws.stmt_id in reduction_ids:
                continue  # the accumulator recurrence of a fold
            o_forms = [affine_form(sub) for sub in o.subscripts]
            if any(f is None for f in o_forms):
                return f"non-affine subscript in {o.symbol.name}"
            if len(o_forms) == len(w_forms) and zero_distance_witness(
                w_forms, o_forms
            ):
                continue  # distance 0 only
            if may_depend_within_loop(proc, w, o, loop):
                return f"loop-carried dependence on {w.symbol.name}"
    return None


def _classify_inner(proc, loop: LoopStmt, executors, placements,
                    reduction_ids) -> str:
    v = loop.var.name
    assigns = []
    for s in loop.body:
        if isinstance(s, ContinueStmt):
            continue
        if not isinstance(s, AssignStmt):
            return f"body contains {type(s).__name__}"
        assigns.append(s)
    if not assigns:
        return "empty body"
    for s in assigns:
        reason = _check_executor(executors.get(s.stmt_id), v)
        if reason is not None:
            return f"S{s.stmt_id}: {reason}"
        reason = _check_affine_refs(s)
        if reason is not None:
            return f"S{s.stmt_id}: {reason}"
        for level in placements.get(s.stmt_id, ()):
            if level >= loop.level:
                return f"S{s.stmt_id}: communication placed inside the loop"
    return _carried_dependence(proc, loop, assigns, reduction_ids) or "ok"


def _classify_column(proc, loop: LoopStmt, executors, placements,
                     reduction_ids, grid_rank) -> str:
    """An outer loop executed column-wise: its body is straight-line
    assigns around exactly one inner loop; every statement runs on the
    owner of the same position (a function of the outer variable only),
    and every array touches exactly its outer-variable column — so the
    columns evolve independently and one rank-sliced numpy pass per
    statement reproduces the sequential per-column semantics."""
    if grid_rank is not None and grid_rank != 1:
        return "grid is not one-dimensional"
    j = loop.var.name
    inner: LoopStmt | None = None
    assigns = []
    for s in loop.body:
        if isinstance(s, ContinueStmt):
            continue
        if isinstance(s, LoopStmt):
            if inner is not None:
                return "more than one inner loop"
            inner = s
            continue
        if not isinstance(s, AssignStmt):
            return f"body contains {type(s).__name__}"
        assigns.append(s)
    if inner is None:
        return "no inner loop"
    i = inner.var.name
    inner_assigns = []
    for s in inner.body:
        if isinstance(s, ContinueStmt):
            continue
        if not isinstance(s, AssignStmt):
            return f"inner body contains {type(s).__name__}"
        inner_assigns.append(s)
    all_assigns = assigns + inner_assigns
    if not all_assigns:
        return "empty body"
    # inner bounds must be invariant over the takeover
    for bound in (inner.low, inner.high, inner.step):
        if bound is None:
            continue
        for ref in bound.refs():
            if isinstance(ref, ScalarRef) and ref.symbol.name in (j, i):
                return "inner bounds vary with the loop variables"
    canon_pos = _MISSING
    for s in all_assigns:
        if s.stmt_id in reduction_ids:
            return f"S{s.stmt_id}: reduction update in body"
        info = executors.get(s.stmt_id)
        reason = _check_executor(info, None)
        if reason is not None:
            return f"S{s.stmt_id}: {reason}"
        if info.kind != "owner":
            return f"S{s.stmt_id}: executor kind {info.kind}"
        pos = tuple(
            _canon_form(dim.form)
            if dim.kind == "pos" and dim.form is not None
            else dim.kind
            for dim in info.position
        )
        if canon_pos is _MISSING:
            canon_pos = pos
        elif pos != canon_pos:
            return "executor position differs across statements"
        reason = _check_affine_refs(s)
        if reason is not None:
            return f"S{s.stmt_id}: {reason}"
        for level in placements.get(s.stmt_id, ()):
            if level >= loop.level:
                return f"S{s.stmt_id}: communication placed inside the loop"
    # every array must touch exactly its own column: one dimension
    # subscripted exactly ``j`` in every ref, the others ``j``-free
    jdims: dict[str, int] = {}
    for s in all_assigns:
        for ref in _stmt_array_refs(s):
            name = ref.symbol.name
            ref_jdims = []
            for d, sub in enumerate(ref.subscripts):
                form = affine_form(sub)
                canon = _canon_form(form)
                if canon == (0, ((j, 1),)):
                    ref_jdims.append(d)
                elif any(nm == j for nm, _ in canon[1]):
                    return f"{name}: mixed {j}-subscript"
            if len(ref_jdims) != 1:
                return f"{name}: no unique {j}-column dimension"
            d = ref_jdims[0]
            if jdims.setdefault(name, d) != d:
                return f"{name}: inconsistent {j}-column dimension"
            if len(ref.subscripts) != 2:
                return f"{name}: only rank-2 arrays supported"
    return "ok"


def _replicated_exec(info) -> bool:
    """True when the statement executes on every rank, invariantly:
    replicated ("all") or privatized/no-guard ("union") executors whose
    position constrains no grid dimension."""
    return (
        info is not None
        and info.kind in ("all", "union")
        and all(
            dim.kind != "pos" or dim.form is None for dim in info.position
        )
    )


def _classify_triangular(proc, loop: LoopStmt, executors, placements,
                         reduction_ids, grid_rank) -> str:
    """An outer loop executed as one flattened slab: straight-line
    assigns around exactly one inner loop whose bounds may be affine in
    the outer variable (triangular nests) — per-column slab widths vary
    with the outer index.  Every statement runs on the owner of the
    same outer-variable position, every array touches exactly its own
    column, and arrays are written only inside the inner loop, so the
    columns evolve independently and the whole imperfect nest commits
    as one takeover."""
    if grid_rank is not None and grid_rank != 1:
        return "grid is not one-dimensional"
    j = loop.var.name
    inner: LoopStmt | None = None
    pre: list[AssignStmt] = []
    post: list[AssignStmt] = []
    for s in loop.body:
        if isinstance(s, ContinueStmt):
            continue
        if isinstance(s, LoopStmt):
            if inner is not None:
                return "more than one inner loop"
            inner = s
            continue
        if not isinstance(s, AssignStmt):
            return f"body contains {type(s).__name__}"
        (pre if inner is None else post).append(s)
    if inner is None:
        return "no inner loop"
    i = inner.var.name
    body: list[AssignStmt] = []
    for s in inner.body:
        if isinstance(s, ContinueStmt):
            continue
        if not isinstance(s, AssignStmt):
            return f"inner body contains {type(s).__name__}"
        body.append(s)
    all_assigns = pre + body + post
    if not body:
        return "empty inner body"
    # inner bounds may vary with the outer variable (that is the point)
    # but not with the inner variable; the step must be invariant
    for bound, tag in ((inner.low, "low"), (inner.high, "high")):
        form = affine_form(bound) if bound is not None else None
        if form is None:
            return f"inner {tag} bound not affine"
        for sym, _c in form.coeffs:
            if sym.value is None and sym.name == i:
                return "inner bounds vary with the inner variable"
    if inner.step is not None:
        form = affine_form(inner.step)
        if form is None:
            return "inner step not affine"
        for sym, _c in form.coeffs:
            if sym.value is None and sym.name in (i, j):
                return "inner step varies with the loop variables"
    canon_pos = _MISSING
    for s in all_assigns:
        if s.stmt_id in reduction_ids:
            return f"S{s.stmt_id}: reduction update in body"
        info = executors.get(s.stmt_id)
        if info is None:
            return f"S{s.stmt_id}: no executor info"
        if _replicated_exec(info):
            # every rank runs it each iteration: fine for scalar-only
            # statements with rank-invariant operands (checked at run
            # time); arrays would read per-rank state
            if isinstance(s.lhs, ArrayElemRef) or _stmt_array_refs(s):
                return f"S{s.stmt_id}: replicated statement touches arrays"
            for level in placements.get(s.stmt_id, ()):
                if level >= loop.level:
                    return (
                        f"S{s.stmt_id}: communication placed inside the loop"
                    )
            continue
        reason = _check_executor(info, None)
        if reason is not None:
            return f"S{s.stmt_id}: {reason}"
        if info.kind != "owner" or len(info.position) != 1:
            return f"S{s.stmt_id}: executor is not a 1-D owner position"
        dim = info.position[0]
        if dim.kind != "pos" or dim.form is None:
            return f"S{s.stmt_id}: executor position is not a point"
        pos = _canon_form(dim.form)
        if canon_pos is _MISSING:
            canon_pos = pos
        elif pos != canon_pos:
            return "executor position differs across statements"
        for sym, _c in dim.form.coeffs:
            if sym.value is None and sym.name == i:
                return "executor position varies with the inner variable"
        reason = _check_affine_refs(s)
        if reason is not None:
            return f"S{s.stmt_id}: {reason}"
        for level in placements.get(s.stmt_id, ()):
            if level >= loop.level:
                return f"S{s.stmt_id}: communication placed inside the loop"
    if canon_pos is _MISSING:
        return "no owner-positioned statement"
    # column discipline: one dimension subscripted exactly ``j`` in
    # every ref, the others ``j``-free; arrays written only in the
    # inner loop, and prologue/epilogue refs are ``i``-free
    inner_written = {
        s.lhs.symbol.name for s in body if isinstance(s.lhs, ArrayElemRef)
    }
    jdims: dict[str, int] = {}
    for s in all_assigns:
        in_body = s in body
        if not in_body and isinstance(s.lhs, ArrayElemRef):
            return "array written outside the inner loop"
        for ref in _stmt_array_refs(s):
            name = ref.symbol.name
            if not in_body and name in inner_written:
                return f"{name}: written array read outside the inner loop"
            ref_jdims = []
            for d, sub in enumerate(ref.subscripts):
                canon = _canon_form(affine_form(sub))
                if canon == (0, ((j, 1),)):
                    ref_jdims.append(d)
                elif any(nm == j for nm, _ in canon[1]):
                    return f"{name}: mixed {j}-subscript"
                elif not in_body and any(nm == i for nm, _ in canon[1]):
                    return f"{name}: {i}-subscript outside the inner loop"
            if len(ref_jdims) != 1:
                return f"{name}: no unique {j}-column dimension"
            d = ref_jdims[0]
            if jdims.setdefault(name, d) != d:
                return f"{name}: inconsistent {j}-column dimension"
    reason = _carried_dependence(proc, inner, body, reduction_ids)
    if reason is not None:
        return reason
    return "ok"


def classify_procedure(proc, executors, events, reduction_ids,
                       grid_rank=None) -> SlabReport:
    """Statically classify every loop nest for slab eligibility."""
    placements = _placement_map(events)
    report = SlabReport(ir_epoch=proc.ir_epoch)

    def visit(stmts):
        for s in stmts:
            if isinstance(s, LoopStmt):
                nested = [b for b in s.body if isinstance(b, LoopStmt)]
                if not nested:
                    report.inner[s.stmt_id] = _classify_inner(
                        proc, s, executors, placements, reduction_ids
                    )
                elif (
                    len(nested) == 1
                    and report.inner.get(nested[0].stmt_id) != "ok"
                ):
                    pass  # classified below, after visiting children
                visit(s.body)
            elif isinstance(s, IfStmt):
                visit(s.then_body)
                visit(s.else_body)

    visit(proc.body)

    def visit_columns(stmts):
        for s in stmts:
            if isinstance(s, LoopStmt):
                nested = [b for b in s.body if isinstance(b, LoopStmt)]
                if (
                    len(nested) == 1
                    and report.inner.get(nested[0].stmt_id, "") != "ok"
                ):
                    report.column[s.stmt_id] = _classify_column(
                        proc, s, executors, placements, reduction_ids,
                        grid_rank,
                    )
                if len(nested) == 1:
                    # classified even when the inner loop is itself
                    # eligible: the outer takeover preempts; a bail
                    # falls back to tier 2, which re-enters the inner
                    # loop's own takeover
                    report.triangular[s.stmt_id] = _classify_triangular(
                        proc, s, executors, placements, reduction_ids,
                        grid_rank,
                    )
                visit_columns(s.body)
            elif isinstance(s, IfStmt):
                visit_columns(s.then_body)
                visit_columns(s.else_body)

    visit_columns(proc.body)
    return report

# ---------------------------------------------------------------------------
# Runtime plans
# ---------------------------------------------------------------------------

_RED_UFUNC = {
    "+": np.add,
    "*": np.multiply,
    "MAX": np.maximum,
    "MIN": np.minimum,
}


def _reduction_operand(rhs, acc: str, op: str):
    """``acc = acc OP e`` / ``acc = MAX(acc, e)`` → ``e`` (both
    orderings; + and * are bitwise commutative in IEEE), or None."""

    def is_acc(e):
        return isinstance(e, ScalarRef) and e.symbol.name == acc

    e = None
    if op in ("+", "*") and isinstance(rhs, BinOp) and rhs.op == op:
        if is_acc(rhs.left):
            e = rhs.right
        elif is_acc(rhs.right):
            e = rhs.left
    elif (
        op in ("MAX", "MIN")
        and isinstance(rhs, IntrinsicCall)
        and rhs.name == op
        and len(rhs.args) == 2
    ):
        if is_acc(rhs.args[0]):
            e = rhs.args[1]
        elif is_acc(rhs.args[1]):
            e = rhs.args[0]
    if e is None:
        return None
    for ref in e.refs():
        if isinstance(ref, ScalarRef) and ref.symbol.name == acc:
            return None  # acc on both sides: not a fold
    return e


class _Step:
    """One body assignment, preprocessed."""

    __slots__ = ("stmt", "sid", "dt", "kind", "name", "stype", "rhs",
                 "red_op", "red_expr", "lhs_forms", "row_form",
                 "region_key", "repl")

    def __init__(self, stmt: AssignStmt, dt: float):
        self.stmt = stmt
        self.sid = stmt.stmt_id
        self.dt = dt
        self.name = stmt.lhs.symbol.name
        self.stype = stmt.lhs.symbol.type
        self.rhs = stmt.rhs
        self.red_op = None
        self.red_expr = None
        self.lhs_forms = None
        self.row_form = None
        self.region_key = None
        self.repl = False


def _check_form_resolvable(form, loop_vars: tuple[str, ...],
                           scalar_deps: set | None = None) -> None:
    """Subscript/position forms may reference only the vectorized loop
    vars, other (env-resolved) loop variables, and symbolic constants.
    A per-rank memory scalar is allowed only when the caller passes
    ``scalar_deps`` — its name is recorded and the *prepare* phase
    resolves one agreed value across the participants (bailing when the
    copies diverge or are invalid); without that set, it bails here."""
    for sym, _c in form.coeffs:
        if sym.value is not None:
            continue
        if sym.name in loop_vars:
            continue
        if sym.is_loop_var:
            continue  # resolved from env at run time (bail if absent)
        if scalar_deps is not None:
            scalar_deps.add(sym.name)
            continue
        raise _Bail(f"subscript depends on scalar {sym.name}")


def _afold_operand(rhs, name: str, canon: tuple, op: str):
    """``A(c) = A(c) OP e`` / ``A(c) = MAX(A(c), e)`` → ``e`` (both
    orderings), where the accumulator reference matches the store's
    canonical subscript form exactly; None otherwise.  ``e`` must not
    touch the accumulator array at all."""

    def is_acc(e):
        if not isinstance(e, ArrayElemRef) or e.symbol.name != name:
            return False
        forms = [affine_form(s) for s in e.subscripts]
        if any(f is None for f in forms):
            return False
        return tuple(_canon_form(f) for f in forms) == canon

    e = None
    if op in ("+", "*") and isinstance(rhs, BinOp) and rhs.op == op:
        if is_acc(rhs.left):
            e = rhs.right
        elif is_acc(rhs.right):
            e = rhs.left
    elif (
        op in ("MAX", "MIN")
        and isinstance(rhs, IntrinsicCall)
        and rhs.name == op
        and len(rhs.args) == 2
    ):
        if is_acc(rhs.args[0]):
            e = rhs.args[1]
        elif is_acc(rhs.args[1]):
            e = rhs.args[0]
    if e is None:
        return None
    for ref in e.refs():
        if isinstance(ref, ArrayElemRef) and ref.symbol.name == name:
            return None  # acc on both sides: not a fold
    return e


def _affine_vec(form, vec_vars: dict, env, symbol=None, dim=None):
    """Evaluate an affine form over the lanes: returns an int or an
    int64 vector.  ``vec_vars`` maps loop-var name -> lane vector."""
    total = form.const
    vec = None
    for sym, coeff in form.coeffs:
        if sym.value is not None:
            total += coeff * int(sym.value)
            continue
        lanes = vec_vars.get(sym.name)
        if lanes is not None:
            contrib = coeff * lanes
            vec = contrib if vec is None else vec + contrib
            continue
        if sym.name in env:
            total += coeff * int(env[sym.name])
            continue
        raise _Bail(f"unresolved subscript symbol {sym.name}")
    return total if vec is None else vec + total


def _bounds_checked_offset(idx, symbol, dim: int):
    lo, hi = symbol.dims[dim]
    if isinstance(idx, np.ndarray):
        if idx.size and (int(idx.min()) < lo or int(idx.max()) > hi):
            raise _Bail(f"subscript out of bounds for {symbol.name}")
    elif not lo <= idx <= hi:
        raise _Bail(f"subscript out of bounds for {symbol.name}")
    return idx - lo


class _InnerCtx(_Ctx):
    """Per-rank lane evaluation of one inner-loop takeover."""

    def __init__(self, plan: "InnerPlan", rank: int, iv: np.ndarray,
                 env, n: int, offs: dict):
        self.plan = plan
        self.memory = plan.sim.memories[rank]
        self.iv = iv
        self._env = env
        self.n = n
        self.offs = offs
        self.scalar_shadow: dict[str, np.ndarray] = {}
        self.scalar_killed: set[str] = set()
        #: write-region key -> shadow lane vector
        self.array_shadow: dict[tuple, np.ndarray] = {}
        self.array_killed: set[tuple] = set()
        self.red_results: dict[str, Any] = {}
        self.afold_results: dict[int, Any] = {}  # step index -> folded
        self.tape: list[float] = []
        #: step index -> position of its dt on the tape
        self.tape_pos: dict[int, int] = {}
        #: (array name, element) -> [tag, src, value, sid, rid, stmt];
        #: tag = (lane, step, read-seq) of the *first* read in
        #: per-iteration order — where the per-element fetch fires
        self.fetches: dict[tuple, list] = {}
        self.cur_k = 0
        self.cur_stmt = None
        self.q = 0

    def loop_vec(self, name: str):
        return self.iv if name == self.plan.v else None

    @property
    def env(self):
        return self._env

    def read_scalar(self, ref: ScalarRef):
        name = ref.symbol.name
        if name in self._env:  # mirrors the fetching reader
            v = self._env[name]
            return v, isinstance(v, int)
        vec = self.scalar_shadow.get(name)
        if vec is not None:
            return vec, vec.dtype.kind in "bi"
        if (
            name in self.scalar_killed
            or name in self.plan.written_scalars
            or name in self.plan.acc_names
        ):
            # invalidated mid-loop on this rank, or read before the
            # first in-body write (a cross-iteration carried value)
            raise _Bail(f"scalar {name} not vectorizable here")
        memory = self.memory
        if not memory.scalar_is_valid(name):
            raise _Bail(f"scalar {name} read would fetch")
        v = memory.scalars[name]
        return v, isinstance(v, int)

    def read_array(self, ref: ArrayElemRef):
        name = ref.symbol.name
        rk = self.plan.read_region.get(ref.ref_id)
        if rk is not None:
            vec = self.array_shadow.get(rk)
            if vec is not None:
                return vec, vec.dtype.kind in "bi"
            if rk in self.array_killed:
                raise _Bail(f"array {name} invalidated mid-loop here")
            # read before this iteration's write: pre-state (injective
            # subscripts mean no other iteration has touched the lane)
        off = self.offs[ref.ref_id]
        memory = self.memory
        self.q += 1
        m = memory.valid[name][off]
        if not bool(np.all(m)):
            if rk is not None:
                raise _Bail(f"written array {name} read would fetch")
            # unwritten arrays — and reads prepare has proven disjoint
            # from every write region — may fetch like any cold read
            return self._fetch_read(ref, off, m)
        data = memory.arrays[name][off]
        return data, data.dtype.kind in "bi"

    def _fetch_read(self, ref: ArrayElemRef, off, m):
        """Some lanes read invalid elements: the per-iteration path
        would fetch each one, exactly once, at its first read.  Record
        the fetch (tagged with its per-iteration position so the commit
        replays the charges in the identical order) and read the value
        from the source rank — its copy cannot change during the
        takeover, since only this loop's statements execute."""
        name = ref.symbol.name
        symbol = ref.symbol
        engine = self.plan.fast.engine
        acc = engine.access(name)
        n = self.n
        offv = [
            np.broadcast_to(np.asarray(o, dtype=np.int64), (n,)) for o in off
        ]
        mv = np.broadcast_to(np.asarray(m, dtype=np.bool_), (n,))
        data = self.memory.arrays[name]
        out = np.empty(n, dtype=data.dtype)
        out[:] = data[off]
        lows = [lo for lo, _ in symbol.dims]
        valids = acc.valids
        fetches = self.fetches
        sid = self.cur_stmt.stmt_id
        for lane in np.nonzero(~mv)[0]:
            elem = tuple(int(o[lane]) for o in offv)
            tag = (int(lane), self.cur_k, self.q)
            rec = fetches.get((name, elem))
            if rec is not None:
                if tag < rec[0]:
                    rec[0] = tag
                    rec[3] = sid
                    rec[4] = ref.ref_id
                    rec[5] = self.cur_stmt
                out[lane] = rec[2]
                continue
            index = tuple(e + lo for e, lo in zip(elem, lows))
            try:
                cands = acc.candidates(index)
            except MappingError:
                # the per-iteration path raises the canonical error
                raise _Bail("owner lookup failed") from None
            src = None
            for owner in cands:
                if valids[owner][elem]:
                    src = owner
                    break
            if src is None:
                for r2 in range(len(valids)):
                    if valids[r2][elem]:
                        src = r2
                        break
            if src is None:
                raise _Bail(f"no rank holds {name}{index}")
            value = acc.datas[src][elem].item()
            fetches[(name, elem)] = [
                tag, src, value, sid, ref.ref_id, self.cur_stmt,
            ]
            out[lane] = value
        return out, out.dtype.kind in "bi"

    def process(self, st: _Step, executes: bool, k: int = 0) -> None:
        if not executes:
            # this rank's copy is invalidated by the executing ranks
            if st.kind == "array":
                self.array_shadow.pop(st.region_key, None)
                self.array_killed.add(st.region_key)
            elif st.kind == "scalar":
                self.scalar_shadow.pop(st.name, None)
                self.scalar_killed.add(st.name)
            return  # reductions/folds: private copies stay untouched
        self.cur_k = k
        self.cur_stmt = st.stmt
        self.q = 0
        if st.kind in ("afold", "sfold"):
            off = self.offs[st.stmt.lhs.ref_id]
            memory = self.memory
            if not bool(memory.valid[st.name][off]):
                raise _Bail("fold accumulator invalid")
            start = memory.arrays[st.name][off]
            value, is_int = _eval(st.red_expr, self)
            if st.stype is ScalarType.INT and not is_int:
                raise _Bail("REAL fold into INTEGER accumulator")
            dtype = np.int64 if st.stype is ScalarType.INT else np.float64
            buf = np.empty(self.n + 1, dtype=dtype)
            buf[0] = start
            buf[1:] = value
            self.afold_results[k] = _RED_UFUNC[st.red_op].accumulate(buf)[-1]
            self.tape_pos[k] = len(self.tape)
            self.tape.append(st.dt)
            return
        if st.kind == "reduction":
            acc = st.name
            start = self.red_results.get(acc)
            if start is None:
                if not self.memory.scalar_is_valid(acc):
                    raise _Bail("reduction accumulator invalid")
                start = self.memory.scalars[acc]
            value, is_int = _eval(st.red_expr, self)
            if st.stype is ScalarType.INT and not is_int:
                raise _Bail("REAL fold into INTEGER accumulator")
            dtype = np.int64 if st.stype is ScalarType.INT else np.float64
            buf = np.empty(self.n + 1, dtype=dtype)
            buf[0] = start
            buf[1:] = value
            self.red_results[acc] = _RED_UFUNC[st.red_op].accumulate(buf)[-1]
            self.tape_pos[k] = len(self.tape)
            self.tape.append(st.dt)
            return
        value, is_int = _eval(st.rhs, self)
        vec = _coerce_vec(value, is_int, st.stype, self.n)
        if st.kind == "array":
            self.array_shadow[st.region_key] = vec
            self.array_killed.discard(st.region_key)
        else:
            self.scalar_shadow[st.name] = vec
            self.scalar_killed.discard(st.name)
        self.tape_pos[k] = len(self.tape)
        self.tape.append(st.dt)


class _WrittenArray:
    """One write *region* of an array: all stores sharing a canonical
    subscript form.  An array written under several distinct forms gets
    several regions; *prepare* verifies the concrete index sets are
    pairwise disjoint (else it bails to tier 2)."""

    __slots__ = ("symbol", "forms", "canon", "write_steps", "ref0")

    def __init__(self, symbol, forms, canon, ref0):
        self.symbol = symbol
        self.forms = forms
        self.canon = canon
        self.write_steps: list[int] = []
        self.ref0 = ref0  # a representative lhs ref_id for offsets


class InnerPlan:
    """Vectorized execution of one innermost loop: every iteration is a
    lane; each participating rank evaluates its statements over the
    whole lane vector, then commits stores, invalidations, and charge
    tapes.  Any condition the per-iteration path would have handled
    differently (invalid reads → fetches, bounds errors, non-affine
    values) raises :class:`_Bail` before anything is mutated."""

    def __init__(self, slab: "SlabExecutor", loop: LoopStmt):
        sim = slab.sim
        fast = slab.fast
        self.sim = sim
        self.fast = fast
        self.loop = loop
        self.v = loop.var.name
        self.steps: list[_Step] = []
        #: (name, canon) -> write region
        self.regions: dict[tuple, _WrittenArray] = {}
        #: name -> region keys of that array
        self.written_arrays: dict[str, list[tuple]] = {}
        #: read ref_id -> region key, for reads matching a write region
        self.read_region: dict[int, tuple] = {}
        #: read ref_ids of written arrays with *no* matching region:
        #: concretely checked disjoint from every write at prepare
        self.disjoint_reads: list[int] = []
        self.written_scalars: dict[str, int] = {}  # name -> last writer
        self.acc_names: set[str] = set()
        #: array name -> step index of its fold (reduction into a fixed
        #: element, e.g. ``AMD(k) = MAX(AMD(k), ...)``)
        self.afold_arrays: dict[str, int] = {}
        #: memory scalars subscripts depend on, resolved at prepare
        self.subscript_scalars: set[str] = set()
        self.ref_forms: dict[int, tuple] = {}  # ref_id -> (symbol, forms)
        red_exprs: list = []
        for stmt in loop.body:
            if isinstance(stmt, ContinueStmt):
                continue
            if not isinstance(stmt, AssignStmt):
                raise _Bail("non-assign in body")
            dt = fast._dt.get(stmt.stmt_id)
            if dt is None:
                raise _Bail("statement not lowered")
            st = _Step(stmt, dt)
            k = len(self.steps)
            red = sim._reduction_updates.get(stmt.stmt_id)
            if red is not None:
                reduction, _mapping = red
                if (
                    reduction.location_symbol is None
                    and reduction.op in _RED_UFUNC
                    and isinstance(stmt.lhs, ArrayElemRef)
                    and reduction.symbol.name == st.name
                ):
                    # fold into one array element: the subscripts must
                    # be loop-invariant, so every lane hits the same
                    # private accumulator element
                    forms = [affine_form(s) for s in stmt.lhs.subscripts]
                    if any(f is None for f in forms):
                        raise _Bail("non-affine fold subscript")
                    for f in forms:
                        _check_form_resolvable(
                            f, (self.v,), self.subscript_scalars
                        )
                        if any(
                            sym.name == self.v and sym.value is None
                            for sym in _form_symbols(f)
                        ):
                            raise _Bail("fold subscript varies with lane")
                    canon = tuple(_canon_form(f) for f in forms)
                    e = _afold_operand(stmt.rhs, st.name, canon, reduction.op)
                    if e is None:
                        raise _Bail("unrecognized array fold update")
                    st.kind = "afold"
                    st.red_op = reduction.op
                    st.red_expr = e
                    if st.name in self.afold_arrays:
                        raise _Bail("array folded twice")
                    self.afold_arrays[st.name] = k
                    self.ref_forms[stmt.lhs.ref_id] = (stmt.lhs.symbol, forms)
                    red_exprs.append(e)
                    self.steps.append(st)
                    continue
                if (
                    not isinstance(stmt.lhs, ScalarRef)
                    or reduction.location_symbol is not None
                    or reduction.op not in _RED_UFUNC
                    or reduction.symbol.name != st.name
                ):
                    raise _Bail("unsupported reduction form")
                e = _reduction_operand(stmt.rhs, st.name, reduction.op)
                if e is None:
                    raise _Bail("unrecognized reduction update")
                st.kind = "reduction"
                st.red_op = reduction.op
                st.red_expr = e
                self.acc_names.add(st.name)
                red_exprs.append(e)
            elif isinstance(stmt.lhs, ArrayElemRef):
                st.kind = "array"
                forms = [affine_form(s) for s in stmt.lhs.subscripts]
                if any(f is None for f in forms):
                    raise _Bail("non-affine store subscript")
                for f in forms:
                    _check_form_resolvable(
                        f, (self.v,), self.subscript_scalars
                    )
                canon = tuple(_canon_form(f) for f in forms)
                key = (st.name, canon)
                info = self.regions.get(key)
                if info is None:
                    if not any(
                        f.coeff(sym) != 0
                        for f in forms
                        for sym in f.symbols
                        if sym.name == self.v and sym.value is None
                    ):
                        # every lane stores the same element: only a
                        # serial fold (``A(c) = A(c) OP e``, the
                        # reduction-into-column shape the reduction
                        # pass left as a plain owner-computes assign)
                        # has per-iteration semantics a slab can replay
                        e = op = None
                        for cand in ("+", "*", "MAX", "MIN"):
                            e = _afold_operand(stmt.rhs, st.name, canon, cand)
                            if e is not None:
                                op = cand
                                break
                        if e is None:
                            raise _Bail("store not injective in the loop var")
                        st.kind = "sfold"
                        st.red_op = op
                        st.red_expr = e
                        if st.name in self.afold_arrays:
                            raise _Bail("array folded twice")
                        self.afold_arrays[st.name] = k
                        self.ref_forms[stmt.lhs.ref_id] = (
                            stmt.lhs.symbol, forms
                        )
                        self.steps.append(st)
                        continue
                    info = _WrittenArray(
                        stmt.lhs.symbol, forms, canon, stmt.lhs.ref_id
                    )
                    self.regions[key] = info
                    self.written_arrays.setdefault(st.name, []).append(key)
                info.write_steps.append(k)
                st.region_key = key
                self.ref_forms[stmt.lhs.ref_id] = (stmt.lhs.symbol, forms)
            else:
                st.kind = "scalar"
                self.written_scalars[st.name] = k
            self.steps.append(st)
        if not self.steps:
            raise _Bail("empty body")
        # rhs reads: affine forms everywhere; a read of an in-body
        # written array either matches a write region exactly (lane for
        # lane) or must be concretely disjoint from all of them —
        # deferred to prepare, where the indices are known
        for st in self.steps:
            expr = st.red_expr if st.kind in ("reduction", "afold", "sfold") else st.rhs
            for ref in expr.refs():
                if not isinstance(ref, ArrayElemRef):
                    continue
                name = ref.symbol.name
                if name in self.afold_arrays:
                    raise _Bail("fold array read outside its fold")
                forms = [affine_form(s) for s in ref.subscripts]
                if any(f is None for f in forms):
                    raise _Bail("non-affine read subscript")
                for f in forms:
                    _check_form_resolvable(
                        f, (self.v,), self.subscript_scalars
                    )
                if name in self.written_arrays:
                    canon = tuple(_canon_form(f) for f in forms)
                    key = (name, canon)
                    if key in self.regions:
                        self.read_region[ref.ref_id] = key
                    else:
                        self.disjoint_reads.append(ref.ref_id)
                self.ref_forms[ref.ref_id] = (ref.symbol, forms)
        if set(self.afold_arrays) & set(self.written_arrays):
            raise _Bail("array both folded and written")
        # accumulators must not leak into any other statement
        for st in self.steps:
            for name in self.acc_names:
                if st.kind == "reduction" and st.name == name:
                    continue
                if st.kind != "reduction" and st.name == name:
                    raise _Bail("accumulator written outside the fold")
                expr = (
                    st.red_expr
                    if st.kind in ("reduction", "afold", "sfold")
                    else st.rhs
                )
                for ref in expr.refs():
                    if isinstance(ref, ScalarRef) and ref.symbol.name == name:
                        raise _Bail("accumulator read outside the fold")
        # executor positions must not depend on anything the body writes
        mutated = set(self.written_scalars) | self.acc_names
        if self.subscript_scalars & mutated:
            raise _Bail("subscript depends on a scalar written in body")
        for st in self.steps:
            info = sim.compiled.executors.get(st.sid)
            if info is None:
                raise _Bail("no executor info")
            for dim in info.position:
                if dim.kind == "pos" and dim.form is not None:
                    for sym in dim.form.symbols:
                        if sym.value is None and (
                            sym.name == self.v or sym.name in mutated
                        ):
                            raise _Bail("executor varies inside the loop")

    # ------------------------------------------------------------------

    def _fetch_schedule(self, ctx: _InnerCtx, rank: int, env) -> list:
        """Order the recorded fetches exactly as the per-iteration path
        would have issued them and precompute each one's coalescing key
        and startup flag (peeked — nothing is mutated until commit)."""
        sim = self.sim
        tape_len = len(ctx.tape)
        entries = []
        for (name, elem), rec in ctx.fetches.items():
            tag, src, value, sid, rid, stmt = rec
            v, k, _q = tag
            flat = v * tape_len + ctx.tape_pos[k]
            event = sim._events.get((sid, rid))
            if event is None:
                # raw coalescing keys embed the full env — including
                # the takeover variable, which tier 2 sets per
                # iteration and we do not
                raise _Bail("fetch without a placed event")
            outer = hoisted_loop_vars(event, stmt)
            if self.v in outer:
                raise _Bail("fetch key varies per lane")
            key = (
                "evt",
                event.ordinal,
                src,
                rank,
                tuple(env.get(nm, 0) for nm in outer),
            )
            entries.append((tag, flat, key, src, sid, rid, name, elem, value))
        entries.sort(key=lambda e: e[0])
        seen_new: set = set()
        global_seen = sim._fetch_keys_seen
        out = []
        for tag, flat, key, src, sid, rid, name, elem, value in entries:
            startup = key not in global_seen and key not in seen_new
            if startup:
                seen_new.add(key)
            out.append((flat, key, startup, src, sid, rid, name, elem, value))
        return out

    def _commit_fetching_tape(
        self, rank: int, ctx: _InnerCtx, n: int, fetch_plan: list
    ) -> None:
        """Charge the rank's compute tape with the fetch messages
        replayed at their exact per-iteration positions.  Left folds
        compose, so splitting the tape at each message reproduces the
        interleaved ``charge_compute``/``charge_message_amortized``
        sequence bit for bit; ``compute_time`` sees no messages and is
        folded in one piece."""
        sim = self.sim
        clocks = sim.clocks
        stats = sim.stats
        memory = sim.memories[rank]
        full = clocks.tile(clocks.tape(ctx.tape), n)
        if full.size:
            clocks.compute_time[rank] = sequential_sum(
                clocks.compute_time[rank], full
            )
        prev = 0
        for flat, key, startup, src, sid, rid, name, elem, value in fetch_plan:
            if flat > prev:
                clocks.time[rank] = sequential_sum(
                    clocks.time[rank], full[prev:flat]
                )
                prev = flat
            clocks.charge_message_amortized(src, rank, 1, startup)
            if startup:
                sim._fetch_keys_seen.add(key)
                stats.messages += 1
            stats.record_fetch((sid, rid), 1)
            memory.arrays[name][elem] = value
            memory.valid[name][elem] = True
            memory.versions[name] += 1
        if prev < full.shape[0]:
            clocks.time[rank] = sequential_sum(clocks.time[rank], full[prev:])

    def prepare(self, low: int, high: int, step: int, env) -> Callable:
        n = slab_trip_count(low, high, step)
        sim = self.sim
        if n == 0:
            def commit_empty():
                pass
            return commit_empty
        steps = self.steps
        rank_sets: list[list[int]] = []
        exec_sets: list[set] = []
        for st in steps:
            ranks = sim.executor_ranks(st.stmt, env)
            if not ranks:
                raise _Bail("empty executor set")
            rank_sets.append(ranks)
            exec_sets.append(set(ranks))
        for info in self.regions.values():
            first = exec_sets[info.write_steps[0]]
            for k in info.write_steps[1:]:
                if exec_sets[k] != first:
                    raise _Bail("array writers differ in executor set")
        participants = sorted(set().union(*exec_sets))
        sub_env = env
        if self.subscript_scalars:
            # subscripts referencing memory scalars: every participant
            # must hold the same valid integral value (per-iteration
            # semantics read the rank's own copy each time)
            sub_env = dict(env)
            for nm in sorted(self.subscript_scalars):
                if nm in env:
                    continue
                val = _MISSING
                for r in participants:
                    memory = sim.memories[r]
                    if not memory.scalar_is_valid(nm):
                        raise _Bail(f"subscript scalar {nm} invalid")
                    got = memory.scalars[nm]
                    if val is _MISSING:
                        val = got
                    elif got != val:
                        raise _Bail(f"subscript scalar {nm} diverges")
                if not float(val).is_integer():
                    raise _Bail(f"subscript scalar {nm} not integral")
                sub_env[nm] = int(val)
        iv = low + step * np.arange(n, dtype=np.int64)
        vec_vars = {self.v: iv}
        offs: dict[int, tuple] = {}
        by_key: dict[tuple, tuple] = {}
        for ref_id, (symbol, forms) in self.ref_forms.items():
            key = (symbol.name, tuple(_canon_form(f) for f in forms))
            got = by_key.get(key)
            if got is None:
                got = tuple(
                    _bounds_checked_offset(
                        _affine_vec(f, vec_vars, sub_env), symbol, d
                    )
                    for d, f in enumerate(forms)
                )
                by_key[key] = got
            offs[ref_id] = got
        if len(self.regions) > 1 or self.disjoint_reads:
            # several write regions, or reads not matching any region:
            # the classification was symbolic — verify the concrete
            # index sets are disjoint, else per-iteration order matters
            def flat_of(ref_id):
                symbol, forms = self.ref_forms[ref_id]
                shape = tuple(
                    symbol.extent(d) for d in range(symbol.rank)
                )
                idx = tuple(
                    np.broadcast_to(np.asarray(o, dtype=np.int64), (n,))
                    for o in offs[ref_id]
                )
                return np.ravel_multi_index(idx, shape)

            wflats = {
                key: flat_of(info.ref0)
                for key, info in self.regions.items()
            }
            for name, keys in self.written_arrays.items():
                for a in range(len(keys)):
                    for b in range(a + 1, len(keys)):
                        if np.intersect1d(
                            wflats[keys[a]], wflats[keys[b]]
                        ).size:
                            raise _Bail("write regions overlap")
            for ref_id in self.disjoint_reads:
                symbol, _forms = self.ref_forms[ref_id]
                rflat = flat_of(ref_id)
                for key in self.written_arrays[symbol.name]:
                    if np.intersect1d(rflat, wflats[key]).size:
                        raise _Bail("read overlaps writes across lanes")
        ctxs: dict[int, _InnerCtx] = {}
        with np.errstate(over="ignore", invalid="ignore"):
            for r in participants:
                ctx = _InnerCtx(self, r, iv, env, n, offs)
                for k, st in enumerate(steps):
                    ctx.process(st, r in exec_sets[k], k)
                ctxs[r] = ctx
        if any(ctx.fetches for ctx in ctxs.values()):
            if len(participants) != 1:
                # cross-rank message/compute interleaving would need
                # the per-instance global order; leave it to tier 2
                raise _Bail("fetching takeover with multiple executors")
            fetch_plan = self._fetch_schedule(
                ctxs[participants[0]], participants[0], env
            )
        else:
            fetch_plan = None

        def commit():
            memories = sim.memories
            clocks = sim.clocks
            for r in participants:
                tape = ctxs[r].tape
                if fetch_plan is not None:
                    self._commit_fetching_tape(r, ctxs[r], n, fetch_plan)
                elif tape:
                    clocks.charge_compute_tape(
                        r, clocks.tile(clocks.tape(tape), n)
                    )
            for key, info in self.regions.items():
                name = key[0]
                w_ranks = rank_sets[info.write_steps[0]]
                wset = exec_sets[info.write_steps[0]]
                off = offs[info.ref0]
                bump = n * len(info.write_steps)
                for r in w_ranks:
                    memory = memories[r]
                    memory.arrays[name][off] = ctxs[r].array_shadow[key]
                    memory.valid[name][off] = True
                    memory.versions[name] += bump
                if len(w_ranks) < len(memories):
                    for r2, memory in enumerate(memories):
                        if r2 not in wset:
                            memory.valid[name][off] = False
                            memory.versions[name] += bump
            for name, last_k in self.written_scalars.items():
                ranks = rank_sets[last_k]
                rset = exec_sets[last_k]
                for r in ranks:
                    memories[r].scalar_store(
                        name, ctxs[r].scalar_shadow[name][-1].item()
                    )
                if len(ranks) < len(memories):
                    for r2, memory in enumerate(memories):
                        if r2 not in rset:
                            memory.scalar_invalidate(name)
            for k, st in enumerate(steps):
                if st.kind == "reduction":
                    for r in rank_sets[k]:
                        memories[r].scalar_store(
                            st.name, ctxs[r].red_results[st.name].item()
                        )
                elif st.kind == "afold":
                    off = offs[st.stmt.lhs.ref_id]
                    for r in rank_sets[k]:
                        memory = memories[r]
                        memory.arrays[st.name][off] = (
                            ctxs[r].afold_results[k].item()
                        )
                        memory.valid[st.name][off] = True
                        memory.versions[st.name] += n
                    # private accumulation: non-executors keep their
                    # copies untouched, exactly like scalar reductions
                elif st.kind == "sfold":
                    # a plain owner-computes store, just serialized:
                    # non-executors are invalidated once per iteration
                    off = offs[st.stmt.lhs.ref_id]
                    wset = exec_sets[k]
                    for r in rank_sets[k]:
                        memory = memories[r]
                        memory.arrays[st.name][off] = (
                            ctxs[r].afold_results[k].item()
                        )
                        memory.valid[st.name][off] = True
                        memory.versions[st.name] += n
                    if len(wset) < len(memories):
                        for r2, memory in enumerate(memories):
                            if r2 not in wset:
                                memory.valid[st.name][off] = False
                                memory.versions[st.name] += n
            sim.slab_instances += n * len(steps)

        return commit


class _ColCtx(_Ctx):
    """Column-lane evaluation: one lane per outer-loop iteration
    (column), statements processed in sequential order with the inner
    loop unrolled step by step — exact because each column reads and
    writes only its own data (checked statically)."""

    def __init__(self, plan: "ColumnPlan", jvec: np.ndarray, env,
                 exec_col: np.ndarray, cols_of: dict[int, np.ndarray]):
        self.plan = plan
        self.jvec = jvec
        self._env = env
        self.nj = jvec.size
        self.exec_col = exec_col
        self.cols_of = cols_of
        self._i: int | None = None
        self.tables: dict[str, tuple] = {}
        self.scalar_shadow: dict[str, np.ndarray] = {}
        self.scalar_cache: dict[str, tuple] = {}

    def loop_vec(self, name: str):
        if name == self.plan.j:
            return self.jvec
        if name == self.plan.i and self._i is not None:
            return self._i
        return None

    @property
    def env(self):
        return self._env

    def _array(self, name: str) -> tuple:
        t = self.tables.get(name)
        if t is None:
            plan = self.plan
            symbol = plan.array_symbols[name]
            jdim = plan.jdims[name]
            jlow, jhigh = symbol.dims[jdim]
            if int(self.jvec.min()) < jlow or int(self.jvec.max()) > jhigh:
                raise _Bail(f"column index out of bounds for {name}")
            joff = self.jvec - jlow
            other = symbol.extent(1 - jdim)
            memories = plan.sim.memories
            dtype = memories[0].array_dtype(name)
            w = np.empty((other, self.nj), dtype=dtype)
            v = np.empty((other, self.nj), dtype=np.bool_)
            for r, cols in self.cols_of.items():
                data = memories[r].arrays[name]
                valid = memories[r].valid[name]
                jsel = joff[cols]
                if jdim == 1:
                    w[:, cols] = data[:, jsel]
                    v[:, cols] = valid[:, jsel]
                else:
                    w[:, cols] = data[jsel, :].T
                    v[:, cols] = valid[jsel, :].T
            t = (w, v, np.zeros((other, self.nj), dtype=np.bool_), joff)
            self.tables[name] = t
        return t

    def _row(self, ref: ArrayElemRef) -> int:
        plan = self.plan
        jdim = plan.jdims[ref.symbol.name]
        form = plan.row_form_of(ref, 1 - jdim)
        vec_vars = {} if self._i is None else {plan.i: self._i}
        idx = _affine_vec(form, vec_vars, self._env)
        if isinstance(idx, np.ndarray):
            raise _Bail("row subscript not scalar")
        return _bounds_checked_offset(int(idx), ref.symbol, 1 - jdim)

    def read_scalar(self, ref: ScalarRef):
        name = ref.symbol.name
        if name in self._env:
            v = self._env[name]
            return v, isinstance(v, int)
        vec = self.scalar_shadow.get(name)
        if vec is not None:
            return vec, vec.dtype.kind in "bi"
        if name in self.plan.written_scalars:
            # read before the first in-column write: the value would
            # flow across columns
            raise _Bail(f"scalar {name} read before its definition")
        cached = self.scalar_cache.get(name)
        if cached is not None:
            return cached
        memories = self.plan.sim.memories
        values = {}
        for r in self.cols_of:
            if not memories[r].scalar_is_valid(name):
                raise _Bail(f"scalar {name} read would fetch")
            values[r] = memories[r].scalars[name]
        kinds = {isinstance(v, int) for v in values.values()}
        if len(kinds) != 1:
            raise _Bail(f"scalar {name} mixes types across ranks")
        is_int = kinds.pop()
        vec = np.empty(self.nj, dtype=np.int64 if is_int else np.float64)
        for r, cols in self.cols_of.items():
            vec[cols] = values[r]
        result = (vec, is_int)
        self.scalar_cache[name] = result
        return result

    def read_array(self, ref: ArrayElemRef):
        w, v, written, _joff = self._array(ref.symbol.name)
        row = self._row(ref)
        if not bool((v[row] | written[row]).all()):
            raise _Bail(f"array {ref.symbol.name} read would fetch")
        data = w[row].copy()
        return data, data.dtype.kind in "bi"

    def process(self, st: _Step) -> None:
        value, is_int = _eval(st.rhs, self)
        vec = _coerce_vec(value, is_int, st.stype, self.nj)
        if st.kind == "array":
            w, _v, written, _joff = self._array(st.name)
            row = self._row(st.stmt.lhs)
            w[row] = vec
            written[row] = True
        else:
            self.scalar_shadow[st.name] = vec
            self.scalar_cache.pop(st.name, None)


class ColumnPlan:
    """Column-wise execution of an outer loop wrapping one sequential
    inner loop: the outer iterations (columns) are the lanes; the inner
    loop runs step by step with each statement vectorized across all
    columns at once.  Exact because every array reference touches only
    its own column and every statement executes on that column's owner
    (both checked statically), so the columns evolve independently in
    program order."""

    def __init__(self, slab: "SlabExecutor", loop: LoopStmt):
        sim = slab.sim
        fast = slab.fast
        self.sim = sim
        self.fast = fast
        self.loop = loop
        self.j = loop.var.name
        if sim.grid.rank != 1:
            raise _Bail("grid is not one-dimensional")
        inner = None
        pre: list[_Step] = []
        post: list[_Step] = []

        def make_step(stmt) -> _Step:
            dt = fast._dt.get(stmt.stmt_id)
            if dt is None:
                raise _Bail("statement not lowered")
            if stmt.stmt_id in sim._reduction_updates:
                raise _Bail("reduction update in body")
            st = _Step(stmt, dt)
            st.kind = "array" if isinstance(stmt.lhs, ArrayElemRef) else "scalar"
            return st

        for stmt in loop.body:
            if isinstance(stmt, ContinueStmt):
                continue
            if isinstance(stmt, LoopStmt):
                if inner is not None:
                    raise _Bail("more than one inner loop")
                inner = stmt
                continue
            if not isinstance(stmt, AssignStmt):
                raise _Bail("non-assign in body")
            (pre if inner is None else post).append(make_step(stmt))
        if inner is None:
            raise _Bail("no inner loop")
        if inner.stmt_id in sim._reductions_by_loop:
            raise _Bail("inner loop combines a reduction")
        self.inner = inner
        self.i = inner.var.name
        body: list[_Step] = []
        for stmt in inner.body:
            if isinstance(stmt, ContinueStmt):
                continue
            if not isinstance(stmt, AssignStmt):
                raise _Bail("non-assign in inner body")
            body.append(make_step(stmt))
        self.pre, self.body, self.post = pre, body, post
        all_steps = pre + body + post
        if not all_steps:
            raise _Bail("empty body")
        # canonical executor position (identical across statements)
        self.pos_form = None
        self.pos_fmt = None
        #: P-parametric charge structure of the latest prepare (None
        #: until prepared, or when no closed form applies)
        self.p_charge: PColumnCharge | None = None
        canon = _MISSING
        for st in all_steps:
            info = sim.compiled.executors.get(st.sid)
            if info is None or info.kind != "owner" or len(info.position) != 1:
                raise _Bail("executor is not a 1-D owner position")
            dim = info.position[0]
            if dim.kind != "pos" or dim.form is None or dim.fmt is None:
                raise _Bail("executor position is not a point")
            c = _canon_form(dim.form)
            if canon is _MISSING:
                canon = c
                self.pos_form = dim.form
                self.pos_fmt = dim.fmt
            elif c != canon:
                raise _Bail("executor position differs across statements")
        # written names; column discipline per array
        self.written_scalars: set[str] = set()
        self.written_arrays: set[str] = set()
        self.jdims: dict[str, int] = {}
        self.array_symbols: dict[str, Any] = {}
        self._row_forms: dict[int, Any] = {}
        for st in all_steps:
            if st.kind == "scalar":
                self.written_scalars.add(st.name)
            else:
                self.written_arrays.add(st.name)
            refs = [st.stmt.lhs] if st.kind == "array" else []
            refs.extend(
                r for r in st.rhs.refs() if isinstance(r, ArrayElemRef)
            )
            for ref in refs:
                self._register_ref(ref)
        # the executor position may only depend on j (and constants)
        for sym, _c in self.pos_form.coeffs:
            if sym.value is None and sym.name != self.j:
                if not sym.is_loop_var or sym.name in self.written_scalars:
                    raise _Bail("executor position not a column function")
        # inner bounds must not change during the takeover
        for bound in (inner.low, inner.high, inner.step):
            if bound is None:
                continue
            for ref in bound.refs():
                if isinstance(ref, ScalarRef) and (
                    ref.symbol.name in (self.j, self.i)
                    or ref.symbol.name in self.written_scalars
                ):
                    raise _Bail("inner bounds vary during the takeover")

    def _register_ref(self, ref: ArrayElemRef) -> None:
        name = ref.symbol.name
        if len(ref.subscripts) != 2:
            raise _Bail("only rank-2 arrays supported column-wise")
        forms = [affine_form(s) for s in ref.subscripts]
        if any(f is None for f in forms):
            raise _Bail("non-affine subscript")
        jdim = None
        for d, f in enumerate(forms):
            c = _canon_form(f)
            if c == (0, ((self.j, 1),)):
                if jdim is not None:
                    raise _Bail("two column dimensions")
                jdim = d
            elif any(nm == self.j for nm, _ in c[1]):
                raise _Bail("mixed column subscript")
        if jdim is None:
            raise _Bail(f"{name}: reference has no column dimension")
        if self.jdims.setdefault(name, jdim) != jdim:
            raise _Bail(f"{name}: inconsistent column dimension")
        self.array_symbols.setdefault(name, ref.symbol)
        row = forms[1 - jdim]
        for sym, _c in row.coeffs:
            if sym.value is not None:
                continue
            if sym.name == self.i:
                continue
            if sym.is_loop_var and sym.name != self.j:
                continue  # env-resolved outer index
            raise _Bail(f"row subscript depends on scalar {sym.name}")
        self._row_forms[ref.ref_id] = row

    def row_form_of(self, ref: ArrayElemRef, row_dim: int):
        form = self._row_forms.get(ref.ref_id)
        if form is None:
            raise _Bail("unregistered reference")
        return form

    # ------------------------------------------------------------------

    def prepare(self, low: int, high: int, step: int, env) -> Callable:
        nj = slab_trip_count(low, high, step)
        sim = self.sim
        if nj == 0:
            def commit_empty():
                pass
            return commit_empty
        jvec = low + step * np.arange(nj, dtype=np.int64)
        pos = _affine_vec(self.pos_form, {self.j: jvec}, env)
        pos = np.asarray(pos, dtype=np.int64)
        if pos.ndim == 0:
            pos = np.full(nj, int(pos), dtype=np.int64)
        fmt = self.pos_fmt
        if pos.size and (int(pos.min()) < 0 or int(pos.max()) >= fmt.extent):
            raise _Bail("executor position out of range")
        owner = np.asarray(self.fast.etables.owner_table(fmt), dtype=np.int64)
        coord = owner[pos]
        rank_of = np.asarray(
            [sim.grid.rank_of((c,)) for c in range(sim.grid.shape[0])],
            dtype=np.int64,
        )
        exec_col = rank_of[coord]
        cols_of = {
            int(r): np.nonzero(exec_col == r)[0]
            for r in np.unique(exec_col)
        }
        # inner bounds: evaluated once (checked invariant), uncharged,
        # exactly like the per-iteration walker's eval_bound
        try:
            li = self.fast.eval_bound(self.inner.low, env)
            hi = self.fast.eval_bound(self.inner.high, env)
            si = (
                self.fast.eval_bound(self.inner.step, env)
                if self.inner.step is not None
                else 1
            )
        except _BOUND_ERRORS:
            raise _Bail("inner bounds not evaluable") from None
        if si == 0:
            raise _Bail("zero inner step")
        nsteps = slab_trip_count(li, hi, si)
        # the P-parametric charge structure of this takeover: valid
        # whenever the executor position is BLOCK-distributed over the
        # grid dimension and (by construction) affine in the column
        # index, i.e. the per-rank column counts are slab_owned_trips
        # evaluated at the concrete P
        charge_form = None
        if fmt.kind == "block" and fmt.procs == sim.grid.shape[0]:
            charge_form = PColumnCharge(
                extent=fmt.extent,
                first=int(pos[0]),
                stride=int(pos[1] - pos[0]) if nj > 1 else 0,
                trips=nj,
                unit_len=(
                    len(self.pre) + nsteps * len(self.body) + len(self.post)
                ),
            )
        self.p_charge = charge_form
        ctx = _ColCtx(self, jvec, env, exec_col, cols_of)
        with np.errstate(over="ignore", invalid="ignore"):
            for st in self.pre:
                ctx.process(st)
            for t in range(nsteps):
                ctx._i = li + t * si
                for st in self.body:
                    ctx.process(st)
            ctx._i = None
            for st in self.post:
                ctx.process(st)

        def commit():
            memories = sim.memories
            clocks = sim.clocks
            seq = clocks.cat([
                clocks.tape([st.dt for st in self.pre]),
                clocks.tile(
                    clocks.tape([st.dt for st in self.body]), nsteps
                ),
                clocks.tape([st.dt for st in self.post]),
            ])
            if charge_form is not None:
                # per-rank column counts from the closed form in P
                # (identical to the owner table's partition by the
                # BLOCK ownership arithmetic)
                procs = sim.grid.shape[0]
                for r in cols_of:
                    count = charge_form.columns(procs, r)
                    if seq.size and count:
                        clocks.charge_compute_tape(r, clocks.tile(seq, count))
            else:
                # no closed form (cyclic/irregular position): fall back
                # to the concrete owner-table partition
                for r, cols in cols_of.items():
                    if seq.size:
                        clocks.charge_compute_tape(
                            r, clocks.tile(seq, cols.size)
                        )
            many = sim.grid.size > 1
            for name, (w, _v, written, joff) in ctx.tables.items():
                if not written.any():
                    continue
                jdim = self.jdims[name]
                rws, cs = np.nonzero(written)
                for r, cols in cols_of.items():
                    sel = exec_col[cs] == r
                    if not sel.any():
                        continue
                    rsel, csel = rws[sel], cs[sel]
                    memory = memories[r]
                    data, valid = memory.arrays[name], memory.valid[name]
                    if jdim == 1:
                        data[rsel, joff[csel]] = w[rsel, csel]
                        valid[rsel, joff[csel]] = True
                    else:
                        data[joff[csel], rsel] = w[rsel, csel]
                        valid[joff[csel], rsel] = True
                    memory.versions[name] += int(sel.sum())
                if many:
                    for r2, memory in enumerate(memories):
                        sel = exec_col[cs] != r2
                        if not sel.any():
                            continue
                        rsel, csel = rws[sel], cs[sel]
                        valid = memory.valid[name]
                        if jdim == 1:
                            valid[rsel, joff[csel]] = False
                        else:
                            valid[joff[csel], rsel] = False
                        memory.versions[name] += int(sel.sum())
            # every column's owner stores its own last value (the stored
            # value persists even once a later column invalidates it)
            last_rank = int(exec_col[-1])
            for name, vec in ctx.scalar_shadow.items():
                for r, cols in cols_of.items():
                    memories[r].scalar_store(name, vec[cols[-1]].item())
                if many:
                    for r2, memory in enumerate(memories):
                        if r2 != last_rank:
                            memory.scalar_invalidate(name)
            if self.i not in env:
                # the walker's per-iteration epilogue would have left
                # the inner index at its final value
                env[self.i] = li + nsteps * si
            sim.slab_instances += nj * (
                len(self.pre) + len(self.post) + nsteps * len(self.body)
            )

        return commit


class _TriCtx(_Ctx):
    """Flattened-lane evaluation of one triangular/imperfect nest: the
    prologue and epilogue run with one lane per outer iteration
    (column), the inner body with one lane per (outer, inner) instance.
    Every lane executes on its column's owner, so evaluation is global
    and per-rank state is gathered lane-wise from the owning rank."""

    #: statement phases, in execution order
    PRE, BODY, POST = 0, 1, 2

    def __init__(self, plan: "TriangularPlan", jvec, iflat, jflat,
                 widths, env, exec_col, cols_of, offs):
        self.plan = plan
        self.jvec = jvec
        self.iflat = iflat
        self.jflat = jflat
        self.widths = widths
        self._env = env
        self.exec_col = exec_col
        self.cols_of = cols_of
        self.offs = offs
        self.nj = jvec.size
        self.nflat = iflat.size
        #: owner rank of each flat (body) lane
        self.rank_flat = np.repeat(exec_col, widths)
        #: last flat lane of each column
        self.seg_end = np.cumsum(widths) - 1
        self.phase = self.PRE
        #: the statement being processed is replicated on every rank
        self.cur_repl = False
        #: phase -> scalar name -> lane vector of that phase
        self.scalar_shadow: tuple[dict, dict, dict] = ({}, {}, {})
        self.scalar_cache: dict[str, tuple] = {}
        self.repl_cache: dict[str, tuple] = {}
        self.array_shadow: dict[tuple, np.ndarray] = {}
        self.tape: tuple[list, list, list] = ([], [], [])

    def _lanes(self) -> int:
        return self.nflat if self.phase == self.BODY else self.nj

    def loop_vec(self, name: str):
        if self.phase == self.BODY:
            if name == self.plan.i:
                return self.iflat
            if name == self.plan.j:
                return self.jflat
        elif name == self.plan.j:
            return self.jvec
        return None

    @property
    def env(self):
        return self._env

    def _expand(self, vec: np.ndarray, from_phase: int) -> np.ndarray:
        """Carry a scalar's per-phase value forward within each column:
        prologue values repeat across the column's body lanes; body
        values reach the epilogue at each column's final lane."""
        if from_phase == self.phase:
            return vec
        if from_phase == self.PRE and self.phase == self.BODY:
            return np.repeat(vec, self.widths)
        if from_phase == self.PRE and self.phase == self.POST:
            return vec
        if from_phase == self.BODY and self.phase == self.POST:
            return vec[self.seg_end]
        raise _Bail("scalar value flows backward")

    def read_scalar(self, ref: ScalarRef):
        name = ref.symbol.name
        if name in self._env:
            v = self._env[name]
            return v, isinstance(v, int)
        wp = self.plan.scalar_phase.get(name)
        if wp is not None:
            if self.cur_repl and not self.plan.scalar_repl[name]:
                # a replicated reader runs on every rank, but an
                # owner-written scalar is only valid on each column's
                # owner — the other ranks would fetch
                raise _Bail(f"replicated read of owner scalar {name}")
            if wp > self.phase:
                raise _Bail(f"scalar {name} carried across columns")
            vec = self.scalar_shadow[wp].get(name)
            if vec is None:
                # read before the first in-column write: the value
                # would flow in from a previous column
                raise _Bail(f"scalar {name} read before its definition")
            vec = self._expand(vec, wp)
            return vec, vec.dtype.kind in "bi"
        if self.cur_repl:
            # a replicated statement evaluates on every rank with its
            # own copy: all copies must be valid and identical for one
            # vectorized evaluation to stand in for all of them
            cached = self.repl_cache.get(name)
            if cached is None:
                vals = []
                for memory in self.plan.sim.memories:
                    if not memory.scalar_is_valid(name):
                        raise _Bail(f"scalar {name} read would fetch")
                    vals.append(memory.scalars[name])
                kinds = {isinstance(v, int) for v in vals}
                if len(kinds) != 1:
                    raise _Bail(f"scalar {name} mixes types across ranks")
                if any(v != vals[0] for v in vals[1:]):
                    raise _Bail(f"scalar {name} differs across ranks")
                cached = (vals[0], kinds.pop())
                self.repl_cache[name] = cached
            return cached
        cached = self.scalar_cache.get(name)
        if cached is None:
            memories = self.plan.sim.memories
            values = {}
            for r in self.cols_of:
                if not memories[r].scalar_is_valid(name):
                    raise _Bail(f"scalar {name} read would fetch")
                values[r] = memories[r].scalars[name]
            kinds = {isinstance(v, int) for v in values.values()}
            if len(kinds) != 1:
                raise _Bail(f"scalar {name} mixes types across ranks")
            is_int = kinds.pop()
            vec = np.empty(self.nj, dtype=np.int64 if is_int else np.float64)
            for r, cols in self.cols_of.items():
                vec[cols] = values[r]
            cached = (vec, is_int)
            self.scalar_cache[name] = cached
        vec, is_int = cached
        if self.phase == self.BODY:
            vec = np.repeat(vec, self.widths)
        return vec, is_int

    def _gather(self, name: str, off, owner: np.ndarray):
        """Each lane reads its column owner's copy; any invalid element
        would fetch per-iteration, so the takeover declines."""
        memories = self.plan.sim.memories
        nl = owner.size
        offv = tuple(
            np.broadcast_to(np.asarray(o, dtype=np.int64), (nl,))
            for o in off
        )
        out = np.empty(nl, dtype=memories[0].array_dtype(name))
        for r in np.unique(owner):
            lanes = np.nonzero(owner == r)[0]
            sel = tuple(o[lanes] for o in offv)
            memory = memories[int(r)]
            if not bool(np.all(memory.valid[name][sel])):
                raise _Bail(f"array {name} read would fetch")
            out[lanes] = memory.arrays[name][sel]
        return out, out.dtype.kind in "bi"

    def read_array(self, ref: ArrayElemRef):
        name = ref.symbol.name
        rk = self.plan.read_region.get(ref.ref_id)
        if rk is not None:
            vec = self.array_shadow.get(rk)
            if vec is not None:
                return vec, vec.dtype.kind in "bi"
            # read before this lane's write: pre-state (regions are
            # injective per column, columns are disjoint)
        off = self.offs[ref.ref_id]
        owner = self.rank_flat if self.phase == self.BODY else self.exec_col
        return self._gather(name, off, owner)

    def process(self, st: _Step) -> None:
        self.cur_repl = st.repl
        value, is_int = _eval(st.rhs, self)
        vec = _coerce_vec(value, is_int, st.stype, self._lanes())
        if st.kind == "array":
            self.array_shadow[st.region_key] = vec
        else:
            self.scalar_shadow[self.phase][st.name] = vec
        self.tape[self.phase].append(st.dt)


class TriangularPlan:
    """One takeover for a whole imperfect nest whose inner bounds may be
    affine in the outer variable: per-column slab widths vary with the
    outer index (triangular nests).  The outer iterations are columns
    executed on their owner rank; prologue/epilogue statements get one
    lane per column, the inner body one lane per (outer, inner)
    instance, flattened.  Exact because every reference touches only
    its own column and regions are injective within it — anything
    runtime-dependent (validity, bounds, widths, region overlap) bails
    to tier 2 before any mutation."""

    def __init__(self, slab: "SlabExecutor", loop: LoopStmt):
        sim = slab.sim
        fast = slab.fast
        self.sim = sim
        self.fast = fast
        self.loop = loop
        self.j = loop.var.name
        if sim.grid.rank != 1:
            raise _Bail("grid is not one-dimensional")
        inner = None
        pre: list[_Step] = []
        post: list[_Step] = []

        def make_step(stmt) -> _Step:
            dt = fast._dt.get(stmt.stmt_id)
            if dt is None:
                raise _Bail("statement not lowered")
            if stmt.stmt_id in sim._reduction_updates:
                raise _Bail("reduction update in body")
            st = _Step(stmt, dt)
            st.kind = (
                "array" if isinstance(stmt.lhs, ArrayElemRef) else "scalar"
            )
            info = sim.compiled.executors.get(stmt.stmt_id)
            st.repl = sim._runs_everywhere(stmt) or _replicated_exec(info)
            if st.repl:
                if st.kind == "array":
                    raise _Bail("replicated statement writes an array")
                for ref in stmt.rhs.refs():
                    if isinstance(ref, ArrayElemRef):
                        raise _Bail("replicated statement reads an array")
            return st

        for stmt in loop.body:
            if isinstance(stmt, ContinueStmt):
                continue
            if isinstance(stmt, LoopStmt):
                if inner is not None:
                    raise _Bail("more than one inner loop")
                inner = stmt
                continue
            if not isinstance(stmt, AssignStmt):
                raise _Bail("non-assign in body")
            (pre if inner is None else post).append(make_step(stmt))
        if inner is None:
            raise _Bail("no inner loop")
        if inner.stmt_id in sim._reductions_by_loop:
            raise _Bail("inner loop combines a reduction")
        self.inner = inner
        self.i = inner.var.name
        body: list[_Step] = []
        for stmt in inner.body:
            if isinstance(stmt, ContinueStmt):
                continue
            if not isinstance(stmt, AssignStmt):
                raise _Bail("non-assign in inner body")
            body.append(make_step(stmt))
        if not body:
            raise _Bail("empty inner body")
        self.pre, self.body, self.post = pre, body, post
        phased = [
            (st, ph)
            for ph, steps in ((0, pre), (1, body), (2, post))
            for st in steps
        ]
        # canonical executor position of the owner-positioned statements
        # (identical across them, a function of j only); replicated
        # statements run on every rank and carry no position
        self.pos_form = None
        self.pos_fmt = None
        canon = _MISSING
        for st, _ph in phased:
            if st.repl:
                continue
            info = sim.compiled.executors.get(st.sid)
            if info is None or info.kind != "owner" or len(info.position) != 1:
                raise _Bail("executor is not a 1-D owner position")
            dim = info.position[0]
            if dim.kind != "pos" or dim.form is None or dim.fmt is None:
                raise _Bail("executor position is not a point")
            c = _canon_form(dim.form)
            if canon is _MISSING:
                canon = c
                self.pos_form = dim.form
                self.pos_fmt = dim.fmt
            elif c != canon:
                raise _Bail("executor position differs across statements")
        if canon is _MISSING:
            raise _Bail("no owner-positioned statement")
        # written names; write regions (body only) like InnerPlan's
        self.scalar_phase: dict[str, int] = {}
        self.scalar_repl: dict[str, bool] = {}
        self.regions: dict[tuple, _WrittenArray] = {}
        self.written_arrays: dict[str, list[tuple]] = {}
        self.read_region: dict[int, tuple] = {}
        self.disjoint_reads: list[int] = []
        self.ref_forms: dict[int, tuple] = {}
        for st, ph in phased:
            if st.kind == "scalar":
                got = self.scalar_phase.setdefault(st.name, ph)
                if got != ph:
                    raise _Bail("scalar written in two phases")
                was = self.scalar_repl.setdefault(st.name, st.repl)
                if was != st.repl:
                    raise _Bail("scalar written by mixed executor kinds")
                continue
            if ph != 1:
                raise _Bail("array written outside the inner loop")
            forms = [affine_form(s) for s in st.stmt.lhs.subscripts]
            if any(f is None for f in forms):
                raise _Bail("non-affine store subscript")
            for f in forms:
                _check_form_resolvable(f, (self.i, self.j))
            canon = tuple(_canon_form(f) for f in forms)
            key = (st.name, canon)
            info = self.regions.get(key)
            if info is None:
                if not any(
                    f.coeff(sym) != 0
                    for f in forms
                    for sym in f.symbols
                    if sym.name == self.i and sym.value is None
                ):
                    raise _Bail("store not injective in the inner var")
                info = _WrittenArray(
                    st.stmt.lhs.symbol, forms, canon, st.stmt.lhs.ref_id
                )
                self.regions[key] = info
                self.written_arrays.setdefault(st.name, []).append(key)
            info.write_steps.append(ph)  # phase, only the count matters
            st.region_key = key
            self.ref_forms[st.stmt.lhs.ref_id] = (st.stmt.lhs.symbol, forms)
        for st, ph in phased:
            for ref in st.rhs.refs():
                if not isinstance(ref, ArrayElemRef):
                    continue
                name = ref.symbol.name
                forms = [affine_form(s) for s in ref.subscripts]
                if any(f is None for f in forms):
                    raise _Bail("non-affine read subscript")
                vars_ok = (self.i, self.j) if ph == 1 else (self.j,)
                for f in forms:
                    _check_form_resolvable(f, vars_ok)
                    if ph != 1 and any(
                        sym.name == self.i and sym.value is None
                        for sym in _form_symbols(f)
                    ):
                        raise _Bail("inner index outside the inner loop")
                if name in self.written_arrays:
                    if ph != 1:
                        raise _Bail("written array read outside the body")
                    canon = tuple(_canon_form(f) for f in forms)
                    key = (name, canon)
                    if key in self.regions:
                        self.read_region[ref.ref_id] = key
                    else:
                        self.disjoint_reads.append(ref.ref_id)
                self.ref_forms[ref.ref_id] = (ref.symbol, forms)
        # the executor position may only depend on j (and constants)
        for sym, _c in self.pos_form.coeffs:
            if sym.value is None and sym.name != self.j:
                if not sym.is_loop_var or sym.name in self.scalar_phase:
                    raise _Bail("executor position not a column function")
        # inner bounds: affine in j (triangular), free of the inner
        # variable and of anything the takeover writes
        self.low_form = affine_form(inner.low)
        self.high_form = affine_form(inner.high)
        if self.low_form is None or self.high_form is None:
            raise _Bail("inner bounds not affine")
        for form in (self.low_form, self.high_form):
            for sym, _c in form.coeffs:
                if sym.value is None and (
                    sym.name == self.i or sym.name in self.scalar_phase
                ):
                    raise _Bail("inner bounds vary during the takeover")

    # ------------------------------------------------------------------

    def prepare(self, low: int, high: int, step: int, env) -> Callable:
        nj = slab_trip_count(low, high, step)
        sim = self.sim
        if nj == 0:
            def commit_empty():
                pass
            return commit_empty
        jvec = low + step * np.arange(nj, dtype=np.int64)
        pos = _affine_vec(self.pos_form, {self.j: jvec}, env)
        pos = np.asarray(pos, dtype=np.int64)
        if pos.ndim == 0:
            pos = np.full(nj, int(pos), dtype=np.int64)
        fmt = self.pos_fmt
        if pos.size and (int(pos.min()) < 0 or int(pos.max()) >= fmt.extent):
            raise _Bail("executor position out of range")
        owner = np.asarray(self.fast.etables.owner_table(fmt), dtype=np.int64)
        coord = owner[pos]
        rank_of = np.asarray(
            [sim.grid.rank_of((c,)) for c in range(sim.grid.shape[0])],
            dtype=np.int64,
        )
        exec_col = rank_of[coord]
        cols_of = {
            int(r): np.nonzero(exec_col == r)[0]
            for r in np.unique(exec_col)
        }
        # per-column inner bounds — the triangular part
        try:
            si = (
                self.fast.eval_bound(self.inner.step, env)
                if self.inner.step is not None
                else 1
            )
        except _BOUND_ERRORS:
            raise _Bail("inner bounds not evaluable") from None
        if si == 0:
            raise _Bail("zero inner step")
        si = int(si)
        jvar = {self.j: jvec}
        li = np.broadcast_to(
            np.asarray(_affine_vec(self.low_form, jvar, env)), (nj,)
        ).astype(np.int64)
        hi = np.broadcast_to(
            np.asarray(_affine_vec(self.high_form, jvar, env)), (nj,)
        ).astype(np.int64)
        widths = slab_trip_count(li, hi, si)
        if bool((widths == 0).any()):
            # a column with no inner iterations still runs its prologue
            # and epilogue; keep the uncommon shape on tier 2
            raise _Bail("empty inner slab")
        nflat = int(widths.sum())
        seg_start = np.cumsum(widths) - widths
        jflat = np.repeat(jvec, widths)
        iflat = np.repeat(li, widths) + si * (
            np.arange(nflat, dtype=np.int64) - np.repeat(seg_start, widths)
        )
        # lane offsets for every reference
        offs: dict[int, tuple] = {}
        by_key: dict[tuple, tuple] = {}
        body_ids = {
            r.ref_id
            for st in self.body
            for r in ([st.stmt.lhs] if st.kind == "array" else [])
            + [x for x in st.rhs.refs() if isinstance(x, ArrayElemRef)]
        }
        for ref_id, (symbol, forms) in self.ref_forms.items():
            in_body = ref_id in body_ids
            key = (
                symbol.name,
                in_body,
                tuple(_canon_form(f) for f in forms),
            )
            got = by_key.get(key)
            if got is None:
                vec_vars = (
                    {self.i: iflat, self.j: jflat}
                    if in_body
                    else {self.j: jvec}
                )
                got = tuple(
                    _bounds_checked_offset(
                        _affine_vec(f, vec_vars, env), symbol, d
                    )
                    for d, f in enumerate(forms)
                )
                by_key[key] = got
            offs[ref_id] = got
        if len(self.regions) > 1 or self.disjoint_reads:
            def flat_of(ref_id):
                symbol, _forms = self.ref_forms[ref_id]
                shape = tuple(
                    symbol.extent(d) for d in range(symbol.rank)
                )
                idx = tuple(
                    np.broadcast_to(np.asarray(o, dtype=np.int64), (nflat,))
                    for o in offs[ref_id]
                )
                return np.ravel_multi_index(idx, shape)

            wflats = {
                key: flat_of(info.ref0)
                for key, info in self.regions.items()
            }
            for name, keys in self.written_arrays.items():
                for a in range(len(keys)):
                    for b in range(a + 1, len(keys)):
                        if np.intersect1d(
                            wflats[keys[a]], wflats[keys[b]]
                        ).size:
                            raise _Bail("write regions overlap")
            for ref_id in self.disjoint_reads:
                symbol, _forms = self.ref_forms[ref_id]
                rflat = flat_of(ref_id)
                for key in self.written_arrays[symbol.name]:
                    if np.intersect1d(rflat, wflats[key]).size:
                        raise _Bail("read overlaps writes across lanes")
        ctx = _TriCtx(
            self, jvec, iflat, jflat, widths, env, exec_col, cols_of, offs
        )
        with np.errstate(over="ignore", invalid="ignore"):
            for st in self.pre:
                ctx.process(st)
            ctx.phase = ctx.BODY
            for st in self.body:
                ctx.process(st)
            ctx.phase = ctx.POST
            for st in self.post:
                ctx.process(st)

        def commit():
            memories = sim.memories
            clocks = sim.clocks
            # each rank's tier-2 tape: its own columns run every
            # statement, foreign columns only the replicated ones
            own = tuple(
                clocks.tape([st.dt for st in steps])
                for steps in (self.pre, self.body, self.post)
            )
            foreign = tuple(
                clocks.tape([st.dt for st in steps if st.repl])
                for steps in (self.pre, self.body, self.post)
            )
            if any(f.size for f in foreign):
                ranks = range(len(memories))
            else:
                ranks = cols_of
            for r in ranks:
                parts = []
                for c in (
                    range(nj) if ranks is not cols_of else cols_of[r]
                ):
                    pre_dts, body_dts, post_dts = (
                        own if int(exec_col[c]) == r else foreign
                    )
                    parts.append(pre_dts)
                    parts.append(clocks.tile(body_dts, int(widths[c])))
                    parts.append(post_dts)
                seq = clocks.cat(parts) if parts else own[0][:0]
                if seq.size:
                    clocks.charge_compute_tape(r, seq)
            many = sim.grid.size > 1
            rank_flat = ctx.rank_flat
            for key, info in self.regions.items():
                name = key[0]
                off = offs[info.ref0]
                offv = tuple(
                    np.broadcast_to(np.asarray(o, dtype=np.int64), (nflat,))
                    for o in off
                )
                nw = len(info.write_steps)
                shadow = ctx.array_shadow[key]
                for r in cols_of:
                    lanes = np.nonzero(rank_flat == r)[0]
                    sel = tuple(o[lanes] for o in offv)
                    memory = memories[r]
                    memory.arrays[name][sel] = shadow[lanes]
                    memory.valid[name][sel] = True
                    memory.versions[name] += lanes.size * nw
                if many:
                    # every write instance invalidates each non-owner
                    for r2, memory in enumerate(memories):
                        lanes = np.nonzero(rank_flat != r2)[0]
                        if not lanes.size:
                            continue
                        sel = tuple(o[lanes] for o in offv)
                        memory.valid[name][sel] = False
                        memory.versions[name] += lanes.size * nw
            last_rank = int(exec_col[-1])
            for name, wp in self.scalar_phase.items():
                vec = ctx.scalar_shadow[wp].get(name)
                if vec is None:
                    continue
                if self.scalar_repl[name]:
                    # every rank executed every write; all copies end
                    # valid, holding the last column's value
                    v = vec[-1].item()
                    for memory in memories:
                        memory.scalar_store(name, v)
                    continue
                for r, cols in cols_of.items():
                    c = int(cols[-1])
                    lane = int(ctx.seg_end[c]) if wp == 1 else c
                    memories[r].scalar_store(name, vec[lane].item())
                if many:
                    for r2, memory in enumerate(memories):
                        if r2 != last_rank:
                            memory.scalar_invalidate(name)
            if self.i not in env:
                # the walker's per-iteration epilogue leaves the inner
                # index at the last column's final value
                env[self.i] = int(li[-1] + widths[-1] * si)
            sim.slab_instances += nj * (
                len(self.pre) + len(self.post)
            ) + nflat * len(self.body)

        return commit


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


class SlabExecutor:
    """Tier-3 entry point: owns the eligibility report and one runtime
    plan per loop, attempts takeovers, and falls back on any bail."""

    def __init__(self, fast):
        self.fast = fast
        self.sim = fast.sim
        sim = self.sim
        report = getattr(sim.compiled, "slabs", None)
        if report is None or report.ir_epoch != sim.proc.ir_epoch:
            reduction_ids = {
                s.stmt_id
                for red in sim.compiled.ctx.reductions
                for s in red.update_stmts
            }
            report = classify_procedure(
                sim.proc,
                sim.compiled.executors,
                sim.compiled.comm.events,
                reduction_ids,
                grid_rank=sim.grid.rank,
            )
        self.report = report
        self._plans: dict[int, Any] = {}
        self._eligible = report.eligible_loops()
        #: satellite fix for the DGEFA regression: a program whose
        #: report has no eligible nest at all pays nothing per loop
        #: entry (one flag check instead of a plan lookup + prepare)
        self.enabled = bool(self._eligible)
        #: per-loop consecutive prepare bails; a nest that bails this
        #: many times without ever committing is demoted to tier 2 for
        #: the rest of the run (prepare overhead was pure loss)
        self._bail_counts: dict[int, int] = {}
        self._committed: set[int] = set()
        self.GIVE_UP_AFTER = 8

    def _record_bail(self, stmt: LoopStmt, reason: str) -> None:
        sim = self.sim
        if sim.metrics is not None:
            sim.metrics.inc(f"slab.bail[{reason}]")
            sim.metrics.inc(f"slab.fallback[loop=S{stmt.stmt_id}]")
        if sim.tracer.enabled:
            sim.tracer.instant(
                "slab.bail", cat="sim", loop=stmt.stmt_id, reason=reason
            )

    def _build(self, stmt: LoopStmt):
        sid = stmt.stmt_id
        # Plan construction only reads the IR and the static reports;
        # a bail means "this loop is tier 2", a numeric-domain error in
        # a closed form means the same — anything else (NameError,
        # TypeError, ...) is a genuine bug and must surface.
        try:
            if self.report.inner.get(sid) == "ok":
                return InnerPlan(self, stmt)
            if self.report.column.get(sid) == "ok":
                return ColumnPlan(self, stmt)
            if getattr(self.report, "triangular", {}).get(sid) == "ok":
                return TriangularPlan(self, stmt)
        except _Bail as bail:
            self._record_bail(stmt, str(bail))
            return None
        except (ArithmeticError, ValueError, OverflowError):
            self._record_bail(stmt, "plan construction error")
            return None
        return None

    def _decide(self, sid: int, choice: str) -> None:
        sim = self.sim
        if sim.tier_decisions.get(sid) != choice:
            sim.tier_decisions[sid] = choice
        if sim.metrics is not None:
            sim.metrics.inc(f"tier.decision[loop=S{sid},choice={choice}]")

    def run_loop(self, stmt: LoopStmt, low: int, high: int, step: int,
                 env) -> bool:
        if not self.enabled:
            return False
        sid = stmt.stmt_id
        sim = self.sim
        approved = sim._tier_approved
        if approved is not None and sid not in approved:
            if sid in self._eligible:
                # the TierPlan predicted tier 2 to win here
                self._decide(sid, "lowered")
            return False
        plan = self._plans.get(sid, _MISSING)
        if plan is _MISSING:
            plan = self._build(stmt)
            self._plans[sid] = plan
        if plan is None:
            return False
        # Phase A (prepare) mutates nothing: a bail or a numeric-domain
        # error falls back to tier 2, which replays the loop exactly;
        # genuine programming errors propagate.
        try:
            commit = plan.prepare(low, high, step, env)
        except _Bail as bail:
            self._record_bail(stmt, str(bail))
            self._decide(sid, "lowered")
            if sid not in self._committed:
                bails = self._bail_counts.get(sid, 0) + 1
                self._bail_counts[sid] = bails
                if bails >= self.GIVE_UP_AFTER:
                    # never succeeded: stop paying prepare per entry
                    self._plans[sid] = None
            return False
        except (ArithmeticError, ValueError, OverflowError):
            self._record_bail(stmt, "prepare error")
            self._decide(sid, "lowered")
            return False
        # Phase B (commit) is outside the net: a failure here would mean
        # corrupted state and must surface, not silently re-execute.
        commit()
        self._committed.add(sid)
        self._decide(sid, "slab")
        if sim.metrics is not None:
            sim.metrics.inc(f"slab.takeover[loop=S{sid}]")
        if sim.tracer.enabled:
            sim.tracer.instant(
                "slab.takeover", cat="sim", loop=sid, low=low,
                high=high, step=step,
            )
        return True
