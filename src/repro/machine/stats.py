"""Virtual clocks and traffic statistics of the simulated machine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..comm.costmodel import MachineModel


def sequential_sum(start, dts: np.ndarray):
    """Left-fold ``start + dts[0] + dts[1] + ...`` with exactly the
    rounding of a sequential ``+=`` loop.

    ``np.ufunc.accumulate`` is specified as strictly sequential
    (``r[i] = op(r[i-1], a[i])``), unlike ``np.sum``/``np.add.reduce``
    whose pairwise summation reassociates; the slab engine relies on
    this to charge a whole iteration slab in one call while staying
    bit-for-bit identical to per-iteration charging.

    Scalar form: ``start`` is a float, ``dts`` a 1-d tape, result a
    float.  Lane form (batched sweeps): ``start`` is a ``(lanes,)``
    vector, ``dts`` a ``(steps, lanes)`` tape, and the fold runs down
    axis 0 — per lane that is the same sequence of scalar additions,
    so each lane is bitwise identical to a scalar fold of its column."""
    if dts.size == 0:
        return start
    if dts.ndim == 1:
        buf = np.empty(dts.size + 1, dtype=np.float64)
        buf[0] = start
        buf[1:] = dts
        return float(np.add.accumulate(buf)[-1])
    buf = np.empty((dts.shape[0] + 1, dts.shape[1]), dtype=np.float64)
    buf[0] = start
    buf[1:] = dts
    return np.add.accumulate(buf, axis=0)[-1]


def sequential_prefix_sum(start, dts: np.ndarray, steps) -> np.ndarray:
    """Per-lane left-fold of a shared ``(max_steps, lanes)`` tape where
    lane ``m`` only folds its first ``steps[m]`` entries.

    This is the procs-lane charging trick: nests whose per-rank trip
    counts are closed-form functions of P produce one shared charge
    tape padded to the *longest* lane; accumulating once sequentially
    and reading lane ``m`` at row ``steps[m]`` yields exactly the value
    a dedicated ``steps[m]``-step scalar fold produces, because zero
    padding after a lane's own steps never enters its prefix.

    ``start`` is a float or ``(lanes,)`` vector, ``dts`` a
    ``(max_steps, lanes)`` tape, ``steps`` a ``(lanes,)`` int vector
    with ``0 <= steps[m] <= max_steps``; returns the ``(lanes,)``
    per-lane fold results."""
    dts = np.asarray(dts, dtype=np.float64)
    if dts.ndim != 2:
        raise ValueError(f"dts must be a (steps, lanes) tape, got {dts.shape}")
    lanes = dts.shape[1]
    steps = np.asarray(steps, dtype=np.int64)
    if steps.shape != (lanes,):
        raise ValueError(
            f"steps must give one count per lane: {steps.shape} vs {lanes}"
        )
    if np.any(steps < 0) or np.any(steps > dts.shape[0]):
        raise ValueError("steps out of range for the tape")
    buf = np.empty((dts.shape[0] + 1, lanes), dtype=np.float64)
    buf[0] = start
    buf[1:] = dts
    acc = np.add.accumulate(buf, axis=0)
    return acc[steps, np.arange(lanes)]


@dataclass
class TrafficStats:
    messages: int = 0
    elements: int = 0
    fetches: int = 0
    unexpected_fetches: int = 0
    broadcasts: int = 0
    reductions: int = 0
    #: (stmt_id, ref_id) -> fetch count, for cross-validation against
    #: the static communication analysis
    per_event_fetches: dict[tuple[int, int], int] = field(default_factory=dict)

    def record_fetch(self, key: tuple[int, int] | None, elements: int = 1) -> None:
        self.fetches += 1
        self.elements += elements
        if key is None:
            self.unexpected_fetches += 1
        else:
            self.per_event_fetches[key] = self.per_event_fetches.get(key, 0) + 1

    def record_fetch_batch(self, key: tuple[int, int] | None, count: int) -> None:
        """Exactly ``count`` single-element ``record_fetch`` calls."""
        if count <= 0:
            return
        self.fetches += count
        self.elements += count
        if key is None:
            self.unexpected_fetches += count
        else:
            self.per_event_fetches[key] = self.per_event_fetches.get(key, 0) + count

    def as_dict(self) -> dict:
        """JSON-serializable snapshot (tuple keys stringified), used by
        the benchmarks to assert fast-path/interpreted identity."""
        return {
            "messages": self.messages,
            "elements": self.elements,
            "fetches": self.fetches,
            "unexpected_fetches": self.unexpected_fetches,
            "broadcasts": self.broadcasts,
            "reductions": self.reductions,
            "per_event_fetches": {
                f"S{sid}/r{rid}": count
                for (sid, rid), count in sorted(self.per_event_fetches.items())
            },
        }


@dataclass
class TraceRecord:
    """One traced runtime event."""

    kind: str  # "fetch" | "reduce" | "exec"
    detail: str
    src: int | None = None
    dst: int | None = None

    def __str__(self) -> str:
        route = ""
        if self.src is not None and self.dst is not None:
            route = f" [{self.src}->{self.dst}]"
        elif self.dst is not None:
            route = f" [@{self.dst}]"
        return f"{self.kind:6s}{route} {self.detail}"


class Trace:
    """Bounded ring of runtime events (off unless a capacity is set)."""

    def __init__(self, capacity: int = 0):
        self.capacity = capacity
        self.records: list[TraceRecord] = []
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, kind: str, detail: str, src: int | None = None, dst: int | None = None) -> None:
        if not self.enabled:
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(kind=kind, detail=detail, src=src, dst=dst))

    def render(self) -> str:
        lines = [str(r) for r in self.records]
        if self.dropped:
            lines.append(f"... {self.dropped} further event(s) not recorded")
        return "\n".join(lines) if lines else "no traced events"


class Clocks:
    """Per-rank virtual time, advanced by compute and message events."""

    def __init__(self, num_ranks: int, machine: MachineModel):
        self.machine = machine
        self.time = [0.0] * num_ranks
        self.compute_time = [0.0] * num_ranks
        self.comm_time = [0.0] * num_ranks

    def charge_compute(self, rank: int, flops: int) -> None:
        dt = self.machine.compute_time(flops, 1)
        self.time[rank] += dt
        self.compute_time[rank] += dt

    def charge_message(self, src: int, dst: int, elements: int) -> None:
        dt = self.machine.message_time(elements)
        start = max(self.time[src], self.time[dst])
        self.time[src] = start + dt
        self.time[dst] = start + dt
        self.comm_time[src] += dt
        self.comm_time[dst] += dt

    def charge_message_amortized(self, src: int, dst: int, elements: int, startup: bool) -> None:
        """Per-element transfer charging with one startup per coalesced
        message (message vectorization at run time)."""
        dt = self.machine.beta * self.machine.element_bytes * elements
        if startup:
            dt += self.machine.alpha
        start = max(self.time[src], self.time[dst])
        self.time[src] = start + dt
        self.time[dst] = start + dt
        self.comm_time[src] += dt
        self.comm_time[dst] += dt

    def charge_compute_tape(self, rank: int, dts: np.ndarray) -> None:
        """Batched compute charging, bit-for-bit identical to calling
        ``charge_compute`` once per tape entry: ``dts`` holds the
        precomputed per-instance ``dt`` values (flops x flop_time +
        statement overhead); 0.0 entries are bitwise no-ops, which is
        how masked-off guarded instances are encoded."""
        if dts.size == 0:
            return
        self.time[rank] = sequential_sum(self.time[rank], dts)
        self.compute_time[rank] = sequential_sum(self.compute_time[rank], dts)

    # -- tape assembly -----------------------------------------------------
    #
    # The slab engine builds charge tapes out of per-statement ``dt``
    # values and feeds them to ``charge_compute_tape``/``sequential_sum``.
    # Routing the numpy assembly through the clock object keeps the tape
    # *shape* a clock concern: the scalar clocks here build 1-d tapes
    # (one entry per statement instance), while the lane-vector clocks
    # of the batched sweep evaluator (``repro.machine.batchexec``) build
    # ``(instances, lanes)`` tapes from per-lane ``dt`` vectors.

    def tape(self, dts: list) -> np.ndarray:
        """A charge tape from a list of per-statement ``dt`` values."""
        return np.asarray(dts, dtype=np.float64)

    def tile(self, tape: np.ndarray, n: int) -> np.ndarray:
        """``tape`` repeated ``n`` times along the instance axis."""
        return np.tile(tape, n)

    def cat(self, parts: list) -> np.ndarray:
        """Tapes concatenated along the instance axis."""
        return np.concatenate(parts) if parts else self.tape([])

    def charge_collective(self, ranks: list[int], elements: int, kind: str) -> None:
        if len(ranks) <= 1:
            return
        if kind == "reduce":
            dt = self.machine.reduce_time(elements, len(ranks))
        else:
            dt = self.machine.broadcast_time(elements, len(ranks))
        start = max(self.time[r] for r in ranks)
        for r in ranks:
            self.time[r] = start + dt
            self.comm_time[r] += dt

    def snapshot(self) -> dict[str, list[float]]:
        """Exact per-rank clock values, for bit-for-bit comparisons."""
        return {
            "time": list(self.time),
            "compute_time": list(self.compute_time),
            "comm_time": list(self.comm_time),
        }

    @property
    def elapsed(self) -> float:
        return max(self.time) if self.time else 0.0

    @property
    def total_compute(self) -> float:
        return sum(self.compute_time)

    @property
    def total_comm(self) -> float:
        return sum(self.comm_time)
