"""Simulated distributed-memory machine: per-node memory with validity
tracking, virtual clocks, and the SPMD execution engine."""

from .lowering import LoweredIR, lower_procedure
from .memory import NodeMemory, initialize_array, ownership_mask
from .simulator import SPMDSimulator, simulate
from .stats import Clocks, TrafficStats

__all__ = [
    "NodeMemory",
    "initialize_array",
    "ownership_mask",
    "LoweredIR",
    "lower_procedure",
    "SPMDSimulator",
    "simulate",
    "Clocks",
    "TrafficStats",
]
