"""Simulated distributed-memory machine: per-node memory with validity
tracking, virtual clocks, and the SPMD execution engine."""

from .memory import NodeMemory, initialize_array
from .simulator import SPMDSimulator, simulate
from .stats import Clocks, TrafficStats

__all__ = [
    "NodeMemory",
    "initialize_array",
    "SPMDSimulator",
    "simulate",
    "Clocks",
    "TrafficStats",
]
