"""Lane-vectorized charging: one simulation, many machine models.

The batched sweep evaluator (:mod:`repro.sweep.batched`) exploits a
structural fact of the simulator: machine parameters are *write-only*
during a run.  Values, validity masks, control flow, fetch schedules,
and tier decisions never read the clocks, so two grid points that
differ only in simulator parameters (alpha/beta/flop rate) execute the
exact same instruction stream — only the ``dt`` values charged to the
virtual clocks differ.

This module makes those ``dt`` values *vectors*.  A
:class:`VectorMachine` stacks ``lanes`` scalar
:class:`~repro.model.MachineModel` parameter sets into ``(lanes,)``
arrays and evaluates the same closed-form charge expressions
(``alpha + beta*bytes*elements``, log-tree collectives, ``flops x
flop_time``) elementwise; a :class:`VectorClocks` holds per-rank
``(lanes,)`` clock vectors and applies every charge with the same
operation sequence as the scalar :class:`~repro.machine.stats.Clocks`.

Bitwise parity is by construction: IEEE-754 elementwise numpy ops in
an identical order produce, per lane, exactly the doubles the scalar
run produces (``np.add.accumulate`` is strictly sequential down the
instance axis; ``np.maximum`` agrees with ``max`` on non-NaN floats;
machine-independent quantities — trip counts, spans, element counts —
stay python scalars so no transcendental is re-evaluated in numpy).
The parity property suite byte-compares every lane against a dedicated
scalar simulation.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..model import MachineModel
from .stats import Clocks


class VectorMachine:
    """``lanes`` machine models evaluated elementwise.

    Presents the :class:`~repro.model.MachineModel` interface with
    every scalar parameter replaced by a ``(lanes,)`` float64 vector;
    each cost method returns the ``(lanes,)`` vector of per-model
    costs, computed with the same arithmetic (same operation order,
    same int->float conversions) as the scalar model, so lane ``m`` is
    bitwise equal to ``models[m]``'s answer.
    """

    def __init__(self, models: Sequence[MachineModel]):
        if not models:
            raise ValueError("VectorMachine needs at least one lane")
        self.models = tuple(models)
        self.lanes = len(self.models)
        self.name = f"vector[{','.join(m.name for m in self.models)}]"
        self.alpha = np.asarray([m.alpha for m in models], dtype=np.float64)
        self.beta = np.asarray([m.beta for m in models], dtype=np.float64)
        self.flop_time = np.asarray(
            [m.flop_time for m in models], dtype=np.float64
        )
        self.stmt_overhead = np.asarray(
            [m.stmt_overhead for m in models], dtype=np.float64
        )
        #: per-lane when the models disagree, scalar int otherwise (the
        #: common case; keeps ``beta * element_bytes`` an exact int
        #: scaling either way)
        sizes = {m.element_bytes for m in models}
        self.element_bytes = (
            models[0].element_bytes
            if len(sizes) == 1
            else np.asarray(
                [m.element_bytes for m in models], dtype=np.float64
            )
        )

    # -- point-to-point ----------------------------------------------------

    def message_time(self, elements: int) -> np.ndarray:
        return self.alpha + self.beta * self.element_bytes * max(elements, 0)

    # -- collectives -------------------------------------------------------
    #
    # ``procs`` may be a scalar int (every lane prices the same span — the
    # machine-lane sweep case) or a ``(lanes,)`` int vector (each lane has
    # its own processor count — the procs-lane sweep case).  Per-lane
    # round counts are computed with the *scalar* ``math`` path per entry
    # so each lane is bitwise identical to its dedicated scalar model;
    # lanes with ``procs <= 1`` are masked to the scalar early-return
    # value with ``np.where``.

    @staticmethod
    def _rounds(procs):
        if np.ndim(procs) == 0:
            return max(1, math.ceil(math.log2(max(procs, 2))))
        return np.asarray(
            [
                max(1, math.ceil(math.log2(max(int(p), 2))))
                for p in np.asarray(procs).ravel()
            ],
            dtype=np.int64,
        )

    def broadcast_time(self, elements: int, procs) -> np.ndarray:
        if np.ndim(procs) == 0:
            if procs <= 1:
                return np.zeros(self.lanes, dtype=np.float64)
            return self._rounds(procs) * self.message_time(elements)
        charged = self._rounds(procs) * self.message_time(elements)
        return np.where(np.asarray(procs) <= 1, 0.0, charged)

    def reduce_time(self, elements: int, procs) -> np.ndarray:
        if np.ndim(procs) == 0:
            if procs <= 1:
                return np.zeros(self.lanes, dtype=np.float64)
            return self._rounds(procs) * self.message_time(elements)
        charged = self._rounds(procs) * self.message_time(elements)
        return np.where(np.asarray(procs) <= 1, 0.0, charged)

    def shift_time(self, elements: int) -> np.ndarray:
        return self.message_time(elements)

    def gather_time(self, elements: int, procs) -> np.ndarray:
        if np.ndim(procs) == 0:
            if procs <= 1:
                return self.message_time(elements)
            return 2 * self._rounds(procs) * self.message_time(elements)
        charged = 2 * self._rounds(procs) * self.message_time(elements)
        return np.where(
            np.asarray(procs) <= 1, self.message_time(elements), charged
        )

    def alltoall_time(self, elements: int, procs) -> np.ndarray:
        if np.ndim(procs) == 0:
            if procs <= 1:
                return np.zeros(self.lanes, dtype=np.float64)
            per_proc = max(elements // procs, 1)
            return (procs - 1) * self.alpha + (
                2 * self.beta * self.element_bytes * per_proc
            )
        procs = np.asarray(procs)
        per_proc = np.maximum(elements // np.maximum(procs, 1), 1)
        charged = (procs - 1) * self.alpha + (
            2 * self.beta * self.element_bytes * per_proc
        )
        return np.where(procs <= 1, 0.0, charged)

    def transfer_time(self, pattern, elements: int, span_procs):
        if pattern.kind == "none":
            return np.zeros(self.lanes, dtype=np.float64)
        if pattern.kind == "shift":
            return self.shift_time(elements)
        if pattern.kind == "broadcast":
            return self.broadcast_time(elements, span_procs)
        return self.gather_time(elements, span_procs)

    # -- computation -------------------------------------------------------

    def compute_time(self, flops: int, instances: int = 1) -> np.ndarray:
        return instances * (flops * self.flop_time + self.stmt_overhead)


class VectorClocks(Clocks):
    """Per-rank ``(lanes,)`` clock vectors driven by a
    :class:`VectorMachine`.

    Every charge method repeats the scalar :class:`Clocks` operation
    sequence with elementwise array arithmetic; rank entries are always
    *distinct* arrays (a shared object would couple ranks through
    in-place ``+=`` charging, which the scalar float semantics never
    do).  Tape assembly builds ``(instances, lanes)`` tapes so
    ``sequential_sum`` left-folds down the instance axis per lane.
    """

    def __init__(self, num_ranks: int, machine: VectorMachine):
        super().__init__(num_ranks, machine)
        self.lanes = machine.lanes
        zeros = lambda: np.zeros(machine.lanes, dtype=np.float64)  # noqa: E731
        self.time = [zeros() for _ in range(num_ranks)]
        self.compute_time = [zeros() for _ in range(num_ranks)]
        self.comm_time = [zeros() for _ in range(num_ranks)]

    # -- charging ----------------------------------------------------------

    def charge_message(self, src: int, dst: int, elements: int) -> None:
        dt = self.machine.message_time(elements)
        start = np.maximum(self.time[src], self.time[dst])
        self.time[src] = start + dt
        self.time[dst] = start + dt
        self.comm_time[src] += dt
        self.comm_time[dst] += dt

    def charge_message_amortized(
        self, src: int, dst: int, elements: int, startup: bool
    ) -> None:
        dt = self.machine.beta * self.machine.element_bytes * elements
        if startup:
            dt = dt + self.machine.alpha
        start = np.maximum(self.time[src], self.time[dst])
        self.time[src] = start + dt
        self.time[dst] = start + dt
        self.comm_time[src] += dt
        self.comm_time[dst] += dt

    def charge_collective(
        self, ranks: list, elements: int, kind: str
    ) -> None:
        if len(ranks) <= 1:
            return
        if kind == "reduce":
            dt = self.machine.reduce_time(elements, len(ranks))
        else:
            dt = self.machine.broadcast_time(elements, len(ranks))
        start = self.time[ranks[0]]
        for r in ranks[1:]:
            start = np.maximum(start, self.time[r])
        for r in ranks:
            self.time[r] = start + dt
            self.comm_time[r] += dt

    # -- tape assembly -----------------------------------------------------

    def tape(self, dts: list) -> np.ndarray:
        if not dts:
            return np.empty((0, self.lanes), dtype=np.float64)
        return np.asarray(dts, dtype=np.float64).reshape(len(dts), self.lanes)

    def tile(self, tape: np.ndarray, n: int) -> np.ndarray:
        return np.tile(tape, (n, 1))

    def cat(self, parts: list) -> np.ndarray:
        return np.concatenate(parts, axis=0) if parts else self.tape([])

    # -- extraction --------------------------------------------------------

    def lane_snapshot(self, lane: int) -> dict[str, list[float]]:
        """The scalar ``Clocks.snapshot()`` of one lane: plain python
        floats (``float(np.float64)`` is exact), ready for the
        canonical-stats JSON byte comparison."""
        return {
            "time": [float(t[lane]) for t in self.time],
            "compute_time": [float(t[lane]) for t in self.compute_time],
            "comm_time": [float(t[lane]) for t in self.comm_time],
        }

    def lane_elapsed(self, lane: int) -> float:
        """``max(time)`` of one lane, exactly as the scalar property."""
        times = [float(t[lane]) for t in self.time]
        return max(times) if times else 0.0

    @property
    def elapsed(self):
        """The ``(lanes,)`` vector of per-lane makespans."""
        if not self.time:
            return np.zeros(self.lanes, dtype=np.float64)
        out = self.time[0]
        for t in self.time[1:]:
            out = np.maximum(out, t)
        return out


class ProcsVectorMachine(VectorMachine):
    """Machine lanes that additionally carry a per-lane processor count.

    This is the procs-axis-as-lane-dimension machine: lane ``m`` prices
    costs for ``models[m]`` running on ``procs[m]`` ranks arranged as
    ``grid_shapes[m]``.  The collective methods inherited from
    :class:`VectorMachine` already accept per-lane ``procs`` vectors
    (so mixed-procs lanes are never priced with one shared span), and
    the convenience ``lane_*`` wrappers charge each lane at its own
    count.  Consumers: the procs-lane clock structure below, the
    estimator's one-call procs-vector pricing, and the P-parametric
    slab-charging property tests.
    """

    def __init__(
        self,
        models: Sequence[MachineModel],
        procs: Sequence[int],
        grid_shapes: Sequence[Sequence[int]] | None = None,
    ):
        super().__init__(models)
        self.procs = np.asarray(procs, dtype=np.int64)
        if self.procs.shape != (self.lanes,):
            raise ValueError(
                f"procs must supply one count per lane: got shape "
                f"{self.procs.shape} for {self.lanes} lane(s)"
            )
        if np.any(self.procs < 1):
            raise ValueError("every lane needs procs >= 1")
        if grid_shapes is not None:
            grid_shapes = tuple(tuple(int(d) for d in s) for s in grid_shapes)
            if len(grid_shapes) != self.lanes:
                raise ValueError(
                    f"grid_shapes must supply one shape per lane: got "
                    f"{len(grid_shapes)} for {self.lanes} lane(s)"
                )
            for shape, count in zip(grid_shapes, self.procs):
                if math.prod(shape) != count:
                    raise ValueError(
                        f"grid shape {shape} does not hold {count} procs"
                    )
        #: per-lane processor grid shapes (defaults to 1-d grids)
        self.grid_shapes = grid_shapes or tuple(
            (int(p),) for p in self.procs
        )
        self.max_procs = int(self.procs.max())
        self.name = "procs-" + self.name

    # -- per-lane-count collectives ---------------------------------------

    def lane_broadcast_time(self, elements: int) -> np.ndarray:
        return self.broadcast_time(elements, self.procs)

    def lane_reduce_time(self, elements: int) -> np.ndarray:
        return self.reduce_time(elements, self.procs)

    def lane_gather_time(self, elements: int) -> np.ndarray:
        return self.gather_time(elements, self.procs)

    def lane_alltoall_time(self, elements: int) -> np.ndarray:
        return self.alltoall_time(elements, self.procs)


class ProcsVectorClocks(VectorClocks):
    """Lane clocks for a procs vector: per-rank state laid out over the
    *maximum* rank count, with validity masks.

    Lane ``m`` only populates ranks ``0 .. procs[m]-1``; the remaining
    rows are masked off so a charge addressed to rank ``r`` advances
    exactly the lanes where rank ``r`` exists.  Charges on valid lanes
    repeat the scalar operation sequence (``max`` start resolution,
    then ``+ dt``), so each lane's clocks are bitwise what a dedicated
    ``procs[m]``-rank run with ``models[m]`` would produce.  Collectives
    derive their span *per lane* from the validity masks and price it
    through the per-lane ``procs`` collective path, so a global
    collective over ranks ``0..max_procs`` is simultaneously a
    ``procs[m]``-wide collective in every lane.

    Two ways to fill one: drive it directly (masked charging — the
    P-parametric slab-charging path), or :meth:`adopt` the columns of
    per-procs sub-simulations (the batched sweep's fuse-at-extract
    path for programs whose instruction streams differ across P).
    """

    def __init__(self, machine: ProcsVectorMachine):
        super().__init__(machine.max_procs, machine)
        self.procs = machine.procs
        #: per-rank ``(lanes,)`` bool: does this rank exist in the lane?
        self.valid = [
            np.asarray(self.procs > r) for r in range(machine.max_procs)
        ]

    # -- masked charging ---------------------------------------------------

    def charge_compute(self, rank: int, flops: int) -> None:
        dt = np.where(
            self.valid[rank], self.machine.compute_time(flops, 1), 0.0
        )
        self.time[rank] = self.time[rank] + dt
        self.compute_time[rank] = self.compute_time[rank] + dt

    def charge_compute_tape(self, rank: int, dts: np.ndarray) -> None:
        if dts.size == 0:
            return
        # a 0.0 charge is a bitwise no-op (+0.0 + x == x), so masking a
        # lane's column to zero freezes its clocks through the fold
        super().charge_compute_tape(rank, np.where(self.valid[rank], dts, 0.0))

    def charge_message(self, src: int, dst: int, elements: int) -> None:
        live = self.valid[src] & self.valid[dst]
        dt = self.machine.message_time(elements)
        start = np.maximum(self.time[src], self.time[dst])
        end = start + dt
        self.time[src] = np.where(live, end, self.time[src])
        self.time[dst] = np.where(live, end, self.time[dst])
        self.comm_time[src] = np.where(
            live, self.comm_time[src] + dt, self.comm_time[src]
        )
        self.comm_time[dst] = np.where(
            live, self.comm_time[dst] + dt, self.comm_time[dst]
        )

    def charge_message_amortized(
        self, src: int, dst: int, elements: int, startup: bool
    ) -> None:
        live = self.valid[src] & self.valid[dst]
        dt = self.machine.beta * self.machine.element_bytes * elements
        if startup:
            dt = dt + self.machine.alpha
        start = np.maximum(self.time[src], self.time[dst])
        end = start + dt
        self.time[src] = np.where(live, end, self.time[src])
        self.time[dst] = np.where(live, end, self.time[dst])
        self.comm_time[src] = np.where(
            live, self.comm_time[src] + dt, self.comm_time[src]
        )
        self.comm_time[dst] = np.where(
            live, self.comm_time[dst] + dt, self.comm_time[dst]
        )

    def charge_collective(self, ranks: list, elements: int, kind: str) -> None:
        if not ranks:
            return
        # per-lane span: how many of the addressed ranks exist there
        spans = np.zeros(self.lanes, dtype=np.int64)
        for r in ranks:
            spans = spans + self.valid[r]
        if kind == "reduce":
            dt = self.machine.reduce_time(elements, spans)
        else:
            dt = self.machine.broadcast_time(elements, spans)
        # start = max over each lane's participating ranks, folded in
        # rank order exactly like the scalar loop
        start = np.full(self.lanes, -np.inf, dtype=np.float64)
        for r in ranks:
            start = np.where(
                self.valid[r], np.maximum(start, self.time[r]), start
            )
        end = start + dt
        live = spans >= 2  # scalar early-returns on <= 1 participants
        for r in ranks:
            hit = live & self.valid[r]
            self.time[r] = np.where(hit, end, self.time[r])
            self.comm_time[r] = np.where(
                hit, self.comm_time[r] + dt, self.comm_time[r]
            )

    # -- adoption ----------------------------------------------------------

    def adopt(self, lane_start: int, clocks: VectorClocks) -> None:
        """Copy a sub-simulation's per-rank lane columns into lanes
        ``lane_start .. lane_start + clocks.lanes``.  The sub-run must
        have exactly the rank count those lanes declare."""
        stop = lane_start + clocks.lanes
        ranks = len(clocks.time)
        expected = self.procs[lane_start:stop]
        if np.any(expected != ranks):
            raise ValueError(
                f"sub-run has {ranks} rank(s) but lanes "
                f"{lane_start}..{stop - 1} declare {expected.tolist()}"
            )
        for r in range(ranks):
            self.time[r][lane_start:stop] = clocks.time[r]
            self.compute_time[r][lane_start:stop] = clocks.compute_time[r]
            self.comm_time[r][lane_start:stop] = clocks.comm_time[r]

    # -- extraction --------------------------------------------------------

    def lane_snapshot(self, lane: int) -> dict[str, list[float]]:
        """The scalar snapshot of one lane: only its ``procs[lane]``
        live ranks appear, exactly like a dedicated run's ``Clocks``."""
        count = int(self.procs[lane])
        return {
            "time": [float(t[lane]) for t in self.time[:count]],
            "compute_time": [
                float(t[lane]) for t in self.compute_time[:count]
            ],
            "comm_time": [float(t[lane]) for t in self.comm_time[:count]],
        }

    def lane_elapsed(self, lane: int) -> float:
        times = [float(t[lane]) for t in self.time[: int(self.procs[lane])]]
        return max(times) if times else 0.0

    @property
    def elapsed(self):
        """Per-lane makespans over each lane's *valid* ranks only."""
        out = np.zeros(self.lanes, dtype=np.float64)
        for r, t in enumerate(self.time):
            out = np.where(self.valid[r], np.maximum(out, t), out)
        return out
