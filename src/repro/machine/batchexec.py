"""Lane-vectorized charging: one simulation, many machine models.

The batched sweep evaluator (:mod:`repro.sweep.batched`) exploits a
structural fact of the simulator: machine parameters are *write-only*
during a run.  Values, validity masks, control flow, fetch schedules,
and tier decisions never read the clocks, so two grid points that
differ only in simulator parameters (alpha/beta/flop rate) execute the
exact same instruction stream — only the ``dt`` values charged to the
virtual clocks differ.

This module makes those ``dt`` values *vectors*.  A
:class:`VectorMachine` stacks ``lanes`` scalar
:class:`~repro.model.MachineModel` parameter sets into ``(lanes,)``
arrays and evaluates the same closed-form charge expressions
(``alpha + beta*bytes*elements``, log-tree collectives, ``flops x
flop_time``) elementwise; a :class:`VectorClocks` holds per-rank
``(lanes,)`` clock vectors and applies every charge with the same
operation sequence as the scalar :class:`~repro.machine.stats.Clocks`.

Bitwise parity is by construction: IEEE-754 elementwise numpy ops in
an identical order produce, per lane, exactly the doubles the scalar
run produces (``np.add.accumulate`` is strictly sequential down the
instance axis; ``np.maximum`` agrees with ``max`` on non-NaN floats;
machine-independent quantities — trip counts, spans, element counts —
stay python scalars so no transcendental is re-evaluated in numpy).
The parity property suite byte-compares every lane against a dedicated
scalar simulation.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..model import MachineModel
from .stats import Clocks


class VectorMachine:
    """``lanes`` machine models evaluated elementwise.

    Presents the :class:`~repro.model.MachineModel` interface with
    every scalar parameter replaced by a ``(lanes,)`` float64 vector;
    each cost method returns the ``(lanes,)`` vector of per-model
    costs, computed with the same arithmetic (same operation order,
    same int->float conversions) as the scalar model, so lane ``m`` is
    bitwise equal to ``models[m]``'s answer.
    """

    def __init__(self, models: Sequence[MachineModel]):
        if not models:
            raise ValueError("VectorMachine needs at least one lane")
        self.models = tuple(models)
        self.lanes = len(self.models)
        self.name = f"vector[{','.join(m.name for m in self.models)}]"
        self.alpha = np.asarray([m.alpha for m in models], dtype=np.float64)
        self.beta = np.asarray([m.beta for m in models], dtype=np.float64)
        self.flop_time = np.asarray(
            [m.flop_time for m in models], dtype=np.float64
        )
        self.stmt_overhead = np.asarray(
            [m.stmt_overhead for m in models], dtype=np.float64
        )
        #: per-lane when the models disagree, scalar int otherwise (the
        #: common case; keeps ``beta * element_bytes`` an exact int
        #: scaling either way)
        sizes = {m.element_bytes for m in models}
        self.element_bytes = (
            models[0].element_bytes
            if len(sizes) == 1
            else np.asarray(
                [m.element_bytes for m in models], dtype=np.float64
            )
        )

    # -- point-to-point ----------------------------------------------------

    def message_time(self, elements: int) -> np.ndarray:
        return self.alpha + self.beta * self.element_bytes * max(elements, 0)

    # -- collectives -------------------------------------------------------

    @staticmethod
    def _rounds(procs: int) -> int:
        return max(1, math.ceil(math.log2(max(procs, 2))))

    def broadcast_time(self, elements: int, procs: int) -> np.ndarray:
        if procs <= 1:
            return np.zeros(self.lanes, dtype=np.float64)
        return self._rounds(procs) * self.message_time(elements)

    def reduce_time(self, elements: int, procs: int) -> np.ndarray:
        if procs <= 1:
            return np.zeros(self.lanes, dtype=np.float64)
        return self._rounds(procs) * self.message_time(elements)

    def shift_time(self, elements: int) -> np.ndarray:
        return self.message_time(elements)

    def gather_time(self, elements: int, procs: int) -> np.ndarray:
        if procs <= 1:
            return self.message_time(elements)
        return 2 * self._rounds(procs) * self.message_time(elements)

    def alltoall_time(self, elements: int, procs: int) -> np.ndarray:
        if procs <= 1:
            return np.zeros(self.lanes, dtype=np.float64)
        per_proc = max(elements // procs, 1)
        return (procs - 1) * self.alpha + (
            2 * self.beta * self.element_bytes * per_proc
        )

    def transfer_time(self, pattern, elements: int, span_procs: int):
        if pattern.kind == "none":
            return np.zeros(self.lanes, dtype=np.float64)
        if pattern.kind == "shift":
            return self.shift_time(elements)
        if pattern.kind == "broadcast":
            return self.broadcast_time(elements, span_procs)
        return self.gather_time(elements, span_procs)

    # -- computation -------------------------------------------------------

    def compute_time(self, flops: int, instances: int = 1) -> np.ndarray:
        return instances * (flops * self.flop_time + self.stmt_overhead)


class VectorClocks(Clocks):
    """Per-rank ``(lanes,)`` clock vectors driven by a
    :class:`VectorMachine`.

    Every charge method repeats the scalar :class:`Clocks` operation
    sequence with elementwise array arithmetic; rank entries are always
    *distinct* arrays (a shared object would couple ranks through
    in-place ``+=`` charging, which the scalar float semantics never
    do).  Tape assembly builds ``(instances, lanes)`` tapes so
    ``sequential_sum`` left-folds down the instance axis per lane.
    """

    def __init__(self, num_ranks: int, machine: VectorMachine):
        super().__init__(num_ranks, machine)
        self.lanes = machine.lanes
        zeros = lambda: np.zeros(machine.lanes, dtype=np.float64)  # noqa: E731
        self.time = [zeros() for _ in range(num_ranks)]
        self.compute_time = [zeros() for _ in range(num_ranks)]
        self.comm_time = [zeros() for _ in range(num_ranks)]

    # -- charging ----------------------------------------------------------

    def charge_message(self, src: int, dst: int, elements: int) -> None:
        dt = self.machine.message_time(elements)
        start = np.maximum(self.time[src], self.time[dst])
        self.time[src] = start + dt
        self.time[dst] = start + dt
        self.comm_time[src] += dt
        self.comm_time[dst] += dt

    def charge_message_amortized(
        self, src: int, dst: int, elements: int, startup: bool
    ) -> None:
        dt = self.machine.beta * self.machine.element_bytes * elements
        if startup:
            dt = dt + self.machine.alpha
        start = np.maximum(self.time[src], self.time[dst])
        self.time[src] = start + dt
        self.time[dst] = start + dt
        self.comm_time[src] += dt
        self.comm_time[dst] += dt

    def charge_collective(
        self, ranks: list, elements: int, kind: str
    ) -> None:
        if len(ranks) <= 1:
            return
        if kind == "reduce":
            dt = self.machine.reduce_time(elements, len(ranks))
        else:
            dt = self.machine.broadcast_time(elements, len(ranks))
        start = self.time[ranks[0]]
        for r in ranks[1:]:
            start = np.maximum(start, self.time[r])
        for r in ranks:
            self.time[r] = start + dt
            self.comm_time[r] += dt

    # -- tape assembly -----------------------------------------------------

    def tape(self, dts: list) -> np.ndarray:
        if not dts:
            return np.empty((0, self.lanes), dtype=np.float64)
        return np.asarray(dts, dtype=np.float64).reshape(len(dts), self.lanes)

    def tile(self, tape: np.ndarray, n: int) -> np.ndarray:
        return np.tile(tape, (n, 1))

    def cat(self, parts: list) -> np.ndarray:
        return np.concatenate(parts, axis=0) if parts else self.tape([])

    # -- extraction --------------------------------------------------------

    def lane_snapshot(self, lane: int) -> dict[str, list[float]]:
        """The scalar ``Clocks.snapshot()`` of one lane: plain python
        floats (``float(np.float64)`` is exact), ready for the
        canonical-stats JSON byte comparison."""
        return {
            "time": [float(t[lane]) for t in self.time],
            "compute_time": [float(t[lane]) for t in self.compute_time],
            "comm_time": [float(t[lane]) for t in self.comm_time],
        }

    def lane_elapsed(self, lane: int) -> float:
        """``max(time)`` of one lane, exactly as the scalar property."""
        times = [float(t[lane]) for t in self.time]
        return max(times) if times else 0.0

    @property
    def elapsed(self):
        """The ``(lanes,)`` vector of per-lane makespans."""
        if not self.time:
            return np.zeros(self.lanes, dtype=np.float64)
        out = self.time[0]
        for t in self.time[1:]:
            out = np.maximum(out, t)
        return out
