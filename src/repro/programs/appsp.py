"""APPSP — the NAS pseudo-application kernel of the paper's Figure 6
and Table 3, in four configurations.

The kernel is the sweep structure the paper's Section 3.2 dissects: a
work array ``C`` is computed and consumed inside the ``k`` sweep — it is
privatizable with respect to the ``k`` loop (NEW clause) but **not**
with respect to the ``j`` loop, because consecutive ``j`` iterations
exchange values through ``C(i, j-1, 1)``. A ``z``-sweep with a true
recurrence along ``k`` follows, which is what makes multi-dimensional
distributions attractive in the first place.

Table 3 variants (matching the paper's Section 5.3 description):

* ``1-D``  — ``DISTRIBUTE (*,*,*,BLOCK)`` on P(procs) "with
  redistribution (transpose) of data in the sweepz subroutine": the
  z-sweep runs on j-distributed copies, with a global transpose in and
  out (``sweepz="transpose"``, the default for 1-D). Full privatization
  of ``C`` is legal;
* ``2-D``  — ``DISTRIBUTE (*,*,BLOCK,BLOCK)`` on a 2-D grid, "a fixed
  2-D distribution throughout the program": the z-sweep pipelines along
  the distributed k dimension (``sweepz="direct"``). Full privatization
  of ``C`` fails (AlignLevel of the target exceeds the NEW loop's
  level) and only **partial privatization** — partition the ``j``
  dimension of ``C``, privatize along the ``k`` grid dimension —
  exploits both levels of parallelism;
* each × array privatization enabled/disabled
  (``CompilerOptions.privatize_arrays`` / ``partial_privatization``).
"""

from __future__ import annotations

_SWEEPZ_DIRECT = """    DO j = 2, ny - 1
      DO k = 3, nz - 1
        DO i = 2, nx - 1
          RSD(3, i, j, k) = RSD(3, i, j, k - 1) + 0.5 * RSD(1, i, j, k)
        END DO
      END DO
    END DO
"""

#: "redistribution (transpose) of data in the sweepz subroutine":
#: copy the swept components into j-distributed temporaries, sweep
#: locally along k, copy back.
_SWEEPZ_TRANSPOSE = """    DO k = 2, nz - 1
      DO j = 2, ny - 1
        DO i = 2, nx - 1
          RT1(i, j, k) = RSD(1, i, j, k)
          RT3(i, j, k) = RSD(3, i, j, k)
        END DO
      END DO
    END DO
    DO j = 2, ny - 1
      DO k = 3, nz - 1
        DO i = 2, nx - 1
          RT3(i, j, k) = RT3(i, j, k - 1) + 0.5 * RT1(i, j, k)
        END DO
      END DO
    END DO
    DO k = 3, nz - 1
      DO j = 2, ny - 1
        DO i = 2, nx - 1
          RSD(3, i, j, k) = RT3(i, j, k)
        END DO
      END DO
    END DO
"""

APPSP_TEMPLATE = """
PROGRAM APPSP
  PARAMETER (nx = {nx}, ny = {ny}, nz = {nz}, niter = {niter})
  REAL U(5, nx, ny, nz), RSD(5, nx, ny, nz)
  REAL C(nx, ny, 2)
{transpose_decls}!HPF$ PROCESSORS PROCS({procs_spec})
!HPF$ ALIGN U(m, i, j, k) WITH RSD(m, i, j, k)
!HPF$ DISTRIBUTE ({dist_spec}) :: RSD
{transpose_dist}  DO it = 1, niter
{new_clause}    DO k = 2, nz - 1
      DO j = 2, ny - 1
        DO i = 2, nx - 1
          C(i, j, 1) = RSD(1, i, j, k) + 0.5 * U(2, i, j, k)
          C(i, j, 2) = RSD(3, i, j, k) - 0.25 * U(2, i, j, k)
        END DO
      END DO
      DO j = 3, ny - 1
        DO i = 2, nx - 1
          RSD(1, i, j, k) = C(i, j, 1) * C(i, j - 1, 1) + C(i, j, 2) &
            + U(4, i, j, k)
          RSD(2, i, j, k) = C(i, j, 1) - C(i, j - 1, 2)
        END DO
      END DO
    END DO
{sweepz}  END DO
END PROGRAM
"""


def appsp_source(
    nx: int = 64,
    ny: int = 64,
    nz: int = 64,
    niter: int = 5,
    procs: int = 16,
    distribution: str = "2d",
    use_new_clause: bool = True,
    sweepz: str | None = None,
) -> str:
    """Mini-HPF APPSP kernel source.

    ``distribution``: ``"1d"`` → ``(*,*,*,BLOCK)`` over P(procs);
    ``"2d"`` → ``(*,*,BLOCK,BLOCK)`` over a near-square 2-D grid.

    ``sweepz``: ``"transpose"`` (redistribute, sweep locally, copy back
    — the paper's 1-D variant, and the 1-D default) or ``"direct"``
    (pipeline the recurrence along k — the fixed-distribution 2-D
    variant, and the 2-D default).

    ``use_new_clause=False`` omits the ``INDEPENDENT, NEW(C)`` directive
    so the compiler must infer C's privatizability automatically
    (``CompilerOptions(auto_privatize_arrays=True)``).
    """
    if distribution == "1d":
        procs_spec = str(procs)
        dist_spec = "*, *, *, BLOCK"
        sweepz = sweepz or "transpose"
    elif distribution == "2d":
        p0, p1 = _square_factors(procs)
        procs_spec = f"{p0}, {p1}"
        dist_spec = "*, *, BLOCK, BLOCK"
        sweepz = sweepz or "direct"
    else:
        raise ValueError(f"unknown distribution {distribution!r}")

    if sweepz == "direct":
        sweepz_body = _SWEEPZ_DIRECT
        transpose_decls = ""
        transpose_dist = ""
    elif sweepz == "transpose":
        if distribution != "1d":
            raise ValueError("the transpose sweepz is the 1-D variant")
        sweepz_body = _SWEEPZ_TRANSPOSE
        transpose_decls = "  REAL RT1(nx, ny, nz), RT3(nx, ny, nz)\n"
        transpose_dist = "!HPF$ DISTRIBUTE (*, BLOCK, *) :: RT1, RT3\n"
    else:
        raise ValueError(f"unknown sweepz variant {sweepz!r}")

    new_clause = "!HPF$ INDEPENDENT, NEW(C)\n" if use_new_clause else ""
    return APPSP_TEMPLATE.format(
        nx=nx,
        ny=ny,
        nz=nz,
        niter=niter,
        procs_spec=procs_spec,
        dist_spec=dist_spec,
        new_clause=new_clause,
        sweepz=sweepz_body,
        transpose_decls=transpose_decls,
        transpose_dist=transpose_dist,
    )


def _square_factors(p: int) -> tuple[int, int]:
    best = (1, p)
    for a in range(1, int(p**0.5) + 1):
        if p % a == 0:
            best = (p // a, a)
    return best


def appsp_inputs(nx: int, ny: int, nz: int, seed: int = 23):
    import numpy as np

    rng = np.random.default_rng(seed)
    u = rng.uniform(0.5, 1.5, size=(5, nx, ny, nz))
    rsd = rng.uniform(0.5, 1.5, size=(5, nx, ny, nz))
    return {"U": u, "RSD": rsd}
