"""DGEFA — LINPACK Gaussian elimination with partial pivoting, columns
distributed ``(*, CYCLIC)``, with the BLAS-1 calls (IDAMAX/DSCAL/DAXPY)
inlined by hand as in the paper.

The paper's Table 2 isolates the mapping of the pivot-search reduction
scalars: the ``maxloc`` over a single column is recognized as a
reduction whose result is **aligned with the owning column** (so the
pivot search runs on one processor and only the pivot index is
broadcast), versus the 'Default' baseline where the reduction scalar is
replicated — forcing every processor to execute the search and hence
broadcasting the whole column every elimination step.
"""

from __future__ import annotations

DGEFA_TEMPLATE = """
PROGRAM DGEFA
  PARAMETER (n = {n})
  REAL A(n,n)
  REAL AMD(n)
  REAL pmax, t, pinv
  INTEGER l
!HPF$ PROCESSORS PROCS({procs})
!HPF$ ALIGN AMD(j) WITH A(*, j)
!HPF$ DISTRIBUTE (*, CYCLIC) :: A
  DO k = 1, n - 1
    pmax = 0.0
    l = k
    DO i = k, n
      IF (ABS(A(i,k)) > pmax) THEN
        pmax = ABS(A(i,k))
        l = i
      END IF
    END DO
    AMD(k) = l
    IF (pmax > 0.0) THEN
      DO j = k, n
        t = A(l,j)
        A(l,j) = A(k,j)
        A(k,j) = t
      END DO
      pinv = -1.0 / A(k,k)
      DO i = k + 1, n
        A(i,k) = A(i,k) * pinv
      END DO
      DO j = k + 1, n
        DO i = k + 1, n
          A(i,j) = A(i,j) + A(i,k) * A(k,j)
        END DO
      END DO
    END IF
  END DO
END PROGRAM
"""


def dgefa_source(n: int = 1000, procs: int = 16) -> str:
    """Mini-HPF DGEFA source (pivot vector stored in AMD)."""
    return DGEFA_TEMPLATE.format(n=n, procs=procs)


def dgefa_inputs(n: int, seed: int = 11):
    """A well-conditioned random matrix (diagonally dominated)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.arange(n), np.arange(n)] += n  # dominance: stable elimination
    return {"A": a}


def dgefa_reference(a):
    """NumPy reference of the same unblocked right-looking elimination
    (for semantic validation of the simulator at small sizes)."""
    import numpy as np

    a = np.array(a, dtype=float)
    n = a.shape[0]
    pivots = np.zeros(n, dtype=float)
    for k in range(n - 1):
        col = np.abs(a[k:, k])
        l = int(np.argmax(col)) + k
        pivots[k] = l + 1  # Fortran 1-based
        if a[l, k] != 0.0:
            a[[l, k], k:] = a[[k, l], k:]
            a[k + 1 :, k] *= -1.0 / a[k, k]
            a[k + 1 :, k + 1 :] += np.outer(a[k + 1 :, k], a[k, k + 1 :])
    return a, pivots


DGEFA_MODULAR_TEMPLATE = """
PROGRAM DGEFA
  PARAMETER (n = {n})
  REAL A(n,n)
  REAL AMD(n)
  REAL pmax, pinv
  INTEGER l
!HPF$ PROCESSORS PROCS({procs})
!HPF$ ALIGN AMD(j) WITH A(*, j)
!HPF$ DISTRIBUTE (*, CYCLIC) :: A
  DO k = 1, n - 1
    CALL IDAMAX(A, k, l, pmax)
    AMD(k) = l
    IF (pmax > 0.0) THEN
      CALL DSWAP(A, k, l)
      pinv = -1.0 / A(k,k)
      CALL DSCAL(A, k, pinv)
      CALL DAXPYN(A, k)
    END IF
  END DO
END PROGRAM

SUBROUTINE IDAMAX(X, k, l, pmax)
  PARAMETER (n = {n})
  REAL X(n,n)
  REAL pmax
  INTEGER l, k
  pmax = 0.0
  l = k
  DO i = k, n
    IF (ABS(X(i,k)) > pmax) THEN
      pmax = ABS(X(i,k))
      l = i
    END IF
  END DO
END SUBROUTINE

SUBROUTINE DSWAP(X, k, l)
  PARAMETER (n = {n})
  REAL X(n,n)
  INTEGER k, l
  REAL t
  DO j = k, n
    t = X(l,j)
    X(l,j) = X(k,j)
    X(k,j) = t
  END DO
END SUBROUTINE

SUBROUTINE DSCAL(X, k, f)
  PARAMETER (n = {n})
  REAL X(n,n)
  REAL f
  INTEGER k
  DO i = k + 1, n
    X(i,k) = X(i,k) * f
  END DO
END SUBROUTINE

SUBROUTINE DAXPYN(X, k)
  PARAMETER (n = {n})
  REAL X(n,n)
  INTEGER k
  DO j = k + 1, n
    DO i = k + 1, n
      X(i,j) = X(i,j) + X(i,k) * X(k,j)
    END DO
  END DO
END SUBROUTINE
"""


def dgefa_modular_source(n: int = 1000, procs: int = 16) -> str:
    """DGEFA with the BLAS-1 operations as subroutines — the form the
    paper started from before "procedure-inlining by hand"; this
    reproduction's front end inlines the calls automatically
    (:mod:`repro.lang.inline`)."""
    return DGEFA_MODULAR_TEMPLATE.format(n=n, procs=procs)
