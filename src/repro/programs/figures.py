"""The paper's Figures 1, 2, 4, 5, 6 and 7 as compilable mini-HPF
fragments — each reproduced verbatim (modulo the dialect's syntax) so
the tests can assert the exact compilation behaviour the paper claims.
(Figure 3 is the DetermineMapping pseudocode itself, implemented in
``repro.core.scalar_mapping``.)
"""

from __future__ import annotations

#: Figure 1 — alignment choices for privatized scalars. Expected:
#: m -> induction variable, closed form i+1, private without alignment;
#: x -> aligned with the consumer reference D(m);
#: y -> aligned with the producer reference A(i);
#: z -> private without alignment (rhs fully replicated).
FIGURE1 = """
PROGRAM FIG1
  PARAMETER (n = {n})
  REAL A(n), B(n), C(n), D(n), E(n), F(n)
  REAL x, y, z
  INTEGER m
!HPF$ PROCESSORS PROCS({procs})
!HPF$ ALIGN (i) WITH A(i) :: B, C, D
!HPF$ ALIGN (i) WITH A(*) :: E, F
!HPF$ DISTRIBUTE (BLOCK) :: A
  m = 2
  DO i = 2, n - 1
    m = m + 1
    x = B(i) + C(i)
    y = A(i) + B(i)
    z = E(i) + F(i)
    A(i + 1) = y / z
    D(m) = x / z
  END DO
END PROGRAM
"""

#: Figure 2 — availability requirements for subscripts. Expected:
#: consumer of p's use is the lhs A(i) (H(i,p) needs no communication),
#: consumer of q's use is the dummy replicated reference (G(q,i) needs
#: communication, so its subscript must be broadcast).
FIGURE2 = """
PROGRAM FIG2
  PARAMETER (n = {n})
  REAL H(n, n), G(n, n), A(n), B(n), C(n)
  INTEGER p, q
!HPF$ PROCESSORS PROCS({procs})
!HPF$ ALIGN G(i, j) WITH H(i, j)
!HPF$ ALIGN A(i) WITH H(i, *)
!HPF$ DISTRIBUTE (BLOCK, *) :: H
  DO i = 1, n
    p = INT(B(i))
    q = INT(C(i))
    A(i) = H(i, p) + G(q, i)
  END DO
END PROGRAM
"""

#: Figure 4 — AlignLevel for array references. Expected:
#: AlignLevel(A(i,j,k)) = 2 (the j loop), AlignLevel(B(s,j,k)) = 3 (the
#: k loop, outermost loop in which subscript s is invariant).
FIGURE4 = """
PROGRAM FIG4
  PARAMETER (n = {n})
  REAL A(n, n, n), B(n, n, n)
  INTEGER s
!HPF$ PROCESSORS PROCS({p0}, {p1})
!HPF$ DISTRIBUTE (BLOCK, BLOCK, *) :: A, B
  DO i = 1, n
    DO j = 1, n
      s = i * j - i + 1
      DO k = 1, n
        A(i, j, k) = 1.0
        B(s, j, k) = 2.0
      END DO
    END DO
  END DO
END PROGRAM
"""

#: Figure 5 — scalar involved in a reduction. Expected: the sum over j
#: is recognized; s is replicated along the second grid dimension and
#: aligned with the i-th row of A in the first, so the reduction
#: proceeds without broadcasting the row.
FIGURE5 = """
PROGRAM FIG5
  PARAMETER (n = {n})
  REAL A(n, n), B(n)
  REAL s
!HPF$ PROCESSORS PROCS({p0}, {p1})
!HPF$ ALIGN B(i) WITH A(i, *)
!HPF$ DISTRIBUTE (BLOCK, BLOCK) :: A
  DO i = 1, n
    s = 0.0
    DO j = 1, n
      s = s + A(i, j)
    END DO
    B(i) = s
  END DO
END PROGRAM
"""

#: Figure 6 — need for partial privatization (see repro.programs.appsp
#: for the full kernel). Expected under the 2-D distribution: full
#: privatization of C fails; partial privatization partitions C's j
#: dimension on grid dim 0 and privatizes grid dim 1.
FIGURE6 = """
PROGRAM FIG6
  PARAMETER (nx = {n}, ny = {n}, nz = {n})
  REAL RSD(5, nx, ny, nz)
  REAL C(nx, ny, 2)
!HPF$ PROCESSORS PROCS({p0}, {p1})
!HPF$ DISTRIBUTE (*, *, BLOCK, BLOCK) :: RSD
!HPF$ INDEPENDENT, NEW(C)
  DO k = 2, nz - 1
    DO j = 2, ny - 1
      DO i = 2, nx - 1
        C(i, j, 1) = RSD(2, i, j, k)
      END DO
    END DO
    DO j = 3, ny - 1
      DO i = 2, nx - 1
        RSD(1, i, j, k) = C(i, j - 1, 1)
      END DO
    END DO
  END DO
END PROGRAM
"""

#: Figure 7 — privatized execution of control flow statements.
#: Expected: both IFs privatized (no branch leaves the i loop), B(i)
#: needs no communication for the predicates, the loop stays parallel.
FIGURE7 = """
PROGRAM FIG7
  PARAMETER (n = {n})
  REAL A(n), B(n), C(n)
!HPF$ PROCESSORS PROCS({procs})
!HPF$ ALIGN (i) WITH A(i) :: B, C
!HPF$ DISTRIBUTE (BLOCK) :: A
  DO i = 1, n
    IF (B(i) /= 0.0) THEN
      A(i) = A(i) / B(i)
      IF (B(i) < 0.0) GO TO 100
    ELSE
      A(i) = C(i)
    END IF
    C(i) = C(i) * C(i)
100 CONTINUE
  END DO
END PROGRAM
"""


def figure1_source(n: int = 100, procs: int = 4) -> str:
    return FIGURE1.format(n=n, procs=procs)


def figure2_source(n: int = 64, procs: int = 4) -> str:
    return FIGURE2.format(n=n, procs=procs)


def figure4_source(n: int = 16, p0: int = 2, p1: int = 2) -> str:
    return FIGURE4.format(n=n, p0=p0, p1=p1)


def figure5_source(n: int = 64, p0: int = 2, p1: int = 2) -> str:
    return FIGURE5.format(n=n, p0=p0, p1=p1)


def figure6_source(n: int = 12, p0: int = 2, p1: int = 2) -> str:
    return FIGURE6.format(n=n, p0=p0, p1=p1)


def figure7_source(n: int = 64, procs: int = 4) -> str:
    return FIGURE7.format(n=n, procs=procs)
