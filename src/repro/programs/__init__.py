"""Benchmark programs and paper-figure fragments in the mini-HPF
dialect."""

from .appsp import appsp_inputs, appsp_source
from .dgefa import dgefa_inputs, dgefa_modular_source, dgefa_reference, dgefa_source
from .figures import (
    figure1_source,
    figure2_source,
    figure4_source,
    figure5_source,
    figure6_source,
    figure7_source,
)
from .tomcatv import tomcatv_inputs, tomcatv_source

__all__ = [
    "appsp_inputs",
    "appsp_source",
    "dgefa_inputs",
    "dgefa_modular_source",
    "dgefa_reference",
    "dgefa_source",
    "figure1_source",
    "figure2_source",
    "figure4_source",
    "figure5_source",
    "figure6_source",
    "figure7_source",
    "tomcatv_inputs",
    "tomcatv_source",
]
