"""TOMCATV — mesh generation with Thompson's solver (SPEC92FP), in the
mini-HPF dialect.

The kernel keeps the full SPEC structure — residual computation,
tridiagonal solve (forward elimination and back-substitution along the
collapsed ``i`` dimension, which stays processor-local under the
``(*, BLOCK)`` distribution), residual max-reduction, and mesh update —
and in particular the part that drives the paper's Table 1: the main
loop nest defines a chain of privatizable scalars (``xx, yx, xy, yy, a,
b, c, pxx, …, xm``) from stencil reads of the coordinate arrays and
consumes them in writes to the residual arrays.

* replicating those scalars forces every processor to execute the whole
  nest and broadcasts the coordinate arrays ⇒ no speedup at all;
* aligning them with *producer* references (``X(i, j+1)``) puts each
  scalar one column away from its consumers ⇒ per-element inner-loop
  messages;
* the paper's algorithm aligns them with *consumer* references
  (``RX(i, j)``) ⇒ the only remaining communication is the stencil
  boundary exchange, vectorized out of the i/j loops.

The residual max-reductions (``rxm``/``rym``) exercise the Section-2.3
reduction mapping as well.

Distribution is ``(*, BLOCK)`` over a 1-D grid, as in the paper's
Table 1 ("(*, block), n = 513").
"""

from __future__ import annotations

TOMCATV_TEMPLATE = """
PROGRAM TOMCATV
  PARAMETER (n = {n}, niter = {niter})
  REAL X(n,n), Y(n,n), RX(n,n), RY(n,n), AA(n,n), DD(n,n), D(n,n)
  REAL xx, yx, xy, yy, a, b, c
  REAL pxx, qxx, pyy, qyy, pxy, qxy
  REAL xm
  REAL rxm, rym
!HPF$ PROCESSORS PROCS({procs})
!HPF$ ALIGN (i,j) WITH X(i,j) :: Y, RX, RY, AA, DD, D
!HPF$ DISTRIBUTE (*, BLOCK) :: X
  DO it = 1, niter
    DO j = 2, n - 1
      DO i = 2, n - 1
        xx = X(i+1,j) - X(i-1,j)
        yx = Y(i+1,j) - Y(i-1,j)
        xy = X(i,j+1) - X(i,j-1)
        yy = Y(i,j+1) - Y(i,j-1)
        a = 0.25 * (xy*xy + yy*yy)
        b = 0.25 * (xx*xx + yx*yx)
        c = 0.125 * (xx*xy + yx*yy)
        AA(i,j) = -b
        DD(i,j) = b + b + a * 2.0
        pxx = X(i+1,j) - 2.0*X(i,j) + X(i-1,j)
        qxx = Y(i+1,j) - 2.0*Y(i,j) + Y(i-1,j)
        pyy = X(i,j+1) - 2.0*X(i,j) + X(i,j-1)
        qyy = Y(i,j+1) - 2.0*Y(i,j) + Y(i,j-1)
        pxy = X(i+1,j+1) - X(i+1,j-1) - X(i-1,j+1) + X(i-1,j-1)
        qxy = Y(i+1,j+1) - Y(i+1,j-1) - Y(i-1,j+1) + Y(i-1,j-1)
        RX(i,j) = a*pxx + b*pyy - c*pxy
        RY(i,j) = a*qxx + b*qyy - c*qxy
      END DO
    END DO
    rxm = 0.0
    rym = 0.0
    DO j = 2, n - 1
      DO i = 2, n - 1
        rxm = MAX(rxm, ABS(RX(i,j)))
        rym = MAX(rym, ABS(RY(i,j)))
      END DO
    END DO
    DO j = 2, n - 1
      D(2,j) = 1.0 / DD(2,j)
      DO i = 3, n - 1
        xm = AA(i,j) * D(i-1,j)
        D(i,j) = 1.0 / (DD(i,j) - AA(i,j) * xm)
        RX(i,j) = RX(i,j) - RX(i-1,j) * xm
        RY(i,j) = RY(i,j) - RY(i-1,j) * xm
      END DO
    END DO
    DO j = 2, n - 1
      RX(n-1,j) = RX(n-1,j) * D(n-1,j)
      RY(n-1,j) = RY(n-1,j) * D(n-1,j)
      DO i = n - 2, 2, -1
        RX(i,j) = (RX(i,j) - AA(i+1,j) * RX(i+1,j)) * D(i,j)
        RY(i,j) = (RY(i,j) - AA(i+1,j) * RY(i+1,j)) * D(i,j)
      END DO
    END DO
    DO j = 2, n - 1
      DO i = 2, n - 1
        X(i,j) = X(i,j) + RX(i,j)
        Y(i,j) = Y(i,j) + RY(i,j)
      END DO
    END DO
  END DO
END PROGRAM
"""


def tomcatv_source(n: int = 513, niter: int = 5, procs: int = 16) -> str:
    """Mini-HPF TOMCATV source for the given problem size and grid."""
    return TOMCATV_TEMPLATE.format(n=n, niter=niter, procs=procs)


def tomcatv_inputs(n: int, seed: int = 7):
    """Deterministic coordinate-mesh initial data."""
    import numpy as np

    rng = np.random.default_rng(seed)
    base_x = np.linspace(0.0, 1.0, n)
    base_y = np.linspace(0.0, 1.0, n)
    x = np.add.outer(base_x, 0.1 * base_y) + 0.01 * rng.standard_normal((n, n))
    y = np.add.outer(0.1 * base_x, base_y) + 0.01 * rng.standard_normal((n, n))
    # DD is divided by before it is first written only in pathological
    # schedules; initialize away from zero for safety.
    dd = np.ones((n, n))
    return {"X": x, "Y": y, "DD": dd}
