"""Exception hierarchy for the repro compiler and runtime.

Every error raised by the package derives from :class:`ReproError`, so
callers can catch one type. Errors carry optional source locations
(line, column) to make diagnostics from the mini-HPF front end usable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SourceError(ReproError):
    """An error tied to a location in mini-HPF source text."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        loc = ""
        if line is not None:
            loc = f" at line {line}" + (f", col {col}" if col is not None else "")
        super().__init__(message + loc)


class LexError(SourceError):
    """Invalid character or malformed token in the source text."""


class ParseError(SourceError):
    """Source text does not conform to the mini-HPF grammar."""


class DirectiveError(SourceError):
    """Malformed or inconsistent !HPF$ directive."""


class SemanticError(ReproError):
    """Program is grammatical but semantically invalid (bad types,
    undeclared names, inconsistent shapes, ...)."""


class AnalysisError(ReproError):
    """Internal failure of a program-analysis pass."""


class MappingError(ReproError):
    """Invalid or inconsistent data-mapping request (distribution,
    alignment, privatization)."""


class PartitionError(ReproError):
    """Computation-partitioning failure (no executor set derivable)."""


class CommError(ReproError):
    """Communication-analysis failure."""


class CodegenError(ReproError):
    """SPMD lowering failure."""


class SimulationError(ReproError):
    """Runtime failure inside the machine simulator."""


class InterpreterError(ReproError):
    """Runtime failure inside the sequential reference interpreter."""
