"""Communication and computation cost model (IBM SP2 class).

This module lives at the package top level so that both the compiler
driver (repro.core) and the communication/back-end packages can use it
without import cycles.

The paper's mapping algorithm "is guided by a realistic communication
cost model which takes into account the placement of communication, and
hence, optimizations like message vectorization". This module provides
that model, with α–β (latency/bandwidth) message costs, log-tree
collectives, and a sustained flop rate for the computation side.

Default constants approximate a 1997 IBM SP2 thin node with the
high-performance switch:

* message latency ≈ 40 µs,
* point-to-point bandwidth ≈ 35 MB/s,
* sustained compute ≈ 50 Mflop/s,
* REAL element size 8 bytes.

Absolute numbers are only meant to land in the right ballpark; the
reproduction targets the *shape* of the paper's tables (orderings,
ratios, scaling trends).
"""

from __future__ import annotations

import math
from dataclasses import dataclass



@dataclass(frozen=True)
class MachineModel:
    """Cost parameters of the simulated distributed-memory machine."""

    name: str = "SP2-like"
    alpha: float = 40e-6  # message startup (s)
    beta: float = 1.0 / 35e6  # per-byte transfer time (s/B)
    flop_time: float = 1.0 / 50e6  # sustained per-flop time (s)
    element_bytes: int = 8
    #: per-statement-instance loop/addressing overhead (s); folded into
    #: compute cost so tiny statements are not free
    stmt_overhead: float = 10e-9

    # -- point-to-point ----------------------------------------------------

    def message_time(self, elements: int) -> float:
        """One point-to-point message of ``elements`` array elements."""
        return self.alpha + self.beta * self.element_bytes * max(elements, 0)

    # -- collectives ----------------------------------------------------------

    @staticmethod
    def _rounds(procs: int) -> int:
        return max(1, math.ceil(math.log2(max(procs, 2))))

    def broadcast_time(self, elements: int, procs: int) -> float:
        """Binomial-tree broadcast to ``procs`` processors."""
        if procs <= 1:
            return 0.0
        return self._rounds(procs) * self.message_time(elements)

    def reduce_time(self, elements: int, procs: int) -> float:
        """Binomial-tree (all)reduce across ``procs`` processors."""
        if procs <= 1:
            return 0.0
        return self._rounds(procs) * self.message_time(elements)

    def shift_time(self, elements: int) -> float:
        """Nearest-neighbour (collective) shift: one exchange."""
        return self.message_time(elements)

    def gather_time(self, elements: int, procs: int) -> float:
        """General/irregular transfer, costed as a two-phase exchange."""
        if procs <= 1:
            return self.message_time(elements)
        return 2 * self._rounds(procs) * self.message_time(elements)

    def alltoall_time(self, elements: int, procs: int) -> float:
        """All-to-all personalized exchange (a global transpose):
        ``elements`` is the *total* redistributed volume; each processor
        sends and receives roughly ``elements / procs``."""
        if procs <= 1:
            return 0.0
        per_proc = max(elements // procs, 1)
        return (procs - 1) * self.alpha + 2 * self.beta * self.element_bytes * per_proc

    # -- pattern dispatch -----------------------------------------------------------

    def transfer_time(
        self,
        pattern,
        elements: int,
        span_procs: int,
    ) -> float:
        """Per-instance time of one classified transfer.

        ``span_procs`` — number of processors the transfer spans
        (broadcast fan-out, or the parallel extent for general
        patterns).
        """
        if pattern.kind == "none":
            return 0.0
        if pattern.kind == "shift":
            return self.shift_time(elements)
        if pattern.kind == "broadcast":
            return self.broadcast_time(elements, span_procs)
        return self.gather_time(elements, span_procs)

    # -- computation -----------------------------------------------------------------

    def compute_time(self, flops: int, instances: int = 1) -> float:
        return instances * (flops * self.flop_time + self.stmt_overhead)


#: The default machine used by benchmarks: 1997 SP2 thin nodes.
SP2 = MachineModel()


def flops_of_expr(expr) -> int:
    """Approximate flop count of evaluating an expression."""
    from .ir.expr import BinOp, IntrinsicCall, UnOp

    if isinstance(expr, BinOp):
        base = flops_of_expr(expr.left) + flops_of_expr(expr.right)
        if expr.op in ("+", "-", "*"):
            return base + 1
        if expr.op == "/":
            return base + 4
        if expr.op == "**":
            return base + 10
        return base + 1  # comparisons / logicals
    if isinstance(expr, UnOp):
        return flops_of_expr(expr.operand) + 1
    if isinstance(expr, IntrinsicCall):
        inner = sum(flops_of_expr(a) for a in expr.args)
        heavy = {"SQRT": 12, "EXP": 20, "LOG": 20, "SIN": 20, "COS": 20}
        return inner + heavy.get(expr.name, 1)
    return 0
