"""Intermediate representation: symbols, expressions, statements,
procedures, CFG, and AST lowering."""

from . import expr, stmt
from .build import IRBuilder, build_procedure, parse_and_build
from .cfg import CFG, CFGNode, build_cfg
from .expr import (
    AffineForm,
    ArrayElemRef,
    BinOp,
    Const,
    Expr,
    IntrinsicCall,
    Ref,
    ScalarRef,
    UnOp,
    affine_form,
    clone_expr,
    expr_symbols,
    substitute_scalar,
)
from .program import (
    AlignSpec,
    DistributeSpec,
    Procedure,
    ProcessorsSpec,
)
from .stmt import (
    AssignStmt,
    CallStmt,
    ContinueStmt,
    GotoStmt,
    IfStmt,
    LoopStmt,
    Stmt,
    StopStmt,
)
from .symbols import ScalarType, Symbol, SymbolKind, SymbolTable, implicit_type

__all__ = [
    "expr",
    "stmt",
    "IRBuilder",
    "build_procedure",
    "parse_and_build",
    "CFG",
    "CFGNode",
    "build_cfg",
    "AffineForm",
    "ArrayElemRef",
    "BinOp",
    "Const",
    "Expr",
    "IntrinsicCall",
    "Ref",
    "ScalarRef",
    "UnOp",
    "affine_form",
    "clone_expr",
    "expr_symbols",
    "substitute_scalar",
    "AlignSpec",
    "DistributeSpec",
    "Procedure",
    "ProcessorsSpec",
    "AssignStmt",
    "CallStmt",
    "ContinueStmt",
    "GotoStmt",
    "IfStmt",
    "LoopStmt",
    "Stmt",
    "StopStmt",
    "ScalarType",
    "Symbol",
    "SymbolKind",
    "SymbolTable",
    "implicit_type",
]
