"""Statement-granularity control-flow graph.

Each IR statement is one CFG node (programs here are small enough that
basic-block merging buys nothing). Loops contribute a header node with
a back edge from the end of their body; IFs branch and re-join; GOTOs
jump to the node of their labeled target.

The CFG is consumed by dominance / SSA / liveness in
:mod:`repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AnalysisError
from .program import Procedure
from .stmt import (
    AssignStmt,
    CallStmt,
    ContinueStmt,
    GotoStmt,
    IfStmt,
    LoopStmt,
    Stmt,
    StopStmt,
)


@dataclass
class CFGNode:
    """One node of the CFG. ``stmt`` is None for ENTRY/EXIT."""

    index: int
    stmt: Stmt | None
    kind: str  # "entry" | "exit" | "stmt"
    preds: list["CFGNode"] = field(default_factory=list, repr=False)
    succs: list["CFGNode"] = field(default_factory=list, repr=False)

    def __hash__(self) -> int:
        return self.index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CFGNode) and other.index == self.index

    def __str__(self) -> str:
        if self.kind != "stmt":
            return self.kind.upper()
        return str(self.stmt)


class CFG:
    """Control-flow graph of one procedure."""

    def __init__(self, proc: Procedure):
        self.proc = proc
        self.nodes: list[CFGNode] = []
        self.entry = self._new_node(None, "entry")
        self.exit = self._new_node(None, "exit")
        self._node_of_stmt: dict[int, CFGNode] = {}
        self._build()

    # -- construction ----------------------------------------------------------

    def _new_node(self, stmt: Stmt | None, kind: str = "stmt") -> CFGNode:
        node = CFGNode(index=len(self.nodes), stmt=stmt, kind=kind)
        self.nodes.append(node)
        return node

    def _edge(self, src: CFGNode, dst: CFGNode) -> None:
        if dst not in src.succs:
            src.succs.append(dst)
        if src not in dst.preds:
            dst.preds.append(src)

    def _build(self) -> None:
        # Pass 1: a node per statement.
        for stmt in self.proc.all_stmts():
            self._node_of_stmt[stmt.stmt_id] = self._new_node(stmt)
        # Pass 2: wire edges.
        first = self._wire_seq(self.proc.body, self.exit)
        self._edge(self.entry, first)

    def _entry_node(self, stmt: Stmt) -> CFGNode:
        return self._node_of_stmt[stmt.stmt_id]

    def _wire_seq(self, stmts: list[Stmt], follow: CFGNode) -> CFGNode:
        """Wire a statement sequence whose continuation is ``follow``;
        returns the sequence's entry node (``follow`` if empty)."""
        if not stmts:
            return follow
        for k, stmt in enumerate(stmts):
            next_node = (
                self._entry_node(stmts[k + 1]) if k + 1 < len(stmts) else follow
            )
            self._wire_stmt(stmt, next_node)
        return self._entry_node(stmts[0])

    def _wire_stmt(self, stmt: Stmt, follow: CFGNode) -> None:
        node = self._entry_node(stmt)
        if isinstance(stmt, (AssignStmt, ContinueStmt, CallStmt)):
            self._edge(node, follow)
        elif isinstance(stmt, StopStmt):
            self._edge(node, self.exit)
        elif isinstance(stmt, GotoStmt):
            target = self.proc.stmt_at_label(stmt.target_label)
            if target is None:
                raise AnalysisError(
                    f"GOTO target {stmt.target_label} missing during CFG build"
                )
            self._edge(node, self._entry_node(target))
        elif isinstance(stmt, IfStmt):
            then_entry = self._wire_seq(stmt.then_body, follow)
            else_entry = self._wire_seq(stmt.else_body, follow)
            self._edge(node, then_entry)
            if else_entry is not then_entry or not stmt.then_body:
                self._edge(node, else_entry)
            else:
                self._edge(node, follow)
        elif isinstance(stmt, LoopStmt):
            # header -> body entry; body falls back to header; header ->
            # follow models loop exit (incl. zero-trip).
            body_entry = self._wire_seq(stmt.body, node)
            self._edge(node, body_entry)
            self._edge(node, follow)
        else:
            raise AnalysisError(f"cannot wire statement {stmt!r}")

    # -- queries --------------------------------------------------------------------

    def node_of(self, stmt: Stmt) -> CFGNode:
        return self._node_of_stmt[stmt.stmt_id]

    def reverse_postorder(self) -> list[CFGNode]:
        """Reverse postorder over reachable nodes starting at entry."""
        seen: set[int] = set()
        order: list[CFGNode] = []

        def dfs(node: CFGNode) -> None:
            stack = [(node, iter(node.succs))]
            seen.add(node.index)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ.index not in seen:
                        seen.add(succ.index)
                        stack.append((succ, iter(succ.succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        dfs(self.entry)
        order.reverse()
        return order

    def reachable(self) -> set[int]:
        return {node.index for node in self.reverse_postorder()}

    def dump(self) -> str:
        lines = []
        for node in self.nodes:
            succs = ", ".join(str(s.index) for s in node.succs)
            lines.append(f"[{node.index}] {node} -> {{{succs}}}")
        return "\n".join(lines)


def build_cfg(proc: Procedure) -> CFG:
    return CFG(proc)
