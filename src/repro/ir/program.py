"""Procedure container: symbol table, structured body, directive records,
and navigation helpers (loop nests, labels, statement/reference lookup).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import SemanticError
from .expr import ArrayElemRef, Expr, Ref
from .stmt import (
    AssignStmt,
    ContinueStmt,
    GotoStmt,
    IfStmt,
    LoopStmt,
    Stmt,
)
from .symbols import Symbol, SymbolTable

#: process-local source of Procedure.uid values; also consulted when a
#: pickled procedure is revived so imported uids never collide with
#: locally created ones
_UID_COUNTER = itertools.count(1)


@dataclass
class AlignSpec:
    """Resolved static ALIGN directive: ``array`` is aligned with
    ``target``; ``axis_map[k]`` tells which target dimension the k-th
    source dimension maps to (with stride/offset), or None when the
    source dim is collapsed. ``replicated_target_dims`` are target dims
    carrying no source dim that were given '*' (replication)."""

    array: Symbol
    target: Symbol
    #: per source dim: (target_dim, stride, offset) or None
    axis_map: tuple[tuple[int, int, int] | None, ...]
    #: target dims onto which the source is replicated
    replicated_target_dims: tuple[int, ...] = ()


@dataclass
class DistributeSpec:
    """Resolved static DISTRIBUTE directive."""

    array: Symbol
    #: per dim: ("BLOCK", None) | ("CYCLIC", k or None) | ("*", None)
    formats: tuple[tuple[str, int | None], ...]
    onto: str | None = None


@dataclass
class ProcessorsSpec:
    name: str
    shape: tuple[int, ...]


@dataclass
class Procedure:
    """A lowered mini-HPF program."""

    name: str
    symbols: SymbolTable
    body: list[Stmt] = field(default_factory=list)
    aligns: list[AlignSpec] = field(default_factory=list)
    distributes: list[DistributeSpec] = field(default_factory=list)
    processors: ProcessorsSpec | None = None

    #: process-unique identity, part of the analysis-cache fingerprint
    #: (ids of garbage-collected procedures can be reused; this cannot)
    uid: int = field(
        default_factory=_UID_COUNTER.__next__, repr=False, compare=False
    )
    #: bumped by every finalize(); cached analyses keyed on an older
    #: epoch are stale, since finalize() must follow any tree change
    ir_epoch: int = field(default=0, repr=False, compare=False)

    # filled by finalize()
    _stmts_by_id: dict[int, Stmt] = field(default_factory=dict, repr=False)
    _stmts_by_label: dict[int, Stmt] = field(default_factory=dict, repr=False)
    _ref_to_stmt: dict[int, Stmt] = field(default_factory=dict, repr=False)

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        # A pickled uid is only unique in the *originating* process.  A
        # procedure revived here (process pool result, persistent
        # compile cache) must not alias a locally created one in any
        # uid-keyed cache (lowering LRU, analysis cache), so it gets a
        # fresh local identity.
        self.__dict__.update(state)
        self.uid = next(_UID_COUNTER)

    # -- structure ------------------------------------------------------------

    def finalize(self) -> "Procedure":
        """Compute parent-loop links, loop levels, and lookup tables.
        Must be called whenever the statement tree changes."""
        self.ir_epoch += 1
        self._stmts_by_id.clear()
        self._stmts_by_label.clear()
        self._ref_to_stmt.clear()
        self._link(self.body, None)
        return self

    def _link(self, stmts: list[Stmt], loop: LoopStmt | None) -> None:
        for stmt in stmts:
            stmt.loop = loop
            self._stmts_by_id[stmt.stmt_id] = stmt
            if stmt.label is not None:
                if stmt.label in self._stmts_by_label:
                    raise SemanticError(f"duplicate label {stmt.label}")
                self._stmts_by_label[stmt.label] = stmt
            for ref in list(stmt.uses()) + list(stmt.defs()):
                ref.stmt_id = stmt.stmt_id
                self._ref_to_stmt[ref.ref_id] = stmt
            if isinstance(stmt, LoopStmt):
                stmt.level = (loop.level + 1) if loop is not None else 1
                self._link(stmt.body, stmt)
            elif isinstance(stmt, IfStmt):
                self._link(stmt.then_body, loop)
                self._link(stmt.else_body, loop)

    # -- lookup -----------------------------------------------------------------

    def stmt(self, stmt_id: int) -> Stmt:
        return self._stmts_by_id[stmt_id]

    def stmt_at_label(self, label: int) -> Stmt | None:
        return self._stmts_by_label.get(label)

    def stmt_of_ref(self, ref: Ref) -> Stmt:
        return self._ref_to_stmt[ref.ref_id]

    def all_stmts(self):
        for stmt in self.body:
            yield from stmt.walk()

    def assignments(self):
        for stmt in self.all_stmts():
            if isinstance(stmt, AssignStmt):
                yield stmt

    def loops(self):
        for stmt in self.all_stmts():
            if isinstance(stmt, LoopStmt):
                yield stmt

    # -- loop-nest queries --------------------------------------------------------

    def common_loops(self, a: Stmt, b: Stmt) -> list[LoopStmt]:
        """Loops enclosing both ``a`` and ``b``, outermost first."""
        loops_a = a.loops_enclosing()
        loops_b = set(id(l) for l in b.loops_enclosing())
        return [l for l in loops_a if id(l) in loops_b]

    def innermost_common_loop(self, a: Stmt, b: Stmt) -> LoopStmt | None:
        common = self.common_loops(a, b)
        return common[-1] if common else None

    def loop_at_level(self, stmt: Stmt, level: int) -> LoopStmt | None:
        """The enclosing loop of ``stmt`` at 1-based nesting ``level``."""
        chain = stmt.loops_enclosing()
        if 1 <= level <= len(chain):
            return chain[level - 1]
        return None

    def encloses(self, loop: LoopStmt, stmt: Stmt) -> bool:
        return any(l is loop for l in stmt.loops_enclosing())

    # -- directive access -----------------------------------------------------------

    def align_of(self, array: Symbol) -> AlignSpec | None:
        for spec in self.aligns:
            if spec.array.name == array.name:
                return spec
        return None

    def distribute_of(self, array: Symbol) -> DistributeSpec | None:
        for spec in self.distributes:
            if spec.array.name == array.name:
                return spec
        return None

    # -- validation -------------------------------------------------------------------

    def check_gotos(self) -> None:
        """Validate every GOTO target exists."""
        for stmt in self.all_stmts():
            if isinstance(stmt, GotoStmt):
                if self.stmt_at_label(stmt.target_label) is None:
                    raise SemanticError(
                        f"GOTO target label {stmt.target_label} not found"
                    )

    def dump(self) -> str:
        """Readable dump of the statement tree (debugging / golden tests)."""
        lines: list[str] = [f"PROCEDURE {self.name}"]

        def emit(stmts: list[Stmt], depth: int) -> None:
            pad = "  " * depth
            for stmt in stmts:
                lines.append(pad + str(stmt))
                if isinstance(stmt, LoopStmt):
                    emit(stmt.body, depth + 1)
                elif isinstance(stmt, IfStmt):
                    emit(stmt.then_body, depth + 1)
                    if stmt.else_body:
                        lines.append(pad + "ELSE")
                        emit(stmt.else_body, depth + 1)

        emit(self.body, 1)
        return "\n".join(lines)
