"""IR expressions.

Unlike AST expressions, IR expressions resolve names to
:class:`~repro.ir.symbols.Symbol` objects, and every *reference* (scalar
read/write, array element access) has an identity (``ref_id``) so the
paper's algorithms can talk about "the reference B(i) on statement S2".

The module also provides affine-form extraction
(:func:`affine_form`), the workhorse of subscript analysis:
``A(2*i + j - 1)`` ⇒ ``{i: 2, j: 1}, const=-1``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .symbols import ScalarType, Symbol

_ref_counter = itertools.count(1)


def _next_ref_id() -> int:
    return next(_ref_counter)


@dataclass
class Expr:
    """Base class of IR expressions."""

    def refs(self):
        """Yield every Ref (scalar or array) in this expression tree,
        including subscript references, pre-order."""
        return
        yield  # pragma: no cover


@dataclass
class Const(Expr):
    value: int | float | bool

    def refs(self):
        return iter(())

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class Ref(Expr):
    """Base of scalar and array references."""

    symbol: Symbol
    ref_id: int = field(default_factory=_next_ref_id)
    #: Statement that contains this reference; set by the IR builder.
    stmt_id: int | None = field(default=None, compare=False)

    @property
    def is_array(self) -> bool:
        return False


@dataclass
class ScalarRef(Ref):
    def refs(self):
        yield self

    def __str__(self) -> str:
        return self.symbol.name


@dataclass
class ArrayElemRef(Ref):
    subscripts: list[Expr] = field(default_factory=list)

    @property
    def is_array(self) -> bool:
        return True

    def refs(self):
        yield self
        for sub in self.subscripts:
            yield from sub.refs()

    def __str__(self) -> str:
        subs = ",".join(str(s) for s in self.subscripts)
        return f"{self.symbol.name}({subs})"


@dataclass
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def refs(self):
        yield from self.left.refs()
        yield from self.right.refs()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class UnOp(Expr):
    op: str
    operand: Expr

    def refs(self):
        yield from self.operand.refs()

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass
class IntrinsicCall(Expr):
    name: str
    args: list[Expr] = field(default_factory=list)

    def refs(self):
        for arg in self.args:
            yield from arg.refs()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


# --------------------------------------------------------------------------
# Affine analysis
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AffineForm:
    """``sum(coeffs[sym] * sym) + const`` with integer coefficients.

    ``coeffs`` maps Symbol → int and contains no zero entries.
    """

    coeffs: tuple[tuple[Symbol, int], ...]
    const: int

    def coeff(self, symbol: Symbol) -> int:
        for sym, c in self.coeffs:
            if sym is symbol or sym.name == symbol.name:
                return c
        return 0

    @property
    def symbols(self) -> tuple[Symbol, ...]:
        return tuple(sym for sym, _ in self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __str__(self) -> str:
        parts = [f"{c}*{s.name}" for s, c in self.coeffs]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


def _make_affine(coeffs: dict[str, tuple[Symbol, int]], const: int) -> AffineForm:
    items = tuple(
        (sym, c) for _, (sym, c) in sorted(coeffs.items()) if c != 0
    )
    return AffineForm(coeffs=items, const=const)


def affine_form(expr: Expr) -> AffineForm | None:
    """Extract the affine form of an integer expression, or None if the
    expression is not affine in scalar symbols (e.g. ``i*j``, ``A(i)``,
    non-integer constants)."""
    result = _affine(expr)
    if result is None:
        return None
    coeffs, const = result
    return _make_affine(coeffs, const)


def _affine(expr: Expr) -> tuple[dict[str, tuple[Symbol, int]], int] | None:
    if isinstance(expr, Const):
        if isinstance(expr.value, bool) or not isinstance(expr.value, int):
            return None
        return {}, expr.value
    if isinstance(expr, ScalarRef):
        if expr.symbol.type is not ScalarType.INT:
            return None
        return {expr.symbol.name: (expr.symbol, 1)}, 0
    if isinstance(expr, UnOp) and expr.op == "-":
        inner = _affine(expr.operand)
        if inner is None:
            return None
        coeffs, const = inner
        return {k: (s, -c) for k, (s, c) in coeffs.items()}, -const
    if isinstance(expr, BinOp):
        if expr.op in ("+", "-"):
            left = _affine(expr.left)
            right = _affine(expr.right)
            if left is None or right is None:
                return None
            lcoeffs, lconst = left
            rcoeffs, rconst = right
            sign = 1 if expr.op == "+" else -1
            merged = dict(lcoeffs)
            for key, (sym, c) in rcoeffs.items():
                old = merged.get(key, (sym, 0))[1]
                merged[key] = (sym, old + sign * c)
            return merged, lconst + sign * rconst
        if expr.op == "*":
            left = _affine(expr.left)
            right = _affine(expr.right)
            if left is None or right is None:
                return None
            lcoeffs, lconst = left
            rcoeffs, rconst = right
            if lcoeffs and rcoeffs:
                return None  # bilinear: i*j
            if not lcoeffs:
                factor, coeffs, const = lconst, rcoeffs, rconst
            else:
                factor, coeffs, const = rconst, lcoeffs, lconst
            return (
                {k: (s, c * factor) for k, (s, c) in coeffs.items()},
                const * factor,
            )
        if expr.op == "/":
            # Integer division is affine only when exact & divisor const.
            left = _affine(expr.left)
            right = _affine(expr.right)
            if left is None or right is None:
                return None
            lcoeffs, lconst = left
            rcoeffs, rconst = right
            if rcoeffs or rconst == 0:
                return None
            if all(c % rconst == 0 for _, (_, c) in lcoeffs.items()) and (
                lconst % rconst == 0
            ):
                return (
                    {k: (s, c // rconst) for k, (s, c) in lcoeffs.items()},
                    lconst // rconst,
                )
            return None
    return None


def expr_symbols(expr: Expr):
    """Yield each distinct Symbol referenced anywhere in ``expr``."""
    seen: set[str] = set()
    for ref in expr.refs():
        if ref.symbol.name not in seen:
            seen.add(ref.symbol.name)
            yield ref.symbol


def substitute_scalar(expr: Expr, symbol: Symbol, replacement: Expr) -> Expr:
    """Return a copy of ``expr`` with every ScalarRef to ``symbol``
    replaced by a (shared-structure) copy of ``replacement``.

    Used by induction-variable closed-form substitution. Replacement
    sub-expressions are cloned so that every inserted reference keeps a
    unique ``ref_id``.
    """
    if isinstance(expr, ScalarRef):
        if expr.symbol.name == symbol.name:
            return clone_expr(replacement)
        return expr
    if isinstance(expr, ArrayElemRef):
        return ArrayElemRef(
            symbol=expr.symbol,
            subscripts=[substitute_scalar(s, symbol, replacement) for s in expr.subscripts],
            stmt_id=expr.stmt_id,
        )
    if isinstance(expr, BinOp):
        return BinOp(
            op=expr.op,
            left=substitute_scalar(expr.left, symbol, replacement),
            right=substitute_scalar(expr.right, symbol, replacement),
        )
    if isinstance(expr, UnOp):
        return UnOp(op=expr.op, operand=substitute_scalar(expr.operand, symbol, replacement))
    if isinstance(expr, IntrinsicCall):
        return IntrinsicCall(
            name=expr.name,
            args=[substitute_scalar(a, symbol, replacement) for a in expr.args],
        )
    return expr


def clone_expr(expr: Expr) -> Expr:
    """Deep-copy an expression, assigning fresh ref_ids to references."""
    if isinstance(expr, Const):
        return Const(value=expr.value)
    if isinstance(expr, ScalarRef):
        return ScalarRef(symbol=expr.symbol, stmt_id=expr.stmt_id)
    if isinstance(expr, ArrayElemRef):
        return ArrayElemRef(
            symbol=expr.symbol,
            subscripts=[clone_expr(s) for s in expr.subscripts],
            stmt_id=expr.stmt_id,
        )
    if isinstance(expr, BinOp):
        return BinOp(op=expr.op, left=clone_expr(expr.left), right=clone_expr(expr.right))
    if isinstance(expr, UnOp):
        return UnOp(op=expr.op, operand=clone_expr(expr.operand))
    if isinstance(expr, IntrinsicCall):
        return IntrinsicCall(name=expr.name, args=[clone_expr(a) for a in expr.args])
    raise TypeError(f"cannot clone {expr!r}")
