"""AST → IR lowering.

Responsibilities:

* build the symbol table from declarations (PARAMETER constants are
  evaluated here; array bounds must reduce to integers),
* resolve names in expressions, distinguishing intrinsic calls from
  array references,
* lower statements, attaching INDEPENDENT directive info onto loops,
* resolve ALIGN / DISTRIBUTE / PROCESSORS directives against the symbol
  table into the static specs of :mod:`repro.ir.program`.
"""

from __future__ import annotations

from ..errors import DirectiveError, SemanticError
from ..lang import ast_nodes as ast
from ..lang.tokens import INTRINSICS
from . import expr as ir
from . import stmt as irs
from .program import AlignSpec, DistributeSpec, Procedure, ProcessorsSpec
from .symbols import ScalarType, Symbol, SymbolKind, SymbolTable


class IRBuilder:
    """Single-use builder: ``IRBuilder().build(program_ast)``."""

    def __init__(self) -> None:
        self.symbols = SymbolTable()
        self.params: dict[str, int | float] = {}

    # -- entry ------------------------------------------------------------

    def build(self, program: ast.Program) -> Procedure:
        for decl in program.decls:
            if isinstance(decl, ast.ParameterDecl):
                self._bind_parameters(decl)
            elif isinstance(decl, ast.TypeDecl):
                self._declare_entities(decl)
        proc = Procedure(name=program.name, symbols=self.symbols)
        for directive in program.directives:
            self._lower_directive(directive, proc)
        proc.body = [self._lower_stmt(s) for s in program.body]
        proc.finalize()
        proc.check_gotos()
        return proc

    # -- declarations ---------------------------------------------------------

    def _bind_parameters(self, decl: ast.ParameterDecl) -> None:
        for name, expr in decl.bindings:
            value = self._const_eval(expr)
            key = name.upper()
            self.params[key] = value
            symbol_type = (
                ScalarType.INT if isinstance(value, int) else ScalarType.REAL
            )
            self.symbols.declare(
                Symbol(name=key, kind=SymbolKind.PARAM, type=symbol_type, value=value)
            )

    def _declare_entities(self, decl: ast.TypeDecl) -> None:
        scalar_type = ScalarType[
            {"REAL": "REAL", "INTEGER": "INT", "LOGICAL": "LOGICAL"}[decl.type_name]
        ]
        for entity in decl.entities:
            if entity.dims:
                dims = tuple(
                    (self._const_int(d.low), self._const_int(d.high))
                    for d in entity.dims
                )
                for low, high in dims:
                    if high < low:
                        raise SemanticError(
                            f"array {entity.name}: bound {low}:{high} is empty"
                        )
                self.symbols.declare(
                    Symbol(
                        name=entity.name,
                        kind=SymbolKind.ARRAY,
                        type=scalar_type,
                        dims=dims,
                    )
                )
            else:
                self.symbols.declare(
                    Symbol(name=entity.name, kind=SymbolKind.SCALAR, type=scalar_type)
                )

    def _const_eval(self, expr: ast.Expr) -> int | float:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.RealLit):
            return expr.value
        if isinstance(expr, ast.Name):
            key = expr.ident.upper()
            if key in self.params:
                return self.params[key]
            raise SemanticError(f"{expr.ident!r} is not a PARAMETER constant")
        if isinstance(expr, ast.UnOp) and expr.op == "-":
            return -self._const_eval(expr.operand)
        if isinstance(expr, ast.BinOp):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                if isinstance(left, int) and isinstance(right, int):
                    return left // right
                return left / right
            if expr.op == "**":
                return left**right
        raise SemanticError(f"expression is not a compile-time constant: {expr}")

    def _const_int(self, expr: ast.Expr) -> int:
        value = self._const_eval(expr)
        if not isinstance(value, int):
            raise SemanticError(f"expected integer constant, got {value!r}")
        return value

    # -- expressions ---------------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> ir.Expr:
        if isinstance(expr, ast.IntLit):
            return ir.Const(value=expr.value)
        if isinstance(expr, ast.RealLit):
            return ir.Const(value=expr.value)
        if isinstance(expr, ast.LogicalLit):
            return ir.Const(value=expr.value)
        if isinstance(expr, ast.Name):
            key = expr.ident.upper()
            if key in self.params:
                return ir.Const(value=self.params[key])
            symbol = self.symbols.resolve_scalar(key)
            if symbol.is_array:
                raise SemanticError(f"array {key!r} used without subscripts")
            return ir.ScalarRef(symbol=symbol)
        if isinstance(expr, ast.ArrayRef):
            key = expr.ident.upper()
            symbol = self.symbols.lookup(key)
            if symbol is None or symbol.kind is SymbolKind.PARAM:
                if key in INTRINSICS:
                    return ir.IntrinsicCall(
                        name=key, args=[self.lower_expr(a) for a in expr.subscripts]
                    )
                raise SemanticError(f"unknown array or intrinsic {key!r}")
            if not symbol.is_array:
                if key in INTRINSICS:
                    return ir.IntrinsicCall(
                        name=key, args=[self.lower_expr(a) for a in expr.subscripts]
                    )
                raise SemanticError(f"scalar {key!r} used with subscripts")
            if len(expr.subscripts) != symbol.rank:
                raise SemanticError(
                    f"array {key!r} has rank {symbol.rank}, "
                    f"referenced with {len(expr.subscripts)} subscripts"
                )
            return ir.ArrayElemRef(
                symbol=symbol, subscripts=[self.lower_expr(s) for s in expr.subscripts]
            )
        if isinstance(expr, ast.BinOp):
            return ir.BinOp(
                op=expr.op,
                left=self.lower_expr(expr.left),
                right=self.lower_expr(expr.right),
            )
        if isinstance(expr, ast.UnOp):
            return ir.UnOp(op=expr.op, operand=self.lower_expr(expr.operand))
        raise SemanticError(f"cannot lower expression {expr!r}")

    # -- statements -------------------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> irs.Stmt:
        lowered = self._lower_bare(stmt)
        lowered.label = stmt.label
        lowered.line = stmt.line
        return lowered

    def _lower_bare(self, stmt: ast.Stmt) -> irs.Stmt:
        if isinstance(stmt, ast.Assign):
            lhs = self.lower_expr(stmt.target)
            if not isinstance(lhs, (ir.ScalarRef, ir.ArrayElemRef)):
                raise SemanticError(f"invalid assignment target {stmt.target!r}")
            return irs.AssignStmt(lhs=lhs, rhs=self.lower_expr(stmt.value))
        if isinstance(stmt, ast.Do):
            var = self.symbols.resolve_scalar(stmt.var)
            if var.type is not ScalarType.INT:
                raise SemanticError(f"loop variable {var.name!r} must be INTEGER")
            var.is_loop_var = True
            loop = irs.LoopStmt(
                var=var,
                low=self.lower_expr(stmt.low),
                high=self.lower_expr(stmt.high),
                step=self.lower_expr(stmt.step) if stmt.step is not None else None,
                body=[self._lower_stmt(s) for s in stmt.body],
            )
            if stmt.directive is not None:
                loop.independent = True
                loop.new_vars = tuple(v.upper() for v in stmt.directive.new_vars)
                loop.reduction_vars = tuple(
                    v.upper() for v in stmt.directive.reduction_vars
                )
            return loop
        if isinstance(stmt, ast.If):
            return irs.IfStmt(
                cond=self.lower_expr(stmt.cond),
                then_body=[self._lower_stmt(s) for s in stmt.then_body],
                else_body=[self._lower_stmt(s) for s in stmt.else_body],
            )
        if isinstance(stmt, ast.Goto):
            return irs.GotoStmt(target_label=stmt.target_label)
        if isinstance(stmt, ast.Continue):
            return irs.ContinueStmt()
        if isinstance(stmt, ast.Stop):
            return irs.StopStmt()
        if isinstance(stmt, ast.Call):
            return irs.CallStmt(
                name=stmt.name, args=[self.lower_expr(a) for a in stmt.args]
            )
        raise SemanticError(f"cannot lower statement {stmt!r}")

    # -- directives ----------------------------------------------------------------------

    def _lower_directive(self, directive: ast.Directive, proc: Procedure) -> None:
        if isinstance(directive, ast.ProcessorsDirective):
            shape = tuple(self._const_int(e) for e in directive.shape)
            if proc.processors is not None:
                raise DirectiveError("multiple PROCESSORS directives", directive.line)
            proc.processors = ProcessorsSpec(name=directive.name, shape=shape)
        elif isinstance(directive, ast.DistributeDirective):
            formats = tuple(
                (f.kind, self._const_int(f.arg) if f.arg is not None else None)
                for f in directive.formats
            )
            for target in directive.targets:
                array = self.symbols.require(target)
                if not array.is_array:
                    raise DirectiveError(
                        f"DISTRIBUTE target {target!r} is not an array", directive.line
                    )
                if len(formats) != array.rank:
                    raise DirectiveError(
                        f"DISTRIBUTE format rank {len(formats)} does not match "
                        f"array {target!r} rank {array.rank}",
                        directive.line,
                    )
                proc.distributes.append(
                    DistributeSpec(array=array, formats=formats, onto=directive.onto)
                )
        elif isinstance(directive, ast.AlignDirective):
            self._lower_align(directive, proc)
        else:
            raise DirectiveError(
                f"directive {type(directive).__name__} not allowed here",
                directive.line,
            )

    def _lower_align(self, directive: ast.AlignDirective, proc: Procedure) -> None:
        target = self.symbols.require(directive.target_name)
        if not target.is_array:
            raise DirectiveError(
                f"ALIGN target {directive.target_name!r} is not an array",
                directive.line,
            )
        if len(directive.target_subs) != target.rank:
            raise DirectiveError(
                f"ALIGN target subscript count does not match rank of "
                f"{target.name!r}",
                directive.line,
            )
        sources = []
        if directive.source_name is not None:
            sources.append(directive.source_name)
        sources.extend(directive.extra_targets)

        # Positional ':' dummies get synthetic names.
        dummies: list[str | None] = []
        for k, sub in enumerate(directive.source_subs):
            if sub.dummy is None:
                dummies.append(None)
            elif sub.dummy == ":":
                dummies.append(f"%DIM{k}")
            else:
                dummies.append(sub.dummy.upper())

        # Analyze each target subscript as stride*dummy + offset, ':'
        # (positional identity), '*' (replication), or constant.
        target_info: list[tuple[str, object]] = []
        for pos, sub in enumerate(directive.target_subs):
            if sub is None:
                target_info.append(("*", None))
            elif isinstance(sub, ast.Name) and sub.ident == ":":
                target_info.append((":", pos))
            else:
                target_info.append(("expr", sub))

        for source_name in sources:
            array = self.symbols.require(source_name)
            if not array.is_array:
                raise DirectiveError(
                    f"ALIGN source {source_name!r} is not an array", directive.line
                )
            if len(dummies) != array.rank:
                raise DirectiveError(
                    f"ALIGN source subscript count does not match rank of "
                    f"{source_name!r}",
                    directive.line,
                )
            axis_map: list[tuple[int, int, int] | None] = [None] * array.rank
            used_target_dims: set[int] = set()
            colon_positions = [k for k, d in enumerate(dummies) if d is not None and d.startswith("%DIM")]
            for t_dim, (kind, payload) in enumerate(target_info):
                if kind == "*":
                    continue
                if kind == ":":
                    # Positional: match the next ':' source dim.
                    if not colon_positions:
                        raise DirectiveError(
                            "':' in ALIGN target without matching ':' source dim",
                            directive.line,
                        )
                    s_dim = colon_positions.pop(0)
                    axis_map[s_dim] = (t_dim, 1, 0)
                    used_target_dims.add(t_dim)
                    continue
                stride_off = self._affine_in_dummies(payload, dummies)
                if stride_off is None:
                    raise DirectiveError(
                        f"unsupported ALIGN target subscript {payload!r}",
                        directive.line,
                    )
                s_dim, stride, offset = stride_off
                if s_dim is None:
                    # Constant subscript: source collapsed onto a fixed
                    # coordinate of this target dim — not needed by the
                    # paper's programs.
                    raise DirectiveError(
                        "constant ALIGN target subscripts are unsupported",
                        directive.line,
                    )
                axis_map[s_dim] = (t_dim, stride, offset)
                used_target_dims.add(t_dim)
            replicated = tuple(
                t_dim
                for t_dim, (kind, _) in enumerate(target_info)
                if kind == "*"
            )
            proc.aligns.append(
                AlignSpec(
                    array=array,
                    target=target,
                    axis_map=tuple(axis_map),
                    replicated_target_dims=replicated,
                )
            )

    def _affine_in_dummies(
        self, expr: ast.Expr, dummies: list[str | None]
    ) -> tuple[int | None, int, int] | None:
        """Decompose ``expr`` as stride*dummy + offset. Returns
        (source_dim or None-for-constant, stride, offset)."""
        coeffs: dict[str, int] = {}
        const = self._align_affine(expr, coeffs)
        if const is None:
            return None
        live = [(name, c) for name, c in coeffs.items() if c != 0]
        if not live:
            return None, 0, const
        if len(live) > 1:
            return None
        name, stride = live[0]
        upper = name.upper()
        for s_dim, dummy in enumerate(dummies):
            if dummy == upper:
                return s_dim, stride, const
        return None

    def _align_affine(self, expr: ast.Expr, coeffs: dict[str, int]) -> int | None:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Name):
            key = expr.ident.upper()
            if key in self.params:
                value = self.params[key]
                return value if isinstance(value, int) else None
            coeffs[key] = coeffs.get(key, 0) + 1
            return 0
        if isinstance(expr, ast.UnOp) and expr.op == "-":
            inner: dict[str, int] = {}
            const = self._align_affine(expr.operand, inner)
            if const is None:
                return None
            for key, c in inner.items():
                coeffs[key] = coeffs.get(key, 0) - c
            return -const
        if isinstance(expr, ast.BinOp) and expr.op in ("+", "-"):
            left = self._align_affine(expr.left, coeffs)
            if left is None:
                return None
            inner: dict[str, int] = {}
            right = self._align_affine(expr.right, inner)
            if right is None:
                return None
            sign = 1 if expr.op == "+" else -1
            for key, c in inner.items():
                coeffs[key] = coeffs.get(key, 0) + sign * c
            return left + sign * right
        if isinstance(expr, ast.BinOp) and expr.op == "*":
            # stride * dummy (one side must be constant)
            try:
                factor = self._const_int(expr.left)
                other = expr.right
            except SemanticError:
                try:
                    factor = self._const_int(expr.right)
                    other = expr.left
                except SemanticError:
                    return None
            inner: dict[str, int] = {}
            const = self._align_affine(other, inner)
            if const is None:
                return None
            for key, c in inner.items():
                coeffs[key] = coeffs.get(key, 0) + factor * c
            return factor * const
        return None


def build_procedure(program: ast.Program) -> Procedure:
    """Lower a parsed program to IR (inlining subroutine calls first)."""
    if program.subroutines:
        from ..lang.inline import inline_calls

        program = inline_calls(program)
    return IRBuilder().build(program)


def parse_and_build(source: str) -> Procedure:
    """Parse mini-HPF source and lower it to IR in one step."""
    from ..lang import parse_program

    return build_procedure(parse_program(source))
