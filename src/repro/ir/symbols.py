"""Symbol table and types for the IR.

Fortran implicit typing applies: an undeclared name starting with
I..N is INTEGER, anything else REAL. Loop variables are entered as
INTEGER scalars with ``is_loop_var`` set. PARAMETER constants are
evaluated at build time and stored with their value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import SemanticError


class ScalarType(enum.Enum):
    INT = "INTEGER"
    REAL = "REAL"
    LOGICAL = "LOGICAL"


def implicit_type(name: str) -> ScalarType:
    """Fortran implicit typing rule (I–N ⇒ INTEGER)."""
    return ScalarType.INT if name[:1].upper() in "IJKLMN" else ScalarType.REAL


class SymbolKind(enum.Enum):
    SCALAR = "scalar"
    ARRAY = "array"
    PARAM = "parameter"


@dataclass
class Symbol:
    """One named entity of the procedure.

    ``dims`` holds ``(low, high)`` integer bounds for arrays (bounds are
    required to be compile-time constants after PARAMETER substitution,
    which holds for every program in the paper).
    """

    name: str
    kind: SymbolKind
    type: ScalarType
    dims: tuple[tuple[int, int], ...] = ()
    value: int | float | None = None  # for PARAM
    is_loop_var: bool = False

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def is_array(self) -> bool:
        return self.kind is SymbolKind.ARRAY

    @property
    def is_scalar(self) -> bool:
        return self.kind is SymbolKind.SCALAR

    def extent(self, dim: int) -> int:
        """Number of elements along ``dim`` (0-based)."""
        low, high = self.dims[dim]
        return high - low + 1

    def size(self) -> int:
        total = 1
        for dim in range(self.rank):
            total *= self.extent(dim)
        return total

    def __repr__(self) -> str:  # pragma: no cover
        dims = "(" + ",".join(f"{lo}:{hi}" for lo, hi in self.dims) + ")" if self.dims else ""
        return f"<{self.kind.value} {self.name}{dims}:{self.type.value}>"


class SymbolTable:
    """Name → :class:`Symbol` map with implicit declaration support."""

    def __init__(self) -> None:
        self._symbols: dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> Symbol:
        key = symbol.name.upper()
        if key in self._symbols:
            raise SemanticError(f"duplicate declaration of {symbol.name!r}")
        self._symbols[key] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol | None:
        return self._symbols.get(name.upper())

    def resolve_scalar(self, name: str) -> Symbol:
        """Look up ``name``; implicitly declare a scalar if unknown."""
        symbol = self.lookup(name)
        if symbol is None:
            symbol = Symbol(
                name=name.upper(), kind=SymbolKind.SCALAR, type=implicit_type(name)
            )
            self._symbols[name.upper()] = symbol
        return symbol

    def require(self, name: str) -> Symbol:
        symbol = self.lookup(name)
        if symbol is None:
            raise SemanticError(f"undeclared name {name!r}")
        return symbol

    def arrays(self) -> list[Symbol]:
        return [s for s in self._symbols.values() if s.is_array]

    def scalars(self) -> list[Symbol]:
        return [s for s in self._symbols.values() if s.is_scalar]

    def __iter__(self):
        return iter(self._symbols.values())

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._symbols

    def __len__(self) -> int:
        return len(self._symbols)
