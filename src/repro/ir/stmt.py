"""IR statements.

The IR keeps the structured loop-nest form of the program (the paper's
algorithms are loop-structured), while :mod:`repro.ir.cfg` derives a
flat control-flow graph from it for the SSA and dataflow passes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .expr import ArrayElemRef, Expr, Ref, ScalarRef
from .symbols import Symbol

_stmt_counter = itertools.count(1)


def _next_stmt_id() -> int:
    return next(_stmt_counter)


@dataclass(eq=False)
class Stmt:
    """Base class of IR statements."""

    stmt_id: int = field(default_factory=_next_stmt_id, kw_only=True)
    label: int | None = field(default=None, kw_only=True)
    line: int = field(default=0, kw_only=True)
    #: Immediately enclosing loop; None at procedure top level. Set by
    #: Procedure.finalize().
    loop: "LoopStmt | None" = field(default=None, kw_only=True, repr=False, compare=False)

    # -- structure helpers ---------------------------------------------------

    def children(self) -> list["Stmt"]:
        return []

    def walk(self):
        """This statement and all nested statements, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def loops_enclosing(self) -> list["LoopStmt"]:
        """Enclosing loops, outermost first."""
        chain: list[LoopStmt] = []
        loop = self.loop
        while loop is not None:
            chain.append(loop)
            loop = loop.loop
        chain.reverse()
        return chain

    @property
    def nesting_level(self) -> int:
        """Number of enclosing loops (0 = top level)."""
        return len(self.loops_enclosing())

    def uses(self):
        """Yield every Ref read by this statement."""
        return iter(())

    def defs(self):
        """Yield every Ref written by this statement."""
        return iter(())


@dataclass(eq=False)
class AssignStmt(Stmt):
    """``lhs = rhs``. ``lhs`` is a ScalarRef or ArrayElemRef."""

    lhs: Ref = None
    rhs: Expr = None

    def uses(self):
        yield from self.rhs.refs()
        # Subscripts of the lhs are *reads*.
        if isinstance(self.lhs, ArrayElemRef):
            for sub in self.lhs.subscripts:
                yield from sub.refs()

    def defs(self):
        yield self.lhs

    def __str__(self) -> str:
        return f"S{self.stmt_id}: {self.lhs} = {self.rhs}"


@dataclass(eq=False)
class LoopStmt(Stmt):
    """``DO var = low, high [, step]``.

    ``independent`` / ``new_vars`` / ``reduction_vars`` carry the
    INDEPENDENT directive attached to the loop, if any.
    """

    var: Symbol = None
    low: Expr = None
    high: Expr = None
    step: Expr | None = None
    body: list[Stmt] = field(default_factory=list)
    independent: bool = False
    new_vars: tuple[str, ...] = ()
    reduction_vars: tuple[str, ...] = ()
    #: 1-based loop nesting level (outermost loop = 1); set by finalize().
    level: int = 0

    def children(self) -> list[Stmt]:
        return list(self.body)

    def uses(self):
        yield from self.low.refs()
        yield from self.high.refs()
        if self.step is not None:
            yield from self.step.refs()

    def defs(self):
        # The loop defines its index variable. A synthetic ScalarRef is
        # materialized once and reused so identity is stable.
        if not hasattr(self, "_index_def"):
            self._index_def = ScalarRef(symbol=self.var, stmt_id=self.stmt_id)
        yield self._index_def

    def __str__(self) -> str:
        head = f"S{self.stmt_id}: DO {self.var.name} = {self.low}, {self.high}"
        if self.step is not None:
            head += f", {self.step}"
        return head


@dataclass(eq=False)
class IfStmt(Stmt):
    cond: Expr = None
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)

    def children(self) -> list[Stmt]:
        return list(self.then_body) + list(self.else_body)

    def uses(self):
        yield from self.cond.refs()

    def __str__(self) -> str:
        return f"S{self.stmt_id}: IF ({self.cond})"


@dataclass(eq=False)
class GotoStmt(Stmt):
    target_label: int = 0

    def __str__(self) -> str:
        return f"S{self.stmt_id}: GO TO {self.target_label}"


@dataclass(eq=False)
class ContinueStmt(Stmt):
    def __str__(self) -> str:
        label = f"{self.label} " if self.label is not None else ""
        return f"S{self.stmt_id}: {label}CONTINUE"


@dataclass(eq=False)
class StopStmt(Stmt):
    def __str__(self) -> str:
        return f"S{self.stmt_id}: STOP"


@dataclass(eq=False)
class CallStmt(Stmt):
    name: str = ""
    args: list[Expr] = field(default_factory=list)

    def uses(self):
        for arg in self.args:
            yield from arg.refs()

    def __str__(self) -> str:
        return f"S{self.stmt_id}: CALL {self.name}"
