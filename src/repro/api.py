"""The stable high-level facade.

:class:`Session` is the supported entry point for programmatic use: it
owns a :class:`~repro.core.passes.PassManager` (so front-end analyses
are shared across compiles), an optional persistent
:class:`~repro.core.diskcache.CompileCache`, and optional
:mod:`repro.obs` tracer/metrics sinks — and exposes the four verbs the
CLI, the table builders, and the benchmark harnesses are built on:

* :meth:`Session.compile`  — source → :class:`CompiledProgram`
* :meth:`Session.estimate` — analytic cost model → ``PerfEstimate``
* :meth:`Session.run`      — simulated execution, validated against
  the sequential interpreter → :class:`RunResult`
* :meth:`Session.sweep`    — an experiment grid through
  :func:`repro.sweep.run_sweep` → ``list[SweepResult]``

Everything here is re-exported from :mod:`repro`; lower-level modules
(`repro.core`, `repro.machine`, …) remain importable but are *internal*
surface and may reorganize between versions (see ``docs/API.md``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from .core.diskcache import CompileCache, as_compile_cache
from .core.driver import CompiledProgram, CompilerOptions, compile_source
from .core.passes import PassManager
from .sweep import SweepJob, SweepResult, SweepSpec, run_sweep

if TYPE_CHECKING:
    from .model import MachineModel
    from .obs import Metrics, Tracer
    from .perf.estimator import PerfEstimate
    from .service import JobHandle, SweepService

#: the supported programmatic surface (re-exported from :mod:`repro`);
#: anything not listed here is internal and may move between versions
__all__ = [
    "CompileCache",
    "CompiledProgram",
    "CompilerOptions",
    "PassManager",
    "RunResult",
    "Session",
    "SweepJob",
    "SweepResult",
    "SweepSpec",
    "compile_source",
    "run_sweep",
]


@dataclass
class RunResult:
    """One simulated execution: the compiled program, the simulator it
    ran on, and the validation verdict against the sequential
    interpreter."""

    compiled: CompiledProgram
    sim: Any
    #: array name → matches the sequential interpreter (empty when the
    #: run was not validated)
    matches: dict[str, bool] = field(default_factory=dict)
    inputs: dict[str, Any] = field(default_factory=dict)
    sequential: Any = None
    cache_hit: bool = False

    @property
    def elapsed(self) -> float:
        """Virtual seconds on the simulated machine."""
        return self.sim.elapsed

    @property
    def messages(self) -> int:
        return self.sim.stats.messages

    @property
    def fetches(self) -> int:
        return self.sim.stats.fetches

    @property
    def unexpected_fetches(self) -> int:
        return self.sim.stats.unexpected_fetches

    @property
    def all_match(self) -> bool:
        return all(self.matches.values())

    @property
    def ok(self) -> bool:
        """The contract ``repro run`` exits 0 on: every array matches
        the sequential interpreter and no fetch arrived unexpectedly."""
        return self.all_match and self.unexpected_fetches == 0

    def gather(self, name: str):
        """The named array, assembled across processors."""
        return self.sim.gather(name)

    def canonical_stats(self) -> dict:
        """Deterministic clocks + traffic record (the CI determinism
        gate byte-compares two of these)."""
        return self.sim.canonical_stats()

    def as_dict(self) -> dict:
        """Flat JSON record in the shared :mod:`repro.records` schema
        (same field names as ``SweepResult.as_dict`` and job
        records)."""
        from .records import result_record, tiers_of

        stats = self.canonical_stats()
        record = result_record(
            "run",
            program=self.compiled.proc.name,
            procs=self.compiled.options.num_procs,
            ok=self.ok,
            matches=self.matches,
            cache_hit=self.cache_hit,
            elapsed_s=self.elapsed,
            messages=self.messages,
            fetches=self.fetches,
            unexpected_fetches=self.unexpected_fetches,
            canonical_stats=stats,
        )
        tiers = tiers_of(stats)
        if tiers is not None:
            record["tiers"] = tiers
        return record


class Session:
    """A configured compiler instance: base options + shared pass
    manager + optional persistent cache and observability sinks.

    ``options`` seeds every compile; keyword ``overrides`` adjust it
    field-wise (``Session(strategy="producer", num_procs=8)``).
    ``cache`` enables the persistent compile cache: ``True`` for the
    default root (``~/.cache/repro``), a path, or a ready
    :class:`CompileCache`.  ``tracer``/``metrics`` are threaded through
    compilation, simulation, and sweeps.

    A fit saved by ``repro calibrate --save`` is applied automatically:
    when the options carry no explicit ``nest_cost_constants``, the
    session loads the saved constants (from the cache root, or the
    root ``use_calibration`` names) into its options, so ``tierplan``
    prices tiers with the host's own numbers.  ``use_calibration=
    False`` keeps the shipped defaults; an explicit
    ``nest_cost_constants`` in the options always wins.
    """

    def __init__(
        self,
        options: CompilerOptions | None = None,
        *,
        cache: CompileCache | str | os.PathLike | bool | None = None,
        tracer: "Tracer | None" = None,
        metrics: "Metrics | None" = None,
        manager: PassManager | None = None,
        use_calibration: bool | str | os.PathLike = True,
        **overrides: Any,
    ):
        if overrides or options is None:
            options = CompilerOptions.from_overrides(options, **overrides)
        if use_calibration and options.nest_cost_constants is None:
            from .perf.calibrate import load_calibration

            root = (
                use_calibration
                if not isinstance(use_calibration, bool)
                else None
            )
            saved = load_calibration(root)
            if saved:
                options = CompilerOptions.from_overrides(
                    options, nest_cost_constants=saved
                )
        self.options = options
        self.cache = as_compile_cache(cache)
        self.tracer = tracer
        self.metrics = metrics
        self.manager = manager or PassManager(tracer=tracer)
        #: whether the most recent :meth:`compile` was a disk-cache hit
        self.last_cache_hit = False

    # -- options -----------------------------------------------------------

    def options_for(self, **overrides: Any) -> CompilerOptions:
        """The session's options with field overrides applied."""
        if not overrides:
            return self.options
        return CompilerOptions.from_overrides(self.options, **overrides)

    # -- the verbs ---------------------------------------------------------

    def compile(self, source: str, **overrides: Any) -> CompiledProgram:
        """Compile source text under the session options (plus
        ``overrides``), through the persistent cache when enabled."""
        options = self.options_for(**overrides)
        if self.cache is not None:
            compiled, hit = self.cache.get_or_compile(
                source,
                options,
                lambda: compile_source(source, options, manager=self.manager),
                pipeline=self.manager.pipeline,
            )
            self.last_cache_hit = hit
        else:
            compiled = compile_source(source, options, manager=self.manager)
            self.last_cache_hit = False
        return compiled

    def estimate(
        self,
        source: str | CompiledProgram,
        *,
        machine: "MachineModel | None" = None,
        pipelined_shifts: bool = False,
        **overrides: Any,
    ) -> "PerfEstimate":
        """Analytic cost-model estimate of ``source`` (or an already
        compiled program)."""
        from .perf.estimator import PerfEstimator

        if isinstance(source, CompiledProgram):
            compiled = source
        else:
            compiled = self.compile(source, **overrides)
        return PerfEstimator(
            compiled, machine, pipelined_shifts=pipelined_shifts
        ).estimate()

    def run(
        self,
        source: str,
        *,
        seed: int = 0,
        validate: bool = True,
        trace_capacity: int = 0,
        tier: str | None = "auto",
        **overrides: Any,
    ) -> RunResult:
        """Execute ``source`` on the simulated machine with
        deterministic random inputs (``seed``), cross-checking every
        array against the sequential interpreter unless
        ``validate=False``.  ``tier`` selects the execution engine:
        ``"auto"`` (default) consults the compiled :class:`TierPlan`
        per nest, ``"interpreted"``/``"lowered"``/``"slab"`` force a
        single tier, and ``None`` keeps the simulator's legacy
        blanket behaviour."""
        import numpy as np

        from .codegen.seq import run_sequential
        from .ir.build import parse_and_build
        from .machine.simulator import simulate

        compiled = self.compile(source, **overrides)
        cache_hit = self.last_cache_hit

        rng = np.random.default_rng(seed)
        # A fresh, untransformed procedure feeds the sequential
        # reference run; its symbol order fixes the rng draws.
        proc = parse_and_build(source)
        inputs = {}
        for symbol in proc.symbols.arrays():
            shape = tuple(symbol.extent(d) for d in range(symbol.rank))
            inputs[symbol.name] = rng.uniform(0.5, 1.5, shape)

        sequential = run_sequential(proc, inputs) if validate else None
        sim = simulate(
            compiled,
            inputs,
            trace_capacity=trace_capacity,
            tracer=self.tracer,
            metrics=self.metrics,
            tier=tier,
        )
        matches: dict[str, bool] = {}
        if validate:
            for symbol in compiled.proc.symbols.arrays():
                matches[symbol.name] = bool(
                    np.allclose(
                        sim.gather(symbol.name),
                        sequential.get_array(symbol.name),
                    )
                )
        return RunResult(
            compiled=compiled,
            sim=sim,
            matches=matches,
            inputs=inputs,
            sequential=sequential,
            cache_hit=cache_hit,
        )

    def sweep(
        self,
        spec: SweepSpec | Iterable[SweepJob],
        *,
        workers: int | None = None,
        timeout: float | None = None,
        retries: int = 2,
        backoff: float = 0.1,
        on_result: Callable[[SweepResult], None] | None = None,
        mode: str = "auto",
    ) -> list[SweepResult]:
        """Run an experiment grid through the sweep engine, sharing the
        session's cache, tracer, and metrics.  ``workers=0`` forces
        serial in-process execution on the session's pass manager.
        ``mode`` selects the execution strategy: ``"pool"`` runs one
        job at a time, ``"batched"`` fuses grid points that differ only
        in machine parameters *or the processor count* into
        lane-vectorized evaluations (and dedupes repeated compiles —
        ``SweepResult.procs_lanes`` reports how many procs sub-groups
        a point's batch fused), ``"auto"`` picks batched exactly when
        some batch has lanes to fuse — results are identical either
        way."""
        return run_sweep(
            spec,
            workers=workers,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            cache=self.cache,
            manager=self.manager,
            tracer=self.tracer,
            metrics=self.metrics,
            on_result=on_result,
            mode=mode,
        )

    def submit(
        self,
        spec: SweepSpec | Iterable[SweepJob],
        *,
        service: "SweepService | str | os.PathLike | None" = None,
        name: str = "",
        exec_mode: str = "auto",
        shards: int | None = None,
    ) -> "JobHandle":
        """Submit an experiment grid to the persistent sweep service
        and return a :class:`~repro.service.JobHandle` immediately.

        Unlike :meth:`sweep`, nothing is evaluated here: the grid is
        persisted to the service's durable queue and runs wherever a
        worker loop (``repro serve``) drains it — surviving client and
        worker restarts, with every finished point recorded in the
        artifact catalog.  ``service`` is a ready
        :class:`~repro.service.SweepService` or a service directory
        (default: the session cache root's ``service/`` sibling).
        ``handle.result()`` blocks for the ordered results;
        ``handle.poll()`` / ``handle.stream_events()`` observe
        progress."""
        from .service import SweepService

        if not isinstance(service, SweepService):
            service = SweepService(
                service,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        return service.submit(
            spec, name=name, exec_mode=exec_mode, shards=shards
        )

    # -- bookkeeping -------------------------------------------------------

    def cache_stats(self) -> dict[str, Any] | None:
        """Disk-cache footprint + this session's hit/miss counters, or
        None when the cache is disabled."""
        return self.cache.stats_dict() if self.cache is not None else None

    def collect_metrics(self, metrics: "Metrics | None" = None) -> "Metrics | None":
        """Fold the pass manager's pipeline counters into ``metrics``
        (defaults to the session's registry)."""
        metrics = metrics if metrics is not None else self.metrics
        if metrics is not None:
            self.manager.collect_metrics(metrics)
        return metrics
