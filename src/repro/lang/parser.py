"""Recursive-descent parser for the mini-HPF language.

The grammar is a Fortran-90 subset::

    program   := PROGRAM name NEWLINE decl* stmt* END [PROGRAM [name]]
    decl      := type-decl | PARAMETER (...) | !HPF$ directive
    stmt      := [label] ( assign | do | if | goto | continue | stop | call )
    do        := DO [label] var = e, e [, e] NEWLINE stmt* (END DO | labeled-stmt)
    if        := IF (e) THEN ... [ELSE ...] (END IF | ENDIF)
               | IF (e) one-line-stmt

``!HPF$ INDEPENDENT`` directives attach to the DO statement that
follows; PROCESSORS / DISTRIBUTE / ALIGN directives are collected on the
program node.
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast_nodes as ast
from .directives import parse_directive
from .lexer import tokenize
from .tokens import Token, TokenKind

_ONE_LINE_IF_HEADS = ("GOTO", "GO", "CONTINUE", "STOP", "CALL", "EXIT")

_REL_OPS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "/=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}


class Parser:
    """Parse mini-HPF source text into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        tok = self._next()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {what or kind.value!r}, found {tok.value!r}",
                tok.line,
                tok.col,
            )
        return tok

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._peek().kind is kind:
            return self._next()
        return None

    def _accept_ident(self, name: str) -> Token | None:
        if self._peek().is_ident(name):
            return self._next()
        return None

    def _expect_ident(self, name: str) -> Token:
        tok = self._next()
        if not (tok.kind is TokenKind.IDENT and tok.value == name.upper()):
            raise ParseError(
                f"expected {name!r}, found {tok.value!r}", tok.line, tok.col
            )
        return tok

    def _skip_newlines(self) -> None:
        while self._peek().kind is TokenKind.NEWLINE:
            self._next()

    def _end_of_stmt(self) -> None:
        tok = self._peek()
        if tok.kind in (TokenKind.NEWLINE, TokenKind.EOF):
            self._skip_newlines()
            return
        raise ParseError(
            f"unexpected {tok.value!r} at end of statement", tok.line, tok.col
        )

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        return ParseError(message, tok.line, tok.col)

    # -- program structure ----------------------------------------------------

    def parse_program(self) -> ast.Program:
        self._skip_newlines()
        line = self._peek().line
        self._expect_ident("PROGRAM")
        name = self._expect(TokenKind.IDENT, "program name").value
        self._end_of_stmt()

        program = ast.Program(name=name, line=line)
        self._parse_decl_section(program)
        pending: ast.IndependentDirective | None = None
        while not self._at_program_end():
            stmt, pending = self._parse_stmt(pending)
            if stmt is not None:
                program.body.append(stmt)
        if pending is not None:
            raise self._error("INDEPENDENT directive not followed by a DO loop")
        self._parse_program_end(name)
        while self._peek().is_ident("SUBROUTINE"):
            program.subroutines.append(self._parse_subroutine())
        return program

    def _parse_subroutine(self) -> ast.Subroutine:
        tok = self._expect_ident("SUBROUTINE")
        name = self._expect(TokenKind.IDENT, "subroutine name").value
        params: list[str] = []
        if self._accept(TokenKind.LPAREN):
            if self._peek().kind is not TokenKind.RPAREN:
                params.append(self._expect(TokenKind.IDENT, "parameter").value)
                while self._accept(TokenKind.COMMA):
                    params.append(self._expect(TokenKind.IDENT, "parameter").value)
            self._expect(TokenKind.RPAREN)
        self._end_of_stmt()

        sub = ast.Subroutine(name=name, params=params, line=tok.line)
        shell = ast.Program(name=name)
        self._parse_decl_section(shell)
        if shell.directives:
            raise ParseError(
                "HPF mapping directives are not allowed inside subroutines "
                "(mappings travel with the actual arguments at inlining)",
                tok.line,
                tok.col,
            )
        sub.decls = shell.decls
        pending: ast.IndependentDirective | None = None
        while not self._at_program_end():
            stmt, pending = self._parse_stmt(pending)
            if stmt is not None:
                sub.body.append(stmt)
        if pending is not None:
            raise self._error("INDEPENDENT directive not followed by a DO loop")
        end_tok = self._next()
        if not end_tok.is_ident("END"):
            raise ParseError("expected END", end_tok.line, end_tok.col)
        if self._accept_ident("SUBROUTINE"):
            self._accept(TokenKind.IDENT)
        self._skip_newlines()
        return sub

    def _at_program_end(self) -> bool:
        tok = self._peek()
        if tok.kind is TokenKind.EOF:
            return True
        # 'END' not followed by DO/IF terminates the program.
        if tok.is_ident("END"):
            nxt = self._peek(1)
            if not (nxt.is_ident("DO") or nxt.is_ident("IF")):
                return True
        return False

    def _parse_program_end(self, name: str) -> None:
        tok = self._next()
        if not tok.is_ident("END"):
            raise ParseError("expected END", tok.line, tok.col)
        if self._accept_ident("PROGRAM"):
            tok = self._accept(TokenKind.IDENT)
            if tok is not None and tok.value != name:
                raise ParseError(
                    f"END PROGRAM name {tok.value!r} does not match {name!r}",
                    tok.line,
                    tok.col,
                )
        self._skip_newlines()

    # -- declaration section ----------------------------------------------------

    def _parse_decl_section(self, program: ast.Program) -> None:
        while True:
            self._skip_newlines()
            tok = self._peek()
            if tok.kind is TokenKind.DIRECTIVE:
                directive = parse_directive(tok.value, tok.line)
                if isinstance(directive, ast.IndependentDirective):
                    return  # belongs to the executable section
                self._next()
                program.directives.append(directive)
            elif tok.is_ident("REAL") or tok.is_ident("INTEGER") or tok.is_ident("LOGICAL"):
                # 'REAL' could also start 'REAL(x)' intrinsic in an
                # assignment, but an assignment never starts a line with
                # a type keyword in this subset.
                program.decls.append(self._parse_type_decl())
            elif tok.is_ident("PARAMETER"):
                program.decls.append(self._parse_parameter_decl())
            elif tok.is_ident("DIMENSION"):
                program.decls.append(self._parse_dimension_decl())
            else:
                return

    def _parse_type_decl(self) -> ast.TypeDecl:
        tok = self._next()
        decl = ast.TypeDecl(type_name=tok.value, line=tok.line)
        self._accept(TokenKind.DCOLON)
        decl.entities.append(self._parse_entity())
        while self._accept(TokenKind.COMMA):
            decl.entities.append(self._parse_entity())
        self._end_of_stmt()
        return decl

    def _parse_dimension_decl(self) -> ast.TypeDecl:
        """``DIMENSION A(n)`` declares REAL arrays (F77 habit)."""
        tok = self._next()
        decl = ast.TypeDecl(type_name="REAL", line=tok.line)
        decl.entities.append(self._parse_entity())
        while self._accept(TokenKind.COMMA):
            decl.entities.append(self._parse_entity())
        self._end_of_stmt()
        return decl

    def _parse_entity(self) -> ast.EntityDecl:
        tok = self._expect(TokenKind.IDENT, "declared name")
        entity = ast.EntityDecl(name=tok.value, line=tok.line)
        if self._accept(TokenKind.LPAREN):
            entity.dims.append(self._parse_dim_spec())
            while self._accept(TokenKind.COMMA):
                entity.dims.append(self._parse_dim_spec())
            self._expect(TokenKind.RPAREN)
        return entity

    def _parse_dim_spec(self) -> ast.DimSpec:
        line = self._peek().line
        first = self.parse_expr()
        if self._accept(TokenKind.COLON):
            return ast.DimSpec(low=first, high=self.parse_expr(), line=line)
        return ast.DimSpec(low=ast.IntLit(value=1, line=line), high=first, line=line)

    def _parse_parameter_decl(self) -> ast.ParameterDecl:
        tok = self._next()
        decl = ast.ParameterDecl(line=tok.line)
        self._expect(TokenKind.LPAREN)
        while True:
            name = self._expect(TokenKind.IDENT, "parameter name").value
            self._expect(TokenKind.ASSIGN)
            decl.bindings.append((name, self.parse_expr()))
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN)
        self._end_of_stmt()
        return decl

    # -- statements -------------------------------------------------------------

    def _parse_stmt(
        self, pending: ast.IndependentDirective | None
    ) -> tuple[ast.Stmt | None, ast.IndependentDirective | None]:
        """Parse one statement; returns (stmt, pending-INDEPENDENT)."""
        self._skip_newlines()
        tok = self._peek()

        if tok.kind is TokenKind.DIRECTIVE:
            directive = parse_directive(tok.value, tok.line)
            self._next()
            self._skip_newlines()
            if isinstance(directive, ast.IndependentDirective):
                if pending is not None:
                    raise ParseError(
                        "two INDEPENDENT directives for one loop", tok.line, tok.col
                    )
                return None, directive
            raise ParseError(
                "only INDEPENDENT directives may appear between statements",
                tok.line,
                tok.col,
            )

        label: int | None = None
        if tok.kind is TokenKind.INT:
            label = int(self._next().value)
            tok = self._peek()

        stmt = self._parse_bare_stmt(pending)
        pending = None
        if stmt is not None:
            stmt.label = label
        elif label is not None:
            raise self._error("label attached to nothing")
        return stmt, pending

    def _parse_bare_stmt(
        self, pending: ast.IndependentDirective | None
    ) -> ast.Stmt | None:
        tok = self._peek()
        if tok.is_ident("DO"):
            return self._parse_do(pending)
        if pending is not None:
            raise ParseError(
                "INDEPENDENT directive must be followed by a DO loop",
                tok.line,
                tok.col,
            )
        if tok.is_ident("IF"):
            return self._parse_if()
        if tok.is_ident("GOTO") or (tok.is_ident("GO") and self._peek(1).is_ident("TO")):
            return self._parse_goto()
        if tok.is_ident("CONTINUE"):
            self._next()
            self._end_of_stmt()
            return ast.Continue(line=tok.line)
        if tok.is_ident("STOP"):
            self._next()
            self._end_of_stmt()
            return ast.Stop(line=tok.line)
        if tok.is_ident("CALL"):
            return self._parse_call()
        if tok.kind is TokenKind.IDENT:
            return self._parse_assign()
        raise ParseError(f"unexpected token {tok.value!r}", tok.line, tok.col)

    def _parse_assign(self) -> ast.Assign:
        line = self._peek().line
        target = self._parse_designator()
        self._expect(TokenKind.ASSIGN)
        value = self.parse_expr()
        self._end_of_stmt()
        return ast.Assign(target=target, value=value, line=line)

    def _parse_designator(self) -> ast.Expr:
        tok = self._expect(TokenKind.IDENT, "variable name")
        if self._accept(TokenKind.LPAREN):
            subs = [self.parse_expr()]
            while self._accept(TokenKind.COMMA):
                subs.append(self.parse_expr())
            self._expect(TokenKind.RPAREN)
            return ast.ArrayRef(ident=tok.value, subscripts=subs, line=tok.line)
        return ast.Name(ident=tok.value, line=tok.line)

    def _parse_do(self, pending: ast.IndependentDirective | None) -> ast.Do:
        tok = self._expect_ident("DO")
        term_label: int | None = None
        if self._peek().kind is TokenKind.INT:
            term_label = int(self._next().value)
        var = self._expect(TokenKind.IDENT, "loop variable").value
        self._expect(TokenKind.ASSIGN)
        low = self.parse_expr()
        self._expect(TokenKind.COMMA)
        high = self.parse_expr()
        step = None
        if self._accept(TokenKind.COMMA):
            step = self.parse_expr()
        self._end_of_stmt()

        loop = ast.Do(
            var=var, low=low, high=high, step=step, directive=pending, line=tok.line
        )
        inner_pending: ast.IndependentDirective | None = None
        while True:
            self._skip_newlines()
            nxt = self._peek()
            if nxt.kind is TokenKind.EOF:
                raise ParseError("unterminated DO loop", tok.line, tok.col)
            if term_label is None and nxt.is_ident("END") and self._peek(1).is_ident("DO"):
                self._next()
                self._next()
                self._end_of_stmt()
                break
            if term_label is None and nxt.is_ident("ENDDO"):
                self._next()
                self._end_of_stmt()
                break
            stmt, inner_pending = self._parse_stmt(inner_pending)
            if stmt is None:
                continue
            loop.body.append(stmt)
            if term_label is not None and stmt.label == term_label:
                break
        if inner_pending is not None:
            raise ParseError(
                "INDEPENDENT directive not followed by a DO loop", tok.line, tok.col
            )
        return loop

    def _parse_if(self) -> ast.If:
        tok = self._expect_ident("IF")
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        if self._accept_ident("THEN"):
            self._end_of_stmt()
            return self._parse_if_block(cond, tok)
        # one-line logical IF
        body = self._parse_bare_stmt(None)
        return ast.If(cond=cond, then_body=[body], line=tok.line)

    def _parse_if_block(self, cond: ast.Expr, tok: Token) -> ast.If:
        node = ast.If(cond=cond, line=tok.line)
        branch = node.then_body
        pending: ast.IndependentDirective | None = None
        while True:
            self._skip_newlines()
            nxt = self._peek()
            if nxt.kind is TokenKind.EOF:
                raise ParseError("unterminated IF block", tok.line, tok.col)
            if nxt.is_ident("END") and self._peek(1).is_ident("IF"):
                self._next()
                self._next()
                self._end_of_stmt()
                break
            if nxt.is_ident("ENDIF"):
                self._next()
                self._end_of_stmt()
                break
            if nxt.is_ident("ELSE"):
                self._next()
                if self._accept_ident("IF"):
                    # ELSE IF (cond) THEN -> nested If in the else branch
                    self._expect(TokenKind.LPAREN)
                    inner_cond = self.parse_expr()
                    self._expect(TokenKind.RPAREN)
                    self._expect_ident("THEN")
                    self._end_of_stmt()
                    inner = self._parse_if_block(inner_cond, nxt)
                    node.else_body.append(inner)
                    return node
                self._end_of_stmt()
                branch = node.else_body
                continue
            stmt, pending = self._parse_stmt(pending)
            if stmt is not None:
                branch.append(stmt)
        if pending is not None:
            raise ParseError(
                "INDEPENDENT directive not followed by a DO loop", tok.line, tok.col
            )
        return node

    def _parse_goto(self) -> ast.Goto:
        tok = self._next()  # GOTO or GO
        if tok.is_ident("GO"):
            self._expect_ident("TO")
        target = int(self._expect(TokenKind.INT, "statement label").value)
        self._end_of_stmt()
        return ast.Goto(target_label=target, line=tok.line)

    def _parse_call(self) -> ast.Call:
        tok = self._expect_ident("CALL")
        name = self._expect(TokenKind.IDENT, "subroutine name").value
        args: list[ast.Expr] = []
        if self._accept(TokenKind.LPAREN):
            if self._peek().kind is not TokenKind.RPAREN:
                args.append(self.parse_expr())
                while self._accept(TokenKind.COMMA):
                    args.append(self.parse_expr())
            self._expect(TokenKind.RPAREN)
        self._end_of_stmt()
        return ast.Call(name=name, args=args, line=tok.line)

    # -- expressions --------------------------------------------------------
    # Precedence (low to high): .OR. < .AND. < .NOT. < relational
    # < additive < multiplicative < unary +- < ** (right assoc).

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._peek().kind is TokenKind.OR:
            line = self._next().line
            expr = ast.BinOp(op=".OR.", left=expr, right=self._parse_and(), line=line)
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self._peek().kind is TokenKind.AND:
            line = self._next().line
            expr = ast.BinOp(op=".AND.", left=expr, right=self._parse_not(), line=line)
        return expr

    def _parse_not(self) -> ast.Expr:
        if self._peek().kind is TokenKind.NOT:
            line = self._next().line
            return ast.UnOp(op=".NOT.", operand=self._parse_not(), line=line)
        return self._parse_rel()

    def _parse_rel(self) -> ast.Expr:
        expr = self._parse_add()
        if self._peek().kind in _REL_OPS:
            tok = self._next()
            expr = ast.BinOp(
                op=_REL_OPS[tok.kind], left=expr, right=self._parse_add(), line=tok.line
            )
        return expr

    def _parse_add(self) -> ast.Expr:
        expr = self._parse_mul()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            tok = self._next()
            expr = ast.BinOp(
                op=tok.value, left=expr, right=self._parse_mul(), line=tok.line
            )
        return expr

    def _parse_mul(self) -> ast.Expr:
        expr = self._parse_unary()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            tok = self._next()
            expr = ast.BinOp(
                op=tok.value, left=expr, right=self._parse_unary(), line=tok.line
            )
        return expr

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind in (TokenKind.PLUS, TokenKind.MINUS):
            self._next()
            operand = self._parse_unary()
            if tok.kind is TokenKind.PLUS:
                return operand
            return ast.UnOp(op="-", operand=operand, line=tok.line)
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_primary()
        if self._peek().kind is TokenKind.POWER:
            tok = self._next()
            # '**' is right-associative and binds tighter than unary
            # minus on its right: 2 ** -x is not legal Fortran, but
            # 2 ** (-x) is; we accept a unary expression here.
            exponent = self._parse_unary()
            return ast.BinOp(op="**", left=base, right=exponent, line=tok.line)
        return base

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT:
            self._next()
            return ast.IntLit(value=int(tok.value), line=tok.line)
        if tok.kind is TokenKind.REAL:
            self._next()
            return ast.RealLit(value=float(tok.value), line=tok.line)
        if tok.kind is TokenKind.TRUE:
            self._next()
            return ast.LogicalLit(value=True, line=tok.line)
        if tok.kind is TokenKind.FALSE:
            self._next()
            return ast.LogicalLit(value=False, line=tok.line)
        if tok.kind is TokenKind.LPAREN:
            self._next()
            expr = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        if tok.kind is TokenKind.IDENT:
            return self._parse_designator()
        raise ParseError(f"unexpected token {tok.value!r}", tok.line, tok.col)


def parse_program(source: str) -> ast.Program:
    """Parse a full mini-HPF program."""
    return Parser(source).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone expression (used by tests)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    tok = parser._peek()
    if tok.kind not in (TokenKind.EOF, TokenKind.NEWLINE):
        raise ParseError(f"trailing input {tok.value!r}", tok.line, tok.col)
    return expr
