"""Lexer for the mini-HPF language.

Free-form source, one statement per line, ``&`` continuation at end of
line, ``!`` comments. Lines whose comment starts with ``!HPF$`` are
*directives*: the lexer emits a single :class:`~repro.lang.tokens.Token`
of kind DIRECTIVE carrying the directive body, which the directive
parser re-lexes with this same class.
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import Token, TokenKind, dot_operator

_SINGLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "%": TokenKind.PERCENT,
}


class Lexer:
    """Tokenize mini-HPF source text.

    Usage::

        tokens = Lexer(source).tokenize()
    """

    def __init__(self, source: str, *, directive_mode: bool = False):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        #: When true, newlines are not significant (used to lex the body
        #: of an !HPF$ directive) and '!' has no comment meaning.
        self.directive_mode = directive_mode
        self.tokens: list[Token] = []

    # -- low-level helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, n: int = 1) -> str:
        text = self.source[self.pos : self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return text

    def _emit(self, kind: TokenKind, value: str, line: int, col: int) -> None:
        self.tokens.append(Token(kind, value, line, col))

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)

    # -- tokenizers --------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Produce the full token stream, ending with EOF."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r":
                self._advance()
            elif ch == "&":
                self._lex_continuation()
            elif ch == "\n":
                self._lex_newline()
            elif ch == "!":
                self._lex_comment_or_directive()
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                self._lex_number()
            elif ch == ".":
                self._lex_dot_operator()
            elif ch.isalpha() or ch == "_":
                self._lex_ident()
            elif ch in "'\"":
                self._lex_string()
            else:
                self._lex_operator()
        self._emit(TokenKind.EOF, "", self.line, self.col)
        return self.tokens

    def _lex_newline(self) -> None:
        line, col = self.line, self.col
        self._advance()
        if self.directive_mode:
            return
        # Collapse consecutive newlines into one token.
        if self.tokens and self.tokens[-1].kind is TokenKind.NEWLINE:
            return
        self._emit(TokenKind.NEWLINE, "\n", line, col)

    def _lex_continuation(self) -> None:
        """``&`` at end of line joins the next line to this statement."""
        self._advance()
        while self._peek() in " \t\r":
            self._advance()
        if self._peek() == "!" and not self._is_directive_comment():
            while self._peek() and self._peek() != "\n":
                self._advance()
        if self._peek() != "\n":
            raise self._error("'&' continuation must end its line")
        self._advance()  # consume newline without emitting a token

    def _is_directive_comment(self) -> bool:
        return self.source[self.pos : self.pos + 5].upper() == "!HPF$"

    def _lex_comment_or_directive(self) -> None:
        if self.directive_mode:
            raise self._error("'!' not allowed inside a directive body")
        line, col = self.line, self.col
        if self._is_directive_comment():
            self._advance(5)
            start = self.pos
            while self._peek() and self._peek() != "\n":
                self._advance()
            body = self.source[start : self.pos].strip()
            self._emit(TokenKind.DIRECTIVE, body, line, col)
        else:
            while self._peek() and self._peek() != "\n":
                self._advance()

    def _lex_number(self) -> None:
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_real = False
        # A '.' begins a fraction only if not a dot-operator like 1.EQ.2
        if self._peek() == "." and dot_operator(self._dot_lookahead()) is None:
            is_real = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek().upper() in ("E", "D") and (
            self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_real = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos].upper().replace("D", "E")
        kind = TokenKind.REAL if is_real else TokenKind.INT
        self._emit(kind, text, line, col)

    def _dot_lookahead(self) -> str:
        """Text of a potential ``.WORD.`` operator starting at pos."""
        if self._peek() != ".":
            return ""
        j = self.pos + 1
        while j < len(self.source) and self.source[j].isalpha():
            j += 1
        if j < len(self.source) and self.source[j] == ".":
            return self.source[self.pos : j + 1]
        return ""

    def _lex_dot_operator(self) -> None:
        line, col = self.line, self.col
        text = self._dot_lookahead()
        kind = dot_operator(text) if text else None
        if kind is None:
            raise self._error(f"malformed dot-operator starting with {text or '.'!r}")
        self._advance(len(text))
        self._emit(kind, text.upper(), line, col)

    def _lex_ident(self) -> None:
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos].upper()
        self._emit(TokenKind.IDENT, text, line, col)

    def _lex_string(self) -> None:
        line, col = self.line, self.col
        quote = self._advance()
        start = self.pos
        while self._peek() and self._peek() not in (quote, "\n"):
            self._advance()
        if self._peek() != quote:
            raise self._error("unterminated string literal")
        text = self.source[start : self.pos]
        self._advance()
        self._emit(TokenKind.STRING, text, line, col)

    def _lex_operator(self) -> None:
        line, col = self.line, self.col
        two = self.source[self.pos : self.pos + 2]
        if two == "**":
            self._advance(2)
            self._emit(TokenKind.POWER, "**", line, col)
        elif two == "::":
            self._advance(2)
            self._emit(TokenKind.DCOLON, "::", line, col)
        elif two == "==":
            self._advance(2)
            self._emit(TokenKind.EQ, "==", line, col)
        elif two == "/=":
            self._advance(2)
            self._emit(TokenKind.NE, "/=", line, col)
        elif two == "<=":
            self._advance(2)
            self._emit(TokenKind.LE, "<=", line, col)
        elif two == ">=":
            self._advance(2)
            self._emit(TokenKind.GE, ">=", line, col)
        elif two and two[0] in _SINGLE:
            ch = self._advance()
            self._emit(_SINGLE[ch], ch, line, col)
        elif two and two[0] == "*":
            self._advance()
            self._emit(TokenKind.STAR, "*", line, col)
        elif two and two[0] == "/":
            self._advance()
            self._emit(TokenKind.SLASH, "/", line, col)
        elif two and two[0] == "=":
            self._advance()
            self._emit(TokenKind.ASSIGN, "=", line, col)
        elif two and two[0] == "<":
            self._advance()
            self._emit(TokenKind.LT, "<", line, col)
        elif two and two[0] == ">":
            self._advance()
            self._emit(TokenKind.GT, ">", line, col)
        elif two and two[0] == ":":
            self._advance()
            self._emit(TokenKind.COLON, ":", line, col)
        else:
            raise self._error(f"unexpected character {self._peek()!r}")


def tokenize(source: str, *, directive_mode: bool = False) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` and return the tokens."""
    return Lexer(source, directive_mode=directive_mode).tokenize()
