"""Mini-HPF language front end: lexer, parser, AST, HPF directives."""

from . import ast_nodes
from .directives import parse_directive
from .lexer import Lexer, tokenize
from .parser import Parser, parse_expression, parse_program
from .printer import print_expr, print_program
from .tokens import Token, TokenKind

__all__ = [
    "ast_nodes",
    "parse_directive",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_expression",
    "parse_program",
    "print_expr",
    "print_program",
    "Token",
    "TokenKind",
]
