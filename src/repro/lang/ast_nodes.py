"""Abstract syntax tree for the mini-HPF language.

Pure syntax: no resolution or typing happens here (that is the job of
``repro.ir.build``). All nodes are plain dataclasses carrying a source
line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class RealLit(Expr):
    value: float


@dataclass
class LogicalLit(Expr):
    value: bool


@dataclass
class Name(Expr):
    """A bare identifier: scalar variable, parameter, or loop index."""

    ident: str


@dataclass
class ArrayRef(Expr):
    """``A(e1, e2, ...)`` — also the syntax of an intrinsic call; the
    IR builder disambiguates using the symbol table."""

    ident: str
    subscripts: list[Expr] = field(default_factory=list)


@dataclass
class BinOp(Expr):
    """Arithmetic (+ - * / **), relational, or logical binary operator."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    """Unary minus / plus / .NOT."""

    op: str
    operand: Expr


# --------------------------------------------------------------------------
# Directives (attached to declarations or statements)
# --------------------------------------------------------------------------


@dataclass
class Directive(Node):
    pass


@dataclass
class ProcessorsDirective(Directive):
    """``!HPF$ PROCESSORS P(4, 4)`` — declares the processor grid."""

    name: str
    shape: list[Expr] = field(default_factory=list)


@dataclass
class DistFormat(Node):
    """One dimension of a DISTRIBUTE format: BLOCK, CYCLIC[(k)] or '*'."""

    kind: str  # "BLOCK" | "CYCLIC" | "*"
    arg: Expr | None = None


@dataclass
class DistributeDirective(Directive):
    """``!HPF$ DISTRIBUTE (BLOCK, *) [ONTO P] :: A, B`` or the
    attributed form ``!HPF$ DISTRIBUTE A(BLOCK, *)``."""

    formats: list[DistFormat] = field(default_factory=list)
    targets: list[str] = field(default_factory=list)
    onto: str | None = None


@dataclass
class AlignSubscript(Node):
    """One align-source subscript: a dummy variable name or '*'.

    The paper's examples use the identity/offset forms ``A(i)``,
    ``A(i, *)``, ``H(i, j)``; we additionally support ``stride*i + off``
    affine forms on the target side.
    """

    dummy: str | None  # None means '*': replicate/collapse marker


@dataclass
class AlignDirective(Directive):
    """``!HPF$ ALIGN B(i) WITH A(i, *)`` or
    ``!HPF$ ALIGN (i) WITH A(i) :: B, C, D``."""

    source_name: str | None  # None for the '::'-list form
    source_subs: list[AlignSubscript] = field(default_factory=list)
    target_name: str = ""
    target_subs: list[Expr | None] = field(default_factory=list)  # None = '*'
    extra_targets: list[str] = field(default_factory=list)  # the :: list


@dataclass
class IndependentDirective(Directive):
    """``!HPF$ INDEPENDENT [, NEW(v, ...)] [, REDUCTION(v, ...)]`` —
    applies to the DO statement that follows it."""

    new_vars: list[str] = field(default_factory=list)
    reduction_vars: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class DimSpec(Node):
    """One declared array dimension ``lo:hi`` (lo defaults to 1)."""

    low: Expr
    high: Expr


@dataclass
class EntityDecl(Node):
    """One declared entity within a type declaration."""

    name: str
    dims: list[DimSpec] = field(default_factory=list)


@dataclass
class TypeDecl(Node):
    """``REAL A(N,N), B(N)`` / ``INTEGER :: ipvt(N)``."""

    type_name: str  # "REAL" | "INTEGER" | "LOGICAL"
    entities: list[EntityDecl] = field(default_factory=list)


@dataclass
class ParameterDecl(Node):
    """``PARAMETER (N = 513)`` — compile-time constants."""

    bindings: list[tuple[str, Expr]] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    label: int | None = field(default=None, kw_only=True)


@dataclass
class Assign(Stmt):
    target: Expr = None  # Name or ArrayRef
    value: Expr = None


@dataclass
class Do(Stmt):
    """``DO var = lb, ub [, step] ... END DO``; ``directive`` holds an
    INDEPENDENT directive immediately preceding the loop, if any."""

    var: str = ""
    low: Expr = None
    high: Expr = None
    step: Expr | None = None
    body: list[Stmt] = field(default_factory=list)
    directive: IndependentDirective | None = None


@dataclass
class If(Stmt):
    """Both the block form (THEN/ELSE/END IF) and the logical one-liner
    (``IF (cond) stmt`` — then_body holds the single statement)."""

    cond: Expr = None
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class Goto(Stmt):
    target_label: int = 0


@dataclass
class Continue(Stmt):
    """``CONTINUE`` — a no-op carrying its label (GOTO target)."""


@dataclass
class Stop(Stmt):
    pass


@dataclass
class Call(Stmt):
    """``CALL name(args)`` — used only by a few benchmark scaffolds."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Program
# --------------------------------------------------------------------------


@dataclass
class Subroutine(Node):
    """``SUBROUTINE name(p1, p2, ...) ... END [SUBROUTINE]``.

    Subroutines exist to be *inlined* (the compilation model is
    whole-program, as in the paper: "we have applied procedure-inlining
    by hand" — here the front end applies it automatically, see
    :mod:`repro.lang.inline`)."""

    name: str = ""
    params: list[str] = field(default_factory=list)
    decls: list[Node] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Program(Node):
    name: str = "MAIN"
    decls: list[Node] = field(default_factory=list)  # TypeDecl | ParameterDecl
    directives: list[Directive] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    subroutines: list[Subroutine] = field(default_factory=list)


def walk_exprs(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_exprs(expr.left)
        yield from walk_exprs(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, ArrayRef):
        for sub in expr.subscripts:
            yield from walk_exprs(sub)


def walk_stmts(stmts: list[Stmt]):
    """Yield every statement in ``stmts``, recursively, pre-order."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, Do):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
