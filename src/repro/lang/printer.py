"""Source printer (unparser) for the mini-HPF AST.

Round-tripping parsed programs through :func:`print_program` yields a
canonical form used in golden tests and in dumps of compiled programs.
"""

from __future__ import annotations

from . import ast_nodes as ast

_INDENT = "  "


def print_expr(expr: ast.Expr) -> str:
    """Render an expression with minimal (full) parenthesization of
    compound operands."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.RealLit):
        text = repr(expr.value)
        return text
    if isinstance(expr, ast.LogicalLit):
        return ".TRUE." if expr.value else ".FALSE."
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.ArrayRef):
        subs = ", ".join(print_expr(s) for s in expr.subscripts)
        return f"{expr.ident}({subs})"
    if isinstance(expr, ast.UnOp):
        return f"{expr.op}{_maybe_paren(expr.operand)}"
    if isinstance(expr, ast.BinOp):
        return f"{_maybe_paren(expr.left)} {expr.op} {_maybe_paren(expr.right)}"
    raise TypeError(f"unprintable expression {expr!r}")


def _maybe_paren(expr: ast.Expr) -> str:
    text = print_expr(expr)
    if isinstance(expr, (ast.BinOp, ast.UnOp)):
        return f"({text})"
    return text


def _print_stmt(stmt: ast.Stmt, depth: int, out: list[str]) -> None:
    pad = _INDENT * depth
    label = f"{stmt.label} " if stmt.label is not None else ""
    if isinstance(stmt, ast.Assign):
        out.append(f"{pad}{label}{print_expr(stmt.target)} = {print_expr(stmt.value)}")
    elif isinstance(stmt, ast.Do):
        if stmt.directive is not None:
            clauses = ""
            if stmt.directive.new_vars:
                clauses += f", NEW({', '.join(stmt.directive.new_vars)})"
            if stmt.directive.reduction_vars:
                clauses += f", REDUCTION({', '.join(stmt.directive.reduction_vars)})"
            out.append(f"{pad}!HPF$ INDEPENDENT{clauses}")
        step = f", {print_expr(stmt.step)}" if stmt.step is not None else ""
        out.append(
            f"{pad}{label}DO {stmt.var} = {print_expr(stmt.low)}, "
            f"{print_expr(stmt.high)}{step}"
        )
        for child in stmt.body:
            _print_stmt(child, depth + 1, out)
        out.append(f"{pad}END DO")
    elif isinstance(stmt, ast.If):
        out.append(f"{pad}{label}IF ({print_expr(stmt.cond)}) THEN")
        for child in stmt.then_body:
            _print_stmt(child, depth + 1, out)
        if stmt.else_body:
            out.append(f"{pad}ELSE")
            for child in stmt.else_body:
                _print_stmt(child, depth + 1, out)
        out.append(f"{pad}END IF")
    elif isinstance(stmt, ast.Goto):
        out.append(f"{pad}{label}GO TO {stmt.target_label}")
    elif isinstance(stmt, ast.Continue):
        out.append(f"{pad}{label}CONTINUE")
    elif isinstance(stmt, ast.Stop):
        out.append(f"{pad}{label}STOP")
    elif isinstance(stmt, ast.Call):
        args = ", ".join(print_expr(a) for a in stmt.args)
        out.append(f"{pad}{label}CALL {stmt.name}({args})")
    else:
        raise TypeError(f"unprintable statement {stmt!r}")


def _print_directive(directive: ast.Directive, out: list[str]) -> None:
    if isinstance(directive, ast.ProcessorsDirective):
        shape = ", ".join(print_expr(e) for e in directive.shape)
        out.append(f"!HPF$ PROCESSORS {directive.name}({shape})")
    elif isinstance(directive, ast.DistributeDirective):
        formats = ", ".join(
            f.kind if f.arg is None else f"{f.kind}({print_expr(f.arg)})"
            for f in directive.formats
        )
        onto = f" ONTO {directive.onto}" if directive.onto else ""
        out.append(
            f"!HPF$ DISTRIBUTE ({formats}){onto} :: {', '.join(directive.targets)}"
        )
    elif isinstance(directive, ast.AlignDirective):
        subs = ", ".join(s.dummy if s.dummy else "*" for s in directive.source_subs)
        target_subs = ", ".join(
            "*" if e is None else print_expr(e) for e in directive.target_subs
        )
        source = f"{directive.source_name}({subs})" if directive.source_name else f"({subs})"
        extra = f" :: {', '.join(directive.extra_targets)}" if directive.extra_targets else ""
        out.append(
            f"!HPF$ ALIGN {source} WITH {directive.target_name}({target_subs}){extra}"
        )
    else:
        raise TypeError(f"unprintable directive {directive!r}")


def print_program(program: ast.Program) -> str:
    """Render a whole program back to mini-HPF source."""
    out: list[str] = [f"PROGRAM {program.name}"]
    for decl in program.decls:
        if isinstance(decl, ast.TypeDecl):
            entities = []
            for entity in decl.entities:
                if entity.dims:
                    dims = ", ".join(
                        print_expr(d.high)
                        if isinstance(d.low, ast.IntLit) and d.low.value == 1
                        else f"{print_expr(d.low)}:{print_expr(d.high)}"
                        for d in entity.dims
                    )
                    entities.append(f"{entity.name}({dims})")
                else:
                    entities.append(entity.name)
            out.append(f"{_INDENT}{decl.type_name} {', '.join(entities)}")
        elif isinstance(decl, ast.ParameterDecl):
            bindings = ", ".join(f"{n} = {print_expr(e)}" for n, e in decl.bindings)
            out.append(f"{_INDENT}PARAMETER ({bindings})")
    for directive in program.directives:
        _print_directive(directive, out)
    for stmt in program.body:
        _print_stmt(stmt, 1, out)
    out.append("END PROGRAM")
    return "\n".join(out) + "\n"
