"""Token definitions for the mini-HPF front end.

The language is a small, case-insensitive Fortran-90 subset extended
with ``!HPF$`` directives — just enough to express every program in the
paper (TOMCATV, DGEFA, APPSP kernels and the Figure 1–7 fragments).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    # Structural
    NEWLINE = "NEWLINE"
    EOF = "EOF"
    DIRECTIVE = "DIRECTIVE"  # an entire !HPF$ line, content re-lexed later

    # Literals and names
    IDENT = "IDENT"
    INT = "INT"
    REAL = "REAL"
    STRING = "STRING"
    LABEL = "LABEL"  # statement label at start of line

    # Punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    POWER = "**"
    COLON = ":"
    DCOLON = "::"
    PERCENT = "%"

    # Relational (both F77 dot-form and F90 symbolic map to these)
    EQ = "=="
    NE = "/="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    # Logical
    AND = ".AND."
    OR = ".OR."
    NOT = ".NOT."
    TRUE = ".TRUE."
    FALSE = ".FALSE."


#: Keywords are lexed as IDENT and classified by the parser; this set is
#: used only to reject their use as variable names where it matters.
KEYWORDS = frozenset(
    {
        "PROGRAM",
        "SUBROUTINE",
        "END",
        "ENDDO",
        "ENDIF",
        "DO",
        "IF",
        "THEN",
        "ELSE",
        "ELSEIF",
        "GOTO",
        "GO",
        "TO",
        "CONTINUE",
        "CALL",
        "REAL",
        "INTEGER",
        "LOGICAL",
        "PARAMETER",
        "DIMENSION",
        "STOP",
        "RETURN",
        "EXIT",
    }
)

#: Intrinsic functions understood by the interpreter and the flop model.
INTRINSICS = frozenset(
    {
        "ABS",
        "MAX",
        "MIN",
        "SQRT",
        "EXP",
        "LOG",
        "SIN",
        "COS",
        "MOD",
        "SIGN",
        "DBLE",
        "REAL",
        "INT",
        "FLOAT",
    }
)

_DOT_OPS = {
    ".EQ.": TokenKind.EQ,
    ".NE.": TokenKind.NE,
    ".LT.": TokenKind.LT,
    ".LE.": TokenKind.LE,
    ".GT.": TokenKind.GT,
    ".GE.": TokenKind.GE,
    ".AND.": TokenKind.AND,
    ".OR.": TokenKind.OR,
    ".NOT.": TokenKind.NOT,
    ".TRUE.": TokenKind.TRUE,
    ".FALSE.": TokenKind.FALSE,
}


def dot_operator(text: str) -> TokenKind | None:
    """Map a ``.XX.`` spelled operator (case-insensitive) to its kind."""
    return _DOT_OPS.get(text.upper())


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location.

    ``value`` holds the uppercased identifier text for IDENT tokens, the
    numeric text for INT/REAL, the raw directive body for DIRECTIVE, and
    the operator spelling otherwise.
    """

    kind: TokenKind
    value: str
    line: int
    col: int

    def is_ident(self, name: str) -> bool:
        """True when this token is the identifier/keyword ``name``."""
        return self.kind is TokenKind.IDENT and self.value == name.upper()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, {self.line}:{self.col})"
