"""Parsing of ``!HPF$`` directive bodies.

The main lexer emits each directive line as one DIRECTIVE token; this
module re-lexes and parses the body into the directive AST nodes of
:mod:`repro.lang.ast_nodes`.

Supported forms (everything the paper's programs use)::

    PROCESSORS P(4, 4)
    DISTRIBUTE (BLOCK, *) [ONTO P] :: A, B
    DISTRIBUTE A(BLOCK, CYCLIC) [ONTO P]
    ALIGN B(i) WITH A(i, *)
    ALIGN (i) WITH A(i) :: B, C, D
    INDEPENDENT [, NEW(c)] [, REDUCTION(s)]
"""

from __future__ import annotations

from ..errors import DirectiveError
from .ast_nodes import (
    AlignDirective,
    AlignSubscript,
    BinOp,
    DistFormat,
    DistributeDirective,
    Directive,
    Expr,
    IndependentDirective,
    IntLit,
    Name,
    ProcessorsDirective,
    UnOp,
)
from .lexer import tokenize
from .tokens import Token, TokenKind


class _DirectiveParser:
    def __init__(self, body: str, line: int):
        self.tokens = tokenize(body, directive_mode=True)
        self.pos = 0
        self.line = line

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind) -> Token:
        tok = self._next()
        if tok.kind is not kind:
            raise DirectiveError(
                f"expected {kind.value!r}, found {tok.value!r}", self.line
            )
        return tok

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._peek().kind is kind:
            return self._next()
        return None

    def _at_end(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    def _ident(self) -> str:
        return self._expect(TokenKind.IDENT).value

    # -- entry point -------------------------------------------------------

    def parse(self) -> Directive:
        head = self._ident()
        if head == "PROCESSORS":
            return self._processors()
        if head == "DISTRIBUTE":
            return self._distribute()
        if head == "ALIGN":
            return self._align()
        if head == "INDEPENDENT":
            return self._independent()
        raise DirectiveError(f"unknown HPF directive {head!r}", self.line)

    # -- individual directives ----------------------------------------------

    def _processors(self) -> ProcessorsDirective:
        name = self._ident()
        shape: list[Expr] = []
        if self._accept(TokenKind.LPAREN):
            shape.append(self._simple_expr())
            while self._accept(TokenKind.COMMA):
                shape.append(self._simple_expr())
            self._expect(TokenKind.RPAREN)
        return ProcessorsDirective(name=name, shape=shape, line=self.line)

    def _dist_format(self) -> DistFormat:
        if self._accept(TokenKind.STAR):
            return DistFormat(kind="*", line=self.line)
        name = self._ident()
        if name not in ("BLOCK", "CYCLIC"):
            raise DirectiveError(f"bad distribution format {name!r}", self.line)
        arg = None
        if self._accept(TokenKind.LPAREN):
            arg = self._simple_expr()
            self._expect(TokenKind.RPAREN)
        return DistFormat(kind=name, arg=arg, line=self.line)

    def _dist_format_list(self) -> list[DistFormat]:
        formats = [self._dist_format()]
        while self._accept(TokenKind.COMMA):
            formats.append(self._dist_format())
        return formats

    def _distribute(self) -> DistributeDirective:
        formats: list[DistFormat] = []
        targets: list[str] = []
        if self._peek().kind is TokenKind.LPAREN:
            # DISTRIBUTE (fmt, ...) :: names
            self._next()
            formats = self._dist_format_list()
            self._expect(TokenKind.RPAREN)
        else:
            # DISTRIBUTE A(fmt, ...)
            targets.append(self._ident())
            self._expect(TokenKind.LPAREN)
            formats = self._dist_format_list()
            self._expect(TokenKind.RPAREN)
        onto = None
        if self._peek().is_ident("ONTO"):
            self._next()
            onto = self._ident()
        if self._accept(TokenKind.DCOLON):
            targets.append(self._ident())
            while self._accept(TokenKind.COMMA):
                targets.append(self._ident())
        if not targets:
            raise DirectiveError("DISTRIBUTE names no arrays", self.line)
        return DistributeDirective(
            formats=formats, targets=targets, onto=onto, line=self.line
        )

    def _align(self) -> AlignDirective:
        source_name: str | None = None
        source_subs: list[AlignSubscript] = []
        if self._peek().kind is TokenKind.LPAREN:
            # ALIGN (i, j) WITH A(i, j) :: B, C
            self._next()
            source_subs = self._align_source_subs()
            self._expect(TokenKind.RPAREN)
        else:
            source_name = self._ident()
            self._expect(TokenKind.LPAREN)
            source_subs = self._align_source_subs()
            self._expect(TokenKind.RPAREN)
        if not self._peek().is_ident("WITH"):
            raise DirectiveError("ALIGN missing WITH", self.line)
        self._next()
        target_name = self._ident()
        target_subs: list[Expr | None] = []
        self._expect(TokenKind.LPAREN)
        target_subs.append(self._align_target_sub())
        while self._accept(TokenKind.COMMA):
            target_subs.append(self._align_target_sub())
        self._expect(TokenKind.RPAREN)
        extra: list[str] = []
        if self._accept(TokenKind.DCOLON):
            extra.append(self._ident())
            while self._accept(TokenKind.COMMA):
                extra.append(self._ident())
        if source_name is None and not extra:
            raise DirectiveError(
                "ALIGN (dummies) WITH ... form requires a '::' target list",
                self.line,
            )
        return AlignDirective(
            source_name=source_name,
            source_subs=source_subs,
            target_name=target_name,
            target_subs=target_subs,
            extra_targets=extra,
            line=self.line,
        )

    def _align_source_subs(self) -> list[AlignSubscript]:
        subs = [self._align_source_sub()]
        while self._accept(TokenKind.COMMA):
            subs.append(self._align_source_sub())
        return subs

    def _align_source_sub(self) -> AlignSubscript:
        if self._accept(TokenKind.STAR):
            return AlignSubscript(dummy=None, line=self.line)
        if self._accept(TokenKind.COLON):
            # ':' in the source is an anonymous identity dummy.
            return AlignSubscript(dummy=":", line=self.line)
        return AlignSubscript(dummy=self._ident(), line=self.line)

    def _align_target_sub(self) -> Expr | None:
        if self._accept(TokenKind.STAR):
            return None
        if self._accept(TokenKind.COLON):
            return Name(ident=":", line=self.line)
        return self._simple_expr()

    def _independent(self) -> IndependentDirective:
        new_vars: list[str] = []
        reduction_vars: list[str] = []
        while self._accept(TokenKind.COMMA):
            clause = self._ident()
            names = self._paren_name_list()
            if clause == "NEW":
                new_vars.extend(names)
            elif clause == "REDUCTION":
                reduction_vars.extend(names)
            else:
                raise DirectiveError(
                    f"unknown INDEPENDENT clause {clause!r}", self.line
                )
        return IndependentDirective(
            new_vars=new_vars, reduction_vars=reduction_vars, line=self.line
        )

    def _paren_name_list(self) -> list[str]:
        self._expect(TokenKind.LPAREN)
        names = [self._ident()]
        while self._accept(TokenKind.COMMA):
            names.append(self._ident())
        self._expect(TokenKind.RPAREN)
        return names

    # -- expressions --------------------------------------------------------
    # Directive expressions are restricted to affine combinations of
    # dummies and integer literals: enough for 'A(i+1, 2*j)'.

    def _simple_expr(self) -> Expr:
        expr = self._term()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self._next().value
            expr = BinOp(op=op, left=expr, right=self._term(), line=self.line)
        return expr

    def _term(self) -> Expr:
        expr = self._factor()
        while self._peek().kind is TokenKind.STAR:
            # Disambiguate multiplication from a bare '*' replication
            # marker: '*' as a factor start was handled by the caller.
            self._next()
            expr = BinOp(op="*", left=expr, right=self._factor(), line=self.line)
        return expr

    def _factor(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokenKind.MINUS:
            self._next()
            return UnOp(op="-", operand=self._factor(), line=self.line)
        if tok.kind is TokenKind.INT:
            self._next()
            return IntLit(value=int(tok.value), line=self.line)
        if tok.kind is TokenKind.IDENT:
            self._next()
            return Name(ident=tok.value, line=self.line)
        if tok.kind is TokenKind.LPAREN:
            self._next()
            expr = self._simple_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise DirectiveError(
            f"unexpected token {tok.value!r} in directive expression", self.line
        )


def parse_directive(body: str, line: int = 0) -> Directive:
    """Parse the body of one ``!HPF$`` line into a directive node."""
    return _DirectiveParser(body, line).parse()
