"""Automatic procedure inlining.

The paper's DGEFA benchmark "is the HPF version of the original routine
from LINPACK, in which we have applied procedure-inlining by hand"
(Section 5). This pass applies it automatically: every ``CALL`` to a
subroutine defined in the same source is replaced by the subroutine's
body with

* formal parameters substituted by the actual arguments (Fortran
  reference semantics; actuals are therefore restricted to bare
  variable names — the LINPACK-style usage),
* local variables renamed ``<LOCAL>__<SUB>`` — keeping the leading
  letter so Fortran implicit typing is preserved — and hoisted, with
  their declarations, into the main program,
* statement labels renumbered uniquely per call site.

Inlining runs to a fixed point (subroutines may call each other) with a
depth limit guarding against recursion.
"""

from __future__ import annotations

import copy

from ..errors import SemanticError
from . import ast_nodes as ast

_MAX_DEPTH = 16


class Inliner:
    def __init__(self, program: ast.Program):
        self.program = program
        self.subs = {s.name.upper(): s for s in program.subroutines}
        self._label_base = self._max_label(program.body) + 1
        self._hoisted: list[ast.Node] = []
        self._emitted: set[str] = set()

    # ------------------------------------------------------------------

    def run(self) -> ast.Program:
        if not self.subs:
            return self.program
        self.program.body = self._inline_block(self.program.body, depth=0)
        self.program.decls.extend(self._hoisted)
        self.program.subroutines = []
        return self.program

    # ------------------------------------------------------------------

    @staticmethod
    def _max_label(stmts: list[ast.Stmt]) -> int:
        best = 0
        for stmt in ast.walk_stmts(stmts):
            if stmt.label is not None:
                best = max(best, stmt.label)
            if isinstance(stmt, ast.Goto):
                best = max(best, stmt.target_label)
        return best

    def _fresh_label_block(self, span: int) -> int:
        base = self._label_base
        self._label_base += span + 1
        return base

    # ------------------------------------------------------------------

    def _inline_block(self, stmts: list[ast.Stmt], depth: int) -> list[ast.Stmt]:
        out: list[ast.Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, ast.Call) and stmt.name.upper() in self.subs:
                if depth >= _MAX_DEPTH:
                    raise SemanticError(
                        f"inlining depth limit exceeded at CALL {stmt.name} "
                        f"(recursive subroutines are not supported)"
                    )
                out.extend(self._expand_call(stmt, depth))
            else:
                if isinstance(stmt, ast.Do):
                    stmt.body = self._inline_block(stmt.body, depth)
                elif isinstance(stmt, ast.If):
                    stmt.then_body = self._inline_block(stmt.then_body, depth)
                    stmt.else_body = self._inline_block(stmt.else_body, depth)
                out.append(stmt)
        return out

    def _expand_call(self, call: ast.Call, depth: int) -> list[ast.Stmt]:
        sub = self.subs[call.name.upper()]
        if len(call.args) != len(sub.params):
            raise SemanticError(
                f"CALL {call.name}: {len(call.args)} argument(s) for "
                f"{len(sub.params)} parameter(s)"
            )
        # Build the renaming: formals -> actual names, locals -> unique.
        rename: dict[str, str] = {}
        for formal, actual in zip(sub.params, call.args):
            if isinstance(actual, ast.Name):
                rename[formal.upper()] = actual.ident.upper()
            elif isinstance(actual, ast.ArrayRef) and not actual.subscripts:
                rename[formal.upper()] = actual.ident.upper()
            else:
                raise SemanticError(
                    f"CALL {call.name}: argument {actual!r} is not a bare "
                    f"variable name (reference-semantics inlining requires "
                    f"whole variables)"
                )
        local_names = self._local_names(sub)
        for name in local_names:
            rename[name] = f"{name}__{sub.name.upper()}"
        self._hoist_locals(sub, rename)

        body = copy.deepcopy(sub.body)
        self._rename_stmts(body, rename)
        self._renumber_labels(body)
        # Inline nested calls within the expanded body.
        return self._inline_block(body, depth + 1)

    @staticmethod
    def _local_names(sub: ast.Subroutine) -> set[str]:
        params = {p.upper() for p in sub.params}
        names: set[str] = set()
        for decl in sub.decls:
            if isinstance(decl, ast.TypeDecl):
                for entity in decl.entities:
                    if entity.name.upper() not in params:
                        names.add(entity.name.upper())
            elif isinstance(decl, ast.ParameterDecl):
                for name, _ in decl.bindings:
                    names.add(name.upper())
        # Implicitly-typed assigned scalars and loop indices also count
        # as locals (unless they are formals).
        for stmt in ast.walk_stmts(sub.body):
            if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Name):
                if stmt.target.ident.upper() not in params:
                    names.add(stmt.target.ident.upper())
            if isinstance(stmt, ast.Do) and stmt.var.upper() not in params:
                names.add(stmt.var.upper())
        return names

    def _hoist_locals(self, sub: ast.Subroutine, rename: dict[str, str]) -> None:
        params = {p.upper() for p in sub.params}
        for decl in sub.decls:
            if isinstance(decl, ast.TypeDecl):
                entities = []
                for entity in decl.entities:
                    key = entity.name.upper()
                    if key in params:
                        continue
                    new_name = rename[key]
                    if new_name in self._emitted:
                        continue
                    self._emitted.add(new_name)
                    new_entity = copy.deepcopy(entity)
                    new_entity.name = new_name
                    self._rename_entity_dims(new_entity, rename)
                    entities.append(new_entity)
                if entities:
                    self._hoisted.append(
                        ast.TypeDecl(type_name=decl.type_name, entities=entities)
                    )
            elif isinstance(decl, ast.ParameterDecl):
                bindings = []
                for name, expr in decl.bindings:
                    new_name = rename[name.upper()]
                    if new_name in self._emitted:
                        continue
                    self._emitted.add(new_name)
                    new_expr = copy.deepcopy(expr)
                    self._rename_expr(new_expr, rename)
                    bindings.append((new_name, new_expr))
                if bindings:
                    self._hoisted.append(ast.ParameterDecl(bindings=bindings))

    def _rename_entity_dims(self, entity: ast.EntityDecl, rename: dict[str, str]) -> None:
        for dim in entity.dims:
            self._rename_expr(dim.low, rename)
            self._rename_expr(dim.high, rename)

    # ------------------------------------------------------------------

    def _rename_expr(self, expr: ast.Expr, rename: dict[str, str]) -> None:
        for node in ast.walk_exprs(expr):
            if isinstance(node, ast.Name):
                node.ident = rename.get(node.ident.upper(), node.ident)
            elif isinstance(node, ast.ArrayRef):
                node.ident = rename.get(node.ident.upper(), node.ident)

    def _rename_stmts(self, stmts: list[ast.Stmt], rename: dict[str, str]) -> None:
        for stmt in ast.walk_stmts(stmts):
            if isinstance(stmt, ast.Assign):
                self._rename_expr(stmt.target, rename)
                self._rename_expr(stmt.value, rename)
            elif isinstance(stmt, ast.Do):
                stmt.var = rename.get(stmt.var.upper(), stmt.var)
                self._rename_expr(stmt.low, rename)
                self._rename_expr(stmt.high, rename)
                if stmt.step is not None:
                    self._rename_expr(stmt.step, rename)
                if stmt.directive is not None:
                    stmt.directive.new_vars = [
                        rename.get(v.upper(), v) for v in stmt.directive.new_vars
                    ]
                    stmt.directive.reduction_vars = [
                        rename.get(v.upper(), v)
                        for v in stmt.directive.reduction_vars
                    ]
            elif isinstance(stmt, ast.If):
                self._rename_expr(stmt.cond, rename)
            elif isinstance(stmt, ast.Call):
                for arg in stmt.args:
                    self._rename_expr(arg, rename)

    def _renumber_labels(self, stmts: list[ast.Stmt]) -> None:
        old_labels = sorted(
            {
                s.label
                for s in ast.walk_stmts(stmts)
                if s.label is not None
            }
            | {
                s.target_label
                for s in ast.walk_stmts(stmts)
                if isinstance(s, ast.Goto)
            }
        )
        if not old_labels:
            return
        base = self._fresh_label_block(len(old_labels))
        mapping = {old: base + k for k, old in enumerate(old_labels)}
        for stmt in ast.walk_stmts(stmts):
            if stmt.label is not None:
                stmt.label = mapping[stmt.label]
            if isinstance(stmt, ast.Goto):
                stmt.target_label = mapping[stmt.target_label]


def inline_calls(program: ast.Program) -> ast.Program:
    """Inline every CALL to a same-source subroutine, in place."""
    return Inliner(program).run()
