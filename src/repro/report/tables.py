"""Regeneration of the paper's Tables 1–3.

Each ``table*`` function compiles the corresponding benchmark under the
paper's compiler variants, prices it with the analytic estimator, and
returns a :class:`Table` whose rows mirror the paper's layout
(processor count × compiler version → execution time in seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..comm.costmodel import MachineModel
from ..core.driver import CompilerOptions, compile_source
from ..core.passes import PassManager
from ..perf.estimator import PerfEstimator
from ..programs import appsp_source, dgefa_source, tomcatv_source


@dataclass
class Table:
    title: str
    columns: list[str]
    rows: list[tuple[int, list[float]]] = field(default_factory=list)
    notes: str = ""

    def cell(self, procs: int, column: str) -> float:
        col = self.columns.index(column)
        for p, values in self.rows:
            if p == procs:
                return values[col]
        raise KeyError(f"no row for {procs} processors")

    def render(self) -> str:
        width = max(12, max(len(c) for c in self.columns) + 2)
        header = f"{'#Procs':>8} " + " ".join(f"{c:>{width}}" for c in self.columns)
        lines = [self.title, "=" * len(header), header, "-" * len(header)]
        for procs, values in self.rows:
            cells = " ".join(f"{v:>{width}.3f}" for v in values)
            lines.append(f"{procs:>8} {cells}")
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)


def _measure(
    source: str,
    options: CompilerOptions,
    machine: MachineModel | None,
    manager: PassManager | None = None,
) -> float:
    compiled = compile_source(source, options, manager=manager)
    estimator = PerfEstimator(compiled, machine)
    return estimator.estimate().total_time


def table1_tomcatv(
    n: int = 513,
    niter: int = 5,
    procs: tuple[int, ...] = (1, 2, 4, 8, 16),
    machine: MachineModel | None = None,
    manager: PassManager | None = None,
) -> Table:
    """Paper Table 1: TOMCATV under scalar replication / producer
    alignment / the selected-alignment algorithm."""
    table = Table(
        title=f"Table 1. Performance of TOMCATV, (*, BLOCK), n = {n}",
        columns=["Replication", "Producer Alignment", "Selected Alignment"],
        notes=(
            "Execution time (s), analytic SP2-class cost model. The paper's "
            "claims: replication and producer alignment never achieve "
            "speedup; only the selected alignment does, improving on the "
            "baselines by more than two orders of magnitude at 16 procs."
        ),
    )
    manager = manager or PassManager()
    for p in procs:
        src = tomcatv_source(n=n, niter=niter, procs=p)
        row = [
            _measure(src, CompilerOptions(strategy="replication"), machine, manager),
            _measure(src, CompilerOptions(strategy="producer"), machine, manager),
            _measure(src, CompilerOptions(strategy="selected"), machine, manager),
        ]
        table.rows.append((p, row))
    return table


def table2_dgefa(
    n: int = 1000,
    procs: tuple[int, ...] = (2, 4, 8, 16),
    machine: MachineModel | None = None,
    manager: PassManager | None = None,
) -> Table:
    """Paper Table 2: DGEFA with the pivot reduction scalars replicated
    ('Default') vs aligned with the owning column ('Alignment')."""
    table = Table(
        title=f"Table 2. Performance of DGEFA, (*, CYCLIC), n = {n}",
        columns=["Default", "Alignment"],
        notes=(
            "Execution time (s). 'Default' replicates the maxloc reduction "
            "scalars: every processor runs the pivot search and the pivot "
            "column is broadcast each step. 'Alignment' confines the search "
            "to the owning column; only the pivot index travels."
        ),
    )
    manager = manager or PassManager()
    for p in procs:
        src = dgefa_source(n=n, procs=p)
        row = [
            _measure(src, CompilerOptions(align_reductions=False), machine, manager),
            _measure(src, CompilerOptions(align_reductions=True), machine, manager),
        ]
        table.rows.append((p, row))
    return table


def table3_appsp(
    n: int = 64,
    niter: int = 5,
    procs: tuple[int, ...] = (2, 4, 8, 16),
    machine: MachineModel | None = None,
    manager: PassManager | None = None,
) -> Table:
    """Paper Table 3: APPSP under 1-D / 2-D distributions with and
    without (partial) array privatization."""
    table = Table(
        title=f"Table 3. Performance of APPSP, n = {n}, niter = {niter}",
        columns=[
            "1-D, No Array Priv.",
            "1-D, Priv.",
            "2-D, No Partial Priv.",
            "2-D, Partial Priv.",
        ],
        notes=(
            "Execution time (s). Without privatization the work array is "
            "replicated: parallelism is lost and its producers are "
            "re-broadcast every sweep step (the paper aborted these runs "
            "after more than a day). Under the 2-D distribution only "
            "partial privatization exposes both levels of parallelism."
        ),
    )
    manager = manager or PassManager()
    for p in procs:
        src_1d = appsp_source(nx=n, ny=n, nz=n, niter=niter, procs=p, distribution="1d")
        src_2d = appsp_source(nx=n, ny=n, nz=n, niter=niter, procs=p, distribution="2d")
        row = [
            _measure(src_1d, CompilerOptions(privatize_arrays=False), machine, manager),
            _measure(src_1d, CompilerOptions(), machine, manager),
            _measure(src_2d, CompilerOptions(partial_privatization=False), machine, manager),
            _measure(src_2d, CompilerOptions(), machine, manager),
        ]
        table.rows.append((p, row))
    return table


def all_tables() -> list[Table]:
    """Regenerate every table of the paper's evaluation section."""
    return [table1_tomcatv(), table2_dgefa(), table3_appsp()]


# ---------------------------------------------------------------------------
# Simulator-backed miniature tables: the same comparisons, measured by
# actually executing the compiled programs on the simulated machine at
# reduced problem sizes — the execution-grounded cross-check of the
# analytic tables above.
# ---------------------------------------------------------------------------


def _simulate_time(source: str, inputs, options: CompilerOptions) -> float:
    from ..machine.simulator import simulate

    compiled = compile_source(source, options)
    return simulate(compiled, inputs).elapsed


def table1_tomcatv_simulated(
    n: int = 12, niter: int = 2, procs: tuple[int, ...] = (2, 4)
) -> Table:
    """Table 1's comparison, measured by the SPMD machine simulator."""
    from ..programs import tomcatv_inputs

    table = Table(
        title=f"Table 1 (simulator), TOMCATV n = {n}",
        columns=["Replication", "Producer Alignment", "Selected Alignment"],
        notes="Virtual seconds from executing on the simulated machine.",
    )
    inputs = tomcatv_inputs(n)
    for p in procs:
        src = tomcatv_source(n=n, niter=niter, procs=p)
        row = [
            _simulate_time(src, inputs, CompilerOptions(strategy="replication")),
            _simulate_time(src, inputs, CompilerOptions(strategy="producer")),
            _simulate_time(src, inputs, CompilerOptions(strategy="selected")),
        ]
        table.rows.append((p, row))
    return table


def table3_appsp_simulated(
    n: int = 8, niter: int = 2, procs: tuple[int, ...] = (4,)
) -> Table:
    """Table 3's comparison, measured by the SPMD machine simulator."""
    from ..programs import appsp_inputs

    table = Table(
        title=f"Table 3 (simulator), APPSP n = {n}",
        columns=[
            "1-D, No Array Priv.",
            "1-D, Priv.",
            "2-D, No Partial Priv.",
            "2-D, Partial Priv.",
        ],
        notes="Virtual seconds from executing on the simulated machine.",
    )
    inputs = appsp_inputs(n, n, n)
    for p in procs:
        src_1d = appsp_source(nx=n, ny=n, nz=n, niter=niter, procs=p, distribution="1d")
        src_2d = appsp_source(nx=n, ny=n, nz=n, niter=niter, procs=p, distribution="2d")
        row = [
            _simulate_time(src_1d, inputs, CompilerOptions(privatize_arrays=False)),
            _simulate_time(src_1d, inputs, CompilerOptions()),
            _simulate_time(src_2d, inputs, CompilerOptions(partial_privatization=False)),
            _simulate_time(src_2d, inputs, CompilerOptions()),
        ]
        table.rows.append((p, row))
    return table
