"""Regeneration of the paper's Tables 1–3.

Each ``table*`` function compiles the corresponding benchmark under the
paper's compiler variants, prices it with the analytic estimator, and
returns a :class:`Table` whose rows mirror the paper's layout
(processor count × compiler version → execution time in seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..comm.costmodel import MachineModel
from ..core.driver import CompilerOptions, compile_source
from ..core.passes import PassManager
from ..programs import appsp_source, dgefa_source, tomcatv_source
from ..sweep import SweepJob, run_sweep


@dataclass
class Table:
    title: str
    columns: list[str]
    rows: list[tuple[int, list[float]]] = field(default_factory=list)
    notes: str = ""

    def cell(self, procs: int, column: str) -> float:
        col = self.columns.index(column)
        for p, values in self.rows:
            if p == procs:
                return values[col]
        raise KeyError(f"no row for {procs} processors")

    def render(self) -> str:
        width = max(12, max(len(c) for c in self.columns) + 2)
        header = f"{'#Procs':>8} " + " ".join(f"{c:>{width}}" for c in self.columns)
        lines = [self.title, "=" * len(header), header, "-" * len(header)]
        for procs, values in self.rows:
            cells = " ".join(f"{v:>{width}.3f}" for v in values)
            lines.append(f"{procs:>8} {cells}")
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)


def _job(
    program: str,
    source: str,
    procs: int,
    machine: MachineModel | None,
    **overrides,
) -> SweepJob:
    """One estimate-mode grid point.  A custom machine folds into the
    options closure: the pass pipeline never reads it, and the
    estimator prices with ``options.machine``, so the numbers are
    identical to pricing separately — while cache keys stay honest."""
    if machine is not None:
        overrides["machine"] = machine
    return SweepJob(
        program=program,
        source=source,
        procs=procs,
        options=CompilerOptions.from_overrides(**overrides),
        mode="estimate",
    )


def _measure_rows(
    jobs: list[SweepJob], columns: int, manager: PassManager | None
) -> list[list[float]]:
    """Run the table's grid through the sweep engine (serially, on the
    shared manager) and fold the results back into rows."""
    results = run_sweep(jobs, workers=0, manager=manager)
    times: list[float] = []
    for result in results:
        record = result.as_dict()
        if not record["ok"]:
            raise RuntimeError(
                f"table grid point {record['label']} failed:\n{result.error}"
            )
        times.append(record["total_time"])
    return [times[i : i + columns] for i in range(0, len(times), columns)]


def table1_tomcatv(
    n: int = 513,
    niter: int = 5,
    procs: tuple[int, ...] = (1, 2, 4, 8, 16),
    machine: MachineModel | None = None,
    manager: PassManager | None = None,
) -> Table:
    """Paper Table 1: TOMCATV under scalar replication / producer
    alignment / the selected-alignment algorithm."""
    table = Table(
        title=f"Table 1. Performance of TOMCATV, (*, BLOCK), n = {n}",
        columns=["Replication", "Producer Alignment", "Selected Alignment"],
        notes=(
            "Execution time (s), analytic SP2-class cost model. The paper's "
            "claims: replication and producer alignment never achieve "
            "speedup; only the selected alignment does, improving on the "
            "baselines by more than two orders of magnitude at 16 procs."
        ),
    )
    manager = manager or PassManager()
    jobs = []
    for p in procs:
        src = tomcatv_source(n=n, niter=niter, procs=p)
        jobs += [
            _job("tomcatv", src, p, machine, strategy=strategy)
            for strategy in ("replication", "producer", "selected")
        ]
    table.rows = list(zip(procs, _measure_rows(jobs, 3, manager)))
    return table


def table2_dgefa(
    n: int = 1000,
    procs: tuple[int, ...] = (2, 4, 8, 16),
    machine: MachineModel | None = None,
    manager: PassManager | None = None,
) -> Table:
    """Paper Table 2: DGEFA with the pivot reduction scalars replicated
    ('Default') vs aligned with the owning column ('Alignment')."""
    table = Table(
        title=f"Table 2. Performance of DGEFA, (*, CYCLIC), n = {n}",
        columns=["Default", "Alignment"],
        notes=(
            "Execution time (s). 'Default' replicates the maxloc reduction "
            "scalars: every processor runs the pivot search and the pivot "
            "column is broadcast each step. 'Alignment' confines the search "
            "to the owning column; only the pivot index travels."
        ),
    )
    manager = manager or PassManager()
    jobs = []
    for p in procs:
        src = dgefa_source(n=n, procs=p)
        jobs += [
            _job("dgefa", src, p, machine, align_reductions=False),
            _job("dgefa", src, p, machine, align_reductions=True),
        ]
    table.rows = list(zip(procs, _measure_rows(jobs, 2, manager)))
    return table


def table3_appsp(
    n: int = 64,
    niter: int = 5,
    procs: tuple[int, ...] = (2, 4, 8, 16),
    machine: MachineModel | None = None,
    manager: PassManager | None = None,
) -> Table:
    """Paper Table 3: APPSP under 1-D / 2-D distributions with and
    without (partial) array privatization."""
    table = Table(
        title=f"Table 3. Performance of APPSP, n = {n}, niter = {niter}",
        columns=[
            "1-D, No Array Priv.",
            "1-D, Priv.",
            "2-D, No Partial Priv.",
            "2-D, Partial Priv.",
        ],
        notes=(
            "Execution time (s). Without privatization the work array is "
            "replicated: parallelism is lost and its producers are "
            "re-broadcast every sweep step (the paper aborted these runs "
            "after more than a day). Under the 2-D distribution only "
            "partial privatization exposes both levels of parallelism."
        ),
    )
    manager = manager or PassManager()
    jobs = []
    for p in procs:
        src_1d = appsp_source(nx=n, ny=n, nz=n, niter=niter, procs=p, distribution="1d")
        src_2d = appsp_source(nx=n, ny=n, nz=n, niter=niter, procs=p, distribution="2d")
        jobs += [
            _job("appsp-1d", src_1d, p, machine, privatize_arrays=False),
            _job("appsp-1d", src_1d, p, machine),
            _job("appsp-2d", src_2d, p, machine, partial_privatization=False),
            _job("appsp-2d", src_2d, p, machine),
        ]
    table.rows = list(zip(procs, _measure_rows(jobs, 4, manager)))
    return table



# ---------------------------------------------------------------------------
# Simulator-backed miniature tables: the same comparisons, measured by
# actually executing the compiled programs on the simulated machine at
# reduced problem sizes — the execution-grounded cross-check of the
# analytic tables above.
# ---------------------------------------------------------------------------


def _simulate_time(source: str, inputs, options: CompilerOptions) -> float:
    from ..machine.simulator import simulate

    compiled = compile_source(source, options)
    return simulate(compiled, inputs).elapsed


def table1_tomcatv_simulated(
    n: int = 12, niter: int = 2, procs: tuple[int, ...] = (2, 4)
) -> Table:
    """Table 1's comparison, measured by the SPMD machine simulator."""
    from ..programs import tomcatv_inputs

    table = Table(
        title=f"Table 1 (simulator), TOMCATV n = {n}",
        columns=["Replication", "Producer Alignment", "Selected Alignment"],
        notes="Virtual seconds from executing on the simulated machine.",
    )
    inputs = tomcatv_inputs(n)
    for p in procs:
        src = tomcatv_source(n=n, niter=niter, procs=p)
        row = [
            _simulate_time(src, inputs, CompilerOptions(strategy="replication")),
            _simulate_time(src, inputs, CompilerOptions(strategy="producer")),
            _simulate_time(src, inputs, CompilerOptions(strategy="selected")),
        ]
        table.rows.append((p, row))
    return table


def table3_appsp_simulated(
    n: int = 8, niter: int = 2, procs: tuple[int, ...] = (4,)
) -> Table:
    """Table 3's comparison, measured by the SPMD machine simulator."""
    from ..programs import appsp_inputs

    table = Table(
        title=f"Table 3 (simulator), APPSP n = {n}",
        columns=[
            "1-D, No Array Priv.",
            "1-D, Priv.",
            "2-D, No Partial Priv.",
            "2-D, Partial Priv.",
        ],
        notes="Virtual seconds from executing on the simulated machine.",
    )
    inputs = appsp_inputs(n, n, n)
    for p in procs:
        src_1d = appsp_source(nx=n, ny=n, nz=n, niter=niter, procs=p, distribution="1d")
        src_2d = appsp_source(nx=n, ny=n, nz=n, niter=niter, procs=p, distribution="2d")
        row = [
            _simulate_time(src_1d, inputs, CompilerOptions(privatize_arrays=False)),
            _simulate_time(src_1d, inputs, CompilerOptions()),
            _simulate_time(src_2d, inputs, CompilerOptions(partial_privatization=False)),
            _simulate_time(src_2d, inputs, CompilerOptions()),
        ]
        table.rows.append((p, row))
    return table
