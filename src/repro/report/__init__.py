"""Regeneration of the paper's evaluation tables (analytic and
simulator-backed)."""

from .tables import (
    Table,
    table1_tomcatv,
    table1_tomcatv_simulated,
    table2_dgefa,
    table3_appsp,
    table3_appsp_simulated,
)

__all__ = [
    "Table",
    "table1_tomcatv",
    "table1_tomcatv_simulated",
    "table2_dgefa",
    "table3_appsp",
    "table3_appsp_simulated",
]
