"""Command-line interface.

Usage (also via ``python -m repro``)::

    repro compile PROGRAM.hpf [--procs 16] [--strategy selected] [--spmd]
    repro estimate PROGRAM.hpf [--procs 1 2 4 8 16] [...]
    repro run PROGRAM.hpf [--procs 4] [--seed 0] [--trace out.json]
              [--tier auto|interpreted|lowered|slab]
              [--metrics] [--metrics-json m.json] [--stats-json s.json]
    repro tables [--table 1 2 3] [--fast]
    repro cache stats|clear [--cache-dir DIR]

``compile`` prints the mapping report (and optionally the SPMD
pseudo-code); ``estimate`` sweeps processor counts with the analytic
SP2-class model; ``run`` executes the program on the simulated machine
with random inputs and cross-checks the sequential interpreter;
``tables`` regenerates the paper's evaluation tables; ``cache``
manages the persistent compile cache (opt in per command with
``--disk-cache`` or ``--cache-dir DIR``).

Every subcommand is a thin shell over :class:`repro.api.Session` —
the CLI parses flags into session configuration and formats what the
facade returns.
"""

from __future__ import annotations

import argparse
import sys

from .api import Session
from .codegen.spmd import print_spmd
from .core.driver import CompilerOptions
from .core.scalar_mapping import STRATEGIES
from .sweep import SweepSpec


def _compiler_options(args, num_procs: int | None = None) -> CompilerOptions:
    """Fresh options from the parsed flags; ``num_procs`` is explicit so
    sweeps build one options object per processor count instead of
    mutating the shared argparse namespace."""
    return CompilerOptions.from_overrides(
        strategy=args.strategy,
        align_reductions=not args.no_reduction_alignment,
        privatize_arrays=not args.no_array_privatization,
        partial_privatization=not args.no_partial_privatization,
        privatize_control_flow=not args.no_control_flow_privatization,
        message_vectorization=not args.no_message_vectorization,
        combine_messages=args.combine_messages,
        auto_privatize_arrays=args.auto_privatize_arrays,
        num_procs=num_procs,
    )


def _cache_arg(args):
    """The persistent compile cache is strictly opt-in on the CLI:
    ``--cache-dir DIR`` roots it at DIR, ``--disk-cache`` at the
    default root; otherwise disabled."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        return cache_dir
    return True if getattr(args, "disk_cache", False) else None


def _session(args, num_procs: int | None = None, **kwargs) -> Session:
    # a saved fit (repro calibrate --save) applies by default; a custom
    # --cache-dir also roots the calibration lookup there
    use_calibration: bool | str = not getattr(args, "no_calibration", False)
    cache_dir = getattr(args, "cache_dir", None)
    if use_calibration and cache_dir:
        use_calibration = cache_dir
    return Session(
        _compiler_options(args, num_procs=num_procs),
        cache=_cache_arg(args),
        use_calibration=use_calibration,
        **kwargs,
    )


def _add_compile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="mini-HPF source file")
    _add_option_flags(parser)


def _add_option_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="selected",
        help="scalar mapping strategy (default: the paper's algorithm)",
    )
    parser.add_argument("--no-reduction-alignment", action="store_true")
    parser.add_argument("--no-array-privatization", action="store_true")
    parser.add_argument("--no-partial-privatization", action="store_true")
    parser.add_argument("--no-control-flow-privatization", action="store_true")
    parser.add_argument("--no-message-vectorization", action="store_true")
    parser.add_argument(
        "--combine-messages",
        action="store_true",
        help="enable global message combining (paper future work)",
    )
    parser.add_argument(
        "--auto-privatize-arrays",
        action="store_true",
        help="infer array privatizability without NEW clauses (paper future work)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print the per-pass pipeline timings table",
    )
    parser.add_argument(
        "--no-calibration",
        action="store_true",
        help="ignore a saved nest-cost calibration (repro calibrate "
        "--save) and price tiers with the shipped defaults",
    )
    _add_cache_flags(parser)


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--disk-cache",
        action="store_true",
        help="reuse compiles via the persistent cache at its default "
        "root (~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="root the persistent compile cache at DIR (implies "
        "--disk-cache)",
    )


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_compile(args) -> int:
    source = _read_source(args.program)
    compiled = _session(args, num_procs=args.procs).compile(source)
    print(compiled.report())
    if getattr(args, "timings", False):
        print()
        print("pipeline timings:")
        print(compiled.timings.render())
    if getattr(args, "explain", False):
        from .core.diagnostics import diagnose, render_diagnostics

        print()
        print("diagnostics:")
        print(render_diagnostics(diagnose(compiled)))
    if args.spmd:
        print()
        print(print_spmd(compiled))
    return 0


def cmd_profile(args) -> int:
    source = _read_source(args.program)
    estimate = _session(args, num_procs=args.procs).estimate(source)
    print(estimate.summary())
    print()
    print(f"top {args.top} statements by compute time:")
    for cost in sorted(estimate.stmt_costs, key=lambda c: -c.time)[: args.top]:
        print(
            f"  {cost.time:10.4f}s  x{cost.instances:>10.0f} "
            f"(P-factor {cost.parallel_factor:4.1f})  {cost.stmt}"
        )
    if estimate.event_costs:
        print()
        print(f"top {args.top} transfers by time:")
        for cost in sorted(estimate.event_costs, key=lambda c: -c.time)[: args.top]:
            print(f"  {cost.time:10.4f}s  x{cost.instances:>8.0f}  {cost.event}")
    return 0


def cmd_estimate(args) -> int:
    import os

    source = _read_source(args.program)
    # One session for the whole sweep: its shared pass manager means
    # every procs value reuses the cached front-end analyses, and
    # --timings sees consistent option closures.
    session = _session(args)
    name = os.path.basename(args.program) if args.program != "-" else "stdin"
    spec = SweepSpec(
        programs={name: source},
        procs=tuple(args.procs),
        base=session.options,
        mode="estimate",
    )
    print(f"{'P':>6} {'total':>12} {'compute':>12} {'comm':>12}")
    failed = False
    for result in session.sweep(spec, workers=0):
        if not result.ok:
            failed = True
            print(f"{result.procs:>6} failed: {result.error.strip().splitlines()[-1]}",
                  file=sys.stderr)
            continue
        print(
            f"{result.procs:>6} {result.total_time:>11.4f}s "
            f"{result.compute_time:>11.4f}s {result.comm_time:>11.4f}s"
        )
    if getattr(args, "timings", False):
        print()
        print("pipeline timings (whole sweep):")
        print(session.manager.metrics.render())
    return 1 if failed else 0


def _trace_arg(value: str):
    """``--trace N`` keeps the legacy ring-buffer dump; ``--trace
    OUT.json`` writes a Chrome trace_event file instead."""
    try:
        return int(value)
    except ValueError:
        return value


def cmd_run(args) -> int:
    import json

    from .obs import Metrics, Tracer

    source = _read_source(args.program)

    trace_arg = getattr(args, "trace", 0)
    ring_capacity = trace_arg if isinstance(trace_arg, int) else 0
    trace_path = trace_arg if isinstance(trace_arg, str) else None
    want_metrics = bool(
        getattr(args, "metrics", False) or getattr(args, "metrics_json", None)
    )
    tracer = Tracer() if trace_path else None
    metrics = Metrics() if want_metrics else None

    session = _session(
        args, num_procs=args.procs, tracer=tracer, metrics=metrics
    )
    result = session.run(
        source,
        seed=args.seed,
        trace_capacity=ring_capacity,
        tier=getattr(args, "tier", "auto"),
    )

    for name, match in result.matches.items():
        print(f"  {name:8s} matches sequential: {match}")
    print(
        f"virtual time {result.elapsed * 1e3:.3f} ms on "
        f"{result.compiled.grid.size} processors; "
        f"{result.messages} messages, {result.fetches} fetches "
        f"({result.unexpected_fetches} unexpected)"
    )
    if ring_capacity:
        print()
        print("trace:")
        print(result.sim.trace.render())
    if tracer is not None:
        tracer.write(trace_path)
        print(f"wrote {len(tracer)} trace event(s) to {trace_path}")
    if metrics is not None:
        session.collect_metrics(metrics)
        metrics_path = getattr(args, "metrics_json", None)
        if metrics_path:
            metrics.write(metrics_path)
            print(f"wrote metrics to {metrics_path}")
        if getattr(args, "metrics", False):
            print()
            print("metrics:")
            print(metrics.render())
    stats_path = getattr(args, "stats_json", None)
    if stats_path:
        with open(stats_path, "w", encoding="utf-8") as handle:
            json.dump(result.canonical_stats(), handle, indent=1, sort_keys=True)
            handle.write("\n")
    return 0 if result.ok else 1


def cmd_tables(args) -> int:
    from .report.tables import table1_tomcatv, table2_dgefa, table3_appsp

    # One session for every table: its manager is shared across the
    # compiler variants of each cell row, so front-end analyses are
    # computed once per (program, procs).
    session = Session()
    manager = session.manager
    builders = {
        1: (lambda: table1_tomcatv(n=129, niter=3, procs=(1, 4, 16), manager=manager))
        if args.fast
        else (lambda: table1_tomcatv(manager=manager)),
        2: (lambda: table2_dgefa(n=300, procs=(4, 16), manager=manager))
        if args.fast
        else (lambda: table2_dgefa(manager=manager)),
        3: (lambda: table3_appsp(n=32, niter=2, procs=(4, 16), manager=manager))
        if args.fast
        else (lambda: table3_appsp(manager=manager)),
    }
    for number in args.table:
        print(builders[number]().render())
        print()
    if getattr(args, "timings", False):
        print("pipeline timings (all tables):")
        print(session.manager.metrics.render())
    return 0


def _parse_axis(spec: str):
    """``--axis FIELD=V1,V2,...`` -> (field, values) with values
    coerced to the CompilerOptions field's type."""
    import dataclasses

    field_name, sep, raw = spec.partition("=")
    field_name = field_name.strip()
    if not sep or not raw:
        raise SystemExit(
            f"--axis expects FIELD=V1,V2,... got {spec!r}"
        )
    types = {f.name: f.type for f in dataclasses.fields(CompilerOptions)}
    if field_name == "machine":
        raise SystemExit(
            "--axis machine=... is not supported on the CLI; build a "
            "SweepSpec with MachineModel variants through repro.Session"
        )
    if field_name not in types:
        raise SystemExit(
            f"unknown CompilerOptions axis field {field_name!r}; "
            f"valid: {sorted(types)}"
        )
    values = []
    for token in raw.split(","):
        token = token.strip()
        low = token.lower()
        if low in ("true", "false"):
            values.append(low == "true")
        else:
            try:
                values.append(int(token))
            except ValueError:
                values.append(token)
    return field_name, tuple(values)


def cmd_sweep(args) -> int:
    import json
    import os

    session = _session(args)
    programs = {}
    for path in args.programs:
        name = os.path.basename(path) if path != "-" else "stdin"
        programs[name] = _read_source(path)
    axes = dict(_parse_axis(spec) for spec in (args.axis or []))
    spec = SweepSpec(
        programs=programs,
        procs=tuple(args.procs) if args.procs else (None,),
        axes=axes,
        base=session.options,
        mode=args.sweep_mode,
        seed=args.seed,
    )
    results = session.sweep(spec, workers=args.workers, mode=args.mode)
    failed = [r for r in results if not r.ok]
    if args.json:
        print(json.dumps([r.as_dict() for r in results], indent=1,
                         sort_keys=True))
        return 1 if failed else 0
    if args.sweep_mode == "estimate":
        print(f"{'label':40s} {'total':>12} {'compute':>12} {'comm':>12}")
        for r in results:
            if r.ok:
                print(f"{r.label:40s} {r.total_time:>11.4f}s "
                      f"{r.compute_time:>11.4f}s {r.comm_time:>11.4f}s")
    elif args.sweep_mode == "simulate":
        print(f"{'label':40s} {'elapsed':>12} {'msgs':>8} {'fetches':>9} "
              f"{'slab':>6} {'via':>18}")
        for r in results:
            if r.ok:
                print(f"{r.label:40s} {r.elapsed * 1e3:>9.3f} ms "
                      f"{r.messages:>8} {r.fetches:>9} "
                      f"{r.slab_coverage:>6.2f} {r.worker:>18}")
    else:
        for r in results:
            if r.ok:
                print(f"{r.label}: compiled ok "
                      f"(grid {r.grid_size}, via {r.worker})")
    for r in failed:
        last = r.error.strip().splitlines()[-1] if r.error else "unknown"
        print(f"{r.label}: FAILED: {last}", file=sys.stderr)
    dedups = sum(r.compile_dedup for r in results)
    batched = sum(r.worker == "batched" for r in results)
    fused = sum(r.procs_lanes > 1 for r in results)
    print(f"{len(results)} points ({batched} batched, {fused} procs-fused, "
          f"{dedups} compiles deduped), {len(failed)} failed")
    return 1 if failed else 0


def cmd_calibrate(args) -> int:
    import json

    from .perf.calibrate import calibrate, save_calibration

    result = calibrate(
        repeats=args.repeats, verbose=args.verbose
    )
    if args.json:
        print(json.dumps(result.as_dict(), indent=1, sort_keys=True))
    else:
        print(result.render())
    if getattr(args, "save", False):
        path = save_calibration(result, getattr(args, "cache_dir", None))
        print(f"saved fit to {path} (sessions now apply it by default; "
              f"opt out with --no-calibration)")
    return 0


def cmd_cache(args) -> int:
    import json

    from .core.diskcache import CompileCache

    cache = CompileCache(getattr(args, "cache_dir", None))
    if args.action == "stats":
        stats = cache.stats_dict()
        del stats["session"]  # a fresh process has no activity yet
        print(json.dumps(stats, indent=1, sort_keys=True))
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import GenConfig, run_campaign

    config = GenConfig().scaled(args.scale) if args.scale != 1.0 else None
    report = run_campaign(
        seed=args.seed,
        count=args.count,
        config=config,
        sweep_every=args.sweep_every,
        artifact_dir=args.artifacts,
        shrink_steps=args.shrink_steps,
        verbose=args.verbose,
    )
    print(report.summary())
    if report.findings and args.artifacts:
        print(f"minimized reproducers written to {args.artifacts}/")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Gupta, 'On Privatization of Variables for "
            "Data-Parallel Execution' (IPPS 1997)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile and print the mapping report")
    _add_compile_flags(p_compile)
    p_compile.add_argument("--procs", type=int, default=None)
    p_compile.add_argument(
        "--spmd", action="store_true", help="also print SPMD pseudo-code"
    )
    p_compile.add_argument(
        "--explain", action="store_true", help="print compiler diagnostics"
    )
    p_compile.set_defaults(func=cmd_compile)

    p_profile = sub.add_parser(
        "profile", help="per-statement cost breakdown (analytic model)"
    )
    _add_compile_flags(p_profile)
    p_profile.add_argument("--procs", type=int, default=16)
    p_profile.add_argument("--top", type=int, default=10)
    p_profile.set_defaults(func=cmd_profile)

    p_estimate = sub.add_parser("estimate", help="analytic performance sweep")
    _add_compile_flags(p_estimate)
    p_estimate.add_argument(
        "--procs", type=int, nargs="+", default=[1, 2, 4, 8, 16]
    )
    p_estimate.set_defaults(func=cmd_estimate)

    p_run = sub.add_parser("run", help="simulate and validate against sequential")
    _add_compile_flags(p_run)
    p_run.add_argument("--procs", type=int, default=4)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--tier",
        choices=["auto", "interpreted", "lowered", "slab"],
        default="auto",
        help="execution engine: 'auto' picks slab per nest from the "
        "compiled TierPlan; the others force one tier everywhere",
    )
    p_run.add_argument(
        "--trace", type=_trace_arg, default=0, metavar="N|OUT.json",
        help="an integer prints the first N runtime communication "
        "events; a path writes a Chrome trace_event JSON file",
    )
    p_run.add_argument(
        "--metrics", action="store_true",
        help="collect and print the repro.obs metrics registry",
    )
    p_run.add_argument(
        "--metrics-json", metavar="OUT.json", default=None,
        help="write the collected metrics as flat JSON",
    )
    p_run.add_argument(
        "--stats-json", metavar="OUT.json", default=None,
        help="write canonical clocks + traffic stats JSON "
        "(the CI determinism gate diffs two of these)",
    )
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid (programs x procs x option axes)",
    )
    p_sweep.add_argument(
        "programs", nargs="+", help="mini-HPF source file(s)"
    )
    _add_option_flags(p_sweep)
    p_sweep.add_argument(
        "--procs", type=int, nargs="+", default=None,
        help="processor counts to sweep (default: each source's "
        "PROCESSORS directive)",
    )
    p_sweep.add_argument(
        "--axis", action="append", metavar="FIELD=V1,V2",
        help="sweep a CompilerOptions field (repeatable), e.g. "
        "--axis strategy=selected,producer",
    )
    p_sweep.add_argument(
        "--sweep-mode", choices=["estimate", "simulate", "compile"],
        default="simulate",
        help="what each grid point measures (default: simulate)",
    )
    p_sweep.add_argument(
        "--mode", choices=["auto", "pool", "batched"], default="auto",
        help="execution strategy: batched fuses points differing only "
        "in machine parameters or processor count into one vectorized "
        "evaluation (default: auto)",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=None,
        help="pool size for non-batched points (0: serial in-process)",
    )
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--json", action="store_true",
        help="print the full result records as JSON",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_cal = sub.add_parser(
        "calibrate",
        help="fit the tier-choice cost constants on this host",
    )
    p_cal.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per configuration (min is kept)",
    )
    p_cal.add_argument(
        "--save", action="store_true",
        help="persist the fit under the cache root so sessions (and "
        "tierplan) apply it by default",
    )
    p_cal.add_argument("--json", action="store_true")
    p_cal.add_argument("--verbose", action="store_true")
    _add_cache_flags(p_cal)
    p_cal.set_defaults(func=cmd_calibrate)

    p_cache = sub.add_parser(
        "cache", help="manage the persistent compile cache"
    )
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache root (default: ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    p_cache.set_defaults(func=cmd_cache)

    p_tables = sub.add_parser("tables", help="regenerate the paper's tables")
    p_tables.add_argument("--table", type=int, nargs="+", default=[1, 2, 3],
                          choices=[1, 2, 3])
    p_tables.add_argument("--fast", action="store_true")
    p_tables.add_argument(
        "--timings",
        action="store_true",
        help="print the aggregated per-pass pipeline timings table",
    )
    p_tables.set_defaults(func=cmd_tables)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential tier-parity fuzzing over random programs",
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (program k draws seed*1e6+k)")
    p_fuzz.add_argument("--count", type=int, default=150,
                        help="programs to generate and check")
    p_fuzz.add_argument(
        "--sweep-every", type=int, default=25, metavar="K",
        help="add the pool-vs-batched sweep lens to every Kth "
             "program (0 disables the sweep lens)",
    )
    p_fuzz.add_argument(
        "--scale", type=float, default=1.0,
        help="scale generated program size (nests, bodies) by this factor",
    )
    p_fuzz.add_argument(
        "--shrink-steps", type=int, default=400,
        help="predicate-call budget per minimization",
    )
    p_fuzz.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="write minimized reproducers + findings.json here on failure",
    )
    p_fuzz.add_argument("--verbose", action="store_true")
    p_fuzz.set_defaults(func=cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
