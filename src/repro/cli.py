"""Command-line interface.

Usage (also via ``python -m repro``)::

    repro compile PROGRAM.hpf [--procs 16] [--strategy selected] [--spmd]
    repro estimate PROGRAM.hpf [--procs 1 2 4 8 16] [...]
    repro run PROGRAM.hpf [--procs 4] [--seed 0] [--trace out.json]
              [--tier auto|interpreted|lowered|slab]
              [--metrics] [--json out.json]
    repro sweep PROGRAM.hpf [--procs 2 4] [--axis FIELD=V1,V2]
              [--measure simulate] [--exec auto] [--json]
    repro tables [--table 1 2 3] [--fast]
    repro cache stats|clear [--cache-dir DIR]
    repro serve [--service-dir DIR] [--backend inline|pool[:N]] [--once]
    repro jobs submit|status|watch|cancel [...]
    repro catalog ls|show|gc [...]

``compile`` prints the mapping report (and optionally the SPMD
pseudo-code); ``estimate`` sweeps processor counts with the analytic
SP2-class model; ``run`` executes the program on the simulated machine
with random inputs and cross-checks the sequential interpreter;
``tables`` regenerates the paper's evaluation tables; ``cache``
manages the persistent compile cache (opt in per command with
``--disk-cache`` or ``--cache-dir DIR``).  ``serve``/``jobs``/
``catalog`` drive the persistent sweep service (durable queue +
artifact catalog under ``--service-dir``): submit an experiment grid
once, run any number of ``repro serve`` workers against it, watch it
finish, and query what was measured.

Flag conventions (old spellings stay as hidden aliases):

* ``--json [OUT]`` — machine-readable output everywhere: bare
  ``--json`` prints to stdout, ``--json OUT`` writes the file.
* ``--measure`` — *what* each sweep point measures
  (estimate/simulate/compile; was ``--sweep-mode``).
* ``--exec`` — *how* the grid executes (auto/pool/batched; was
  ``--mode``).

Every subcommand is a thin shell over :class:`repro.api.Session` —
the CLI parses flags into session configuration and formats what the
facade returns.
"""

from __future__ import annotations

import argparse
import sys

from .api import Session
from .codegen.spmd import print_spmd
from .core.driver import CompilerOptions
from .core.scalar_mapping import STRATEGIES
from .sweep import SweepSpec


def _compiler_options(args, num_procs: int | None = None) -> CompilerOptions:
    """Fresh options from the parsed flags; ``num_procs`` is explicit so
    sweeps build one options object per processor count instead of
    mutating the shared argparse namespace."""
    return CompilerOptions.from_overrides(
        strategy=args.strategy,
        align_reductions=not args.no_reduction_alignment,
        privatize_arrays=not args.no_array_privatization,
        partial_privatization=not args.no_partial_privatization,
        privatize_control_flow=not args.no_control_flow_privatization,
        message_vectorization=not args.no_message_vectorization,
        combine_messages=args.combine_messages,
        auto_privatize_arrays=args.auto_privatize_arrays,
        num_procs=num_procs,
    )


def _cache_arg(args):
    """The persistent compile cache is strictly opt-in on the CLI:
    ``--cache-dir DIR`` roots it at DIR, ``--disk-cache`` at the
    default root; otherwise disabled."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        return cache_dir
    return True if getattr(args, "disk_cache", False) else None


def _session(args, num_procs: int | None = None, **kwargs) -> Session:
    # a saved fit (repro calibrate --save) applies by default; a custom
    # --cache-dir also roots the calibration lookup there
    use_calibration: bool | str = not getattr(args, "no_calibration", False)
    cache_dir = getattr(args, "cache_dir", None)
    if use_calibration and cache_dir:
        use_calibration = cache_dir
    return Session(
        _compiler_options(args, num_procs=num_procs),
        cache=_cache_arg(args),
        use_calibration=use_calibration,
        **kwargs,
    )


def _add_compile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", help="mini-HPF source file")
    _add_option_flags(parser)


def _add_option_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="selected",
        help="scalar mapping strategy (default: the paper's algorithm)",
    )
    parser.add_argument("--no-reduction-alignment", action="store_true")
    parser.add_argument("--no-array-privatization", action="store_true")
    parser.add_argument("--no-partial-privatization", action="store_true")
    parser.add_argument("--no-control-flow-privatization", action="store_true")
    parser.add_argument("--no-message-vectorization", action="store_true")
    parser.add_argument(
        "--combine-messages",
        action="store_true",
        help="enable global message combining (paper future work)",
    )
    parser.add_argument(
        "--auto-privatize-arrays",
        action="store_true",
        help="infer array privatizability without NEW clauses (paper future work)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print the per-pass pipeline timings table",
    )
    parser.add_argument(
        "--no-calibration",
        action="store_true",
        help="ignore a saved nest-cost calibration (repro calibrate "
        "--save) and price tiers with the shipped defaults",
    )
    _add_cache_flags(parser)


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--disk-cache",
        action="store_true",
        help="reuse compiles via the persistent cache at its default "
        "root (~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="root the persistent compile cache at DIR (implies "
        "--disk-cache)",
    )


def _add_json_flag(
    parser: argparse.ArgumentParser,
    help: str = "emit machine-readable JSON: bare --json prints to "
    "stdout, --json OUT writes the file",
) -> None:
    """The one ``--json [OUT]`` convention: absent → human output,
    bare → JSON on stdout, with a path → JSON written to OUT."""
    parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="OUT",
        help=help,
    )


def _emit_json(args, payload) -> None:
    import json

    text = json.dumps(payload, indent=1, sort_keys=True, default=str)
    if args.json == "-":
        print(text)
    else:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def _add_service_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--service-dir", metavar="DIR", default=None,
        help="service root holding queue.sqlite, catalog.sqlite and the "
        "compile cache (default: $REPRO_SERVICE_DIR or "
        "<cache root>/service)",
    )


def _service(args, **kwargs):
    from .service import SweepService

    return SweepService(getattr(args, "service_dir", None), **kwargs)


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_compile(args) -> int:
    source = _read_source(args.program)
    compiled = _session(args, num_procs=args.procs).compile(source)
    print(compiled.report())
    if getattr(args, "timings", False):
        print()
        print("pipeline timings:")
        print(compiled.timings.render())
    if getattr(args, "explain", False):
        from .core.diagnostics import diagnose, render_diagnostics

        print()
        print("diagnostics:")
        print(render_diagnostics(diagnose(compiled)))
    if args.spmd:
        print()
        print(print_spmd(compiled))
    return 0


def cmd_profile(args) -> int:
    source = _read_source(args.program)
    estimate = _session(args, num_procs=args.procs).estimate(source)
    print(estimate.summary())
    print()
    print(f"top {args.top} statements by compute time:")
    for cost in sorted(estimate.stmt_costs, key=lambda c: -c.time)[: args.top]:
        print(
            f"  {cost.time:10.4f}s  x{cost.instances:>10.0f} "
            f"(P-factor {cost.parallel_factor:4.1f})  {cost.stmt}"
        )
    if estimate.event_costs:
        print()
        print(f"top {args.top} transfers by time:")
        for cost in sorted(estimate.event_costs, key=lambda c: -c.time)[: args.top]:
            print(f"  {cost.time:10.4f}s  x{cost.instances:>8.0f}  {cost.event}")
    return 0


def cmd_estimate(args) -> int:
    import os

    source = _read_source(args.program)
    # One session for the whole sweep: its shared pass manager means
    # every procs value reuses the cached front-end analyses, and
    # --timings sees consistent option closures.
    session = _session(args)
    name = os.path.basename(args.program) if args.program != "-" else "stdin"
    spec = SweepSpec(
        programs={name: source},
        procs=tuple(args.procs),
        base=session.options,
        mode="estimate",
    )
    print(f"{'P':>6} {'total':>12} {'compute':>12} {'comm':>12}")
    failed = False
    for result in session.sweep(spec, workers=0):
        if not result.ok:
            failed = True
            print(f"{result.procs:>6} failed: {result.error.strip().splitlines()[-1]}",
                  file=sys.stderr)
            continue
        print(
            f"{result.procs:>6} {result.total_time:>11.4f}s "
            f"{result.compute_time:>11.4f}s {result.comm_time:>11.4f}s"
        )
    if getattr(args, "timings", False):
        print()
        print("pipeline timings (whole sweep):")
        print(session.manager.metrics.render())
    return 1 if failed else 0


def _trace_arg(value: str):
    """``--trace N`` keeps the legacy ring-buffer dump; ``--trace
    OUT.json`` writes a Chrome trace_event file instead."""
    try:
        return int(value)
    except ValueError:
        return value


def cmd_run(args) -> int:
    import json

    from .obs import Metrics, Tracer

    source = _read_source(args.program)

    trace_arg = getattr(args, "trace", 0)
    ring_capacity = trace_arg if isinstance(trace_arg, int) else 0
    trace_path = trace_arg if isinstance(trace_arg, str) else None
    want_metrics = bool(
        getattr(args, "metrics", False) or getattr(args, "metrics_json", None)
    )
    tracer = Tracer() if trace_path else None
    metrics = Metrics() if want_metrics else None

    session = _session(
        args, num_procs=args.procs, tracer=tracer, metrics=metrics
    )
    result = session.run(
        source,
        seed=args.seed,
        trace_capacity=ring_capacity,
        tier=getattr(args, "tier", "auto"),
    )

    for name, match in result.matches.items():
        print(f"  {name:8s} matches sequential: {match}")
    print(
        f"virtual time {result.elapsed * 1e3:.3f} ms on "
        f"{result.compiled.grid.size} processors; "
        f"{result.messages} messages, {result.fetches} fetches "
        f"({result.unexpected_fetches} unexpected)"
    )
    if ring_capacity:
        print()
        print("trace:")
        print(result.sim.trace.render())
    if tracer is not None:
        tracer.write(trace_path)
        print(f"wrote {len(tracer)} trace event(s) to {trace_path}")
    if metrics is not None:
        session.collect_metrics(metrics)
        metrics_path = getattr(args, "metrics_json", None)
        if metrics_path:
            metrics.write(metrics_path)
            print(f"wrote metrics to {metrics_path}")
        if getattr(args, "metrics", False):
            print()
            print("metrics:")
            print(metrics.render())
    stats_path = getattr(args, "stats_json", None)
    if stats_path:
        with open(stats_path, "w", encoding="utf-8") as handle:
            json.dump(result.canonical_stats(), handle, indent=1, sort_keys=True)
            handle.write("\n")
    if getattr(args, "json", None):
        _emit_json(args, result.as_dict())
    return 0 if result.ok else 1


def cmd_tables(args) -> int:
    from .report.tables import table1_tomcatv, table2_dgefa, table3_appsp

    # One session for every table: its manager is shared across the
    # compiler variants of each cell row, so front-end analyses are
    # computed once per (program, procs).
    session = Session()
    manager = session.manager
    builders = {
        1: (lambda: table1_tomcatv(n=129, niter=3, procs=(1, 4, 16), manager=manager))
        if args.fast
        else (lambda: table1_tomcatv(manager=manager)),
        2: (lambda: table2_dgefa(n=300, procs=(4, 16), manager=manager))
        if args.fast
        else (lambda: table2_dgefa(manager=manager)),
        3: (lambda: table3_appsp(n=32, niter=2, procs=(4, 16), manager=manager))
        if args.fast
        else (lambda: table3_appsp(manager=manager)),
    }
    for number in args.table:
        print(builders[number]().render())
        print()
    if getattr(args, "timings", False):
        print("pipeline timings (all tables):")
        print(session.manager.metrics.render())
    return 0


def _parse_axis(spec: str):
    """``--axis FIELD=V1,V2,...`` -> (field, values) with values
    coerced to the CompilerOptions field's type."""
    import dataclasses

    field_name, sep, raw = spec.partition("=")
    field_name = field_name.strip()
    if not sep or not raw:
        raise SystemExit(
            f"--axis expects FIELD=V1,V2,... got {spec!r}"
        )
    types = {f.name: f.type for f in dataclasses.fields(CompilerOptions)}
    if field_name == "machine":
        raise SystemExit(
            "--axis machine=... is not supported on the CLI; build a "
            "SweepSpec with MachineModel variants through repro.Session"
        )
    if field_name not in types:
        raise SystemExit(
            f"unknown CompilerOptions axis field {field_name!r}; "
            f"valid: {sorted(types)}"
        )
    values = []
    for token in raw.split(","):
        token = token.strip()
        low = token.lower()
        if low in ("true", "false"):
            values.append(low == "true")
        else:
            try:
                values.append(int(token))
            except ValueError:
                values.append(token)
    return field_name, tuple(values)


def _build_spec(args, session) -> SweepSpec:
    """The sweep/jobs-submit grid from the parsed flags."""
    import os

    programs = {}
    for path in args.programs:
        name = os.path.basename(path) if path != "-" else "stdin"
        programs[name] = _read_source(path)
    axes = dict(_parse_axis(spec) for spec in (args.axis or []))
    return SweepSpec(
        programs=programs,
        procs=tuple(args.procs) if args.procs else (None,),
        axes=axes,
        base=session.options,
        mode=args.measure,
        seed=args.seed,
    )


def cmd_sweep(args) -> int:
    session = _session(args)
    spec = _build_spec(args, session)
    results = session.sweep(spec, workers=args.workers, mode=args.exec_mode)
    return _render_sweep_results(args, results)


def _render_sweep_results(args, results) -> int:
    failed = [r for r in results if not r.ok]
    if args.json:
        _emit_json(args, [r.as_dict() for r in results])
        return 1 if failed else 0
    if args.measure == "estimate":
        print(f"{'label':40s} {'total':>12} {'compute':>12} {'comm':>12}")
        for r in results:
            if r.ok:
                print(f"{r.label:40s} {r.total_time:>11.4f}s "
                      f"{r.compute_time:>11.4f}s {r.comm_time:>11.4f}s")
    elif args.measure == "simulate":
        print(f"{'label':40s} {'elapsed':>12} {'msgs':>8} {'fetches':>9} "
              f"{'slab':>6} {'via':>18}")
        for r in results:
            if r.ok:
                print(f"{r.label:40s} {r.elapsed * 1e3:>9.3f} ms "
                      f"{r.messages:>8} {r.fetches:>9} "
                      f"{r.slab_coverage:>6.2f} {r.worker:>18}")
    else:
        for r in results:
            if r.ok:
                print(f"{r.label}: compiled ok "
                      f"(grid {r.grid_size}, via {r.worker})")
    for r in failed:
        last = r.error.strip().splitlines()[-1] if r.error else "unknown"
        print(f"{r.label}: FAILED: {last}", file=sys.stderr)
    dedups = sum(r.compile_dedup for r in results)
    batched = sum(r.worker == "batched" for r in results)
    fused = sum(r.procs_lanes > 1 for r in results)
    print(f"{len(results)} points ({batched} batched, {fused} procs-fused, "
          f"{dedups} compiles deduped), {len(failed)} failed")
    return 1 if failed else 0


def cmd_calibrate(args) -> int:
    from .perf.calibrate import calibrate, save_calibration

    result = calibrate(
        repeats=args.repeats, verbose=args.verbose
    )
    if args.json:
        _emit_json(args, result.as_dict())
    else:
        print(result.render())
    if getattr(args, "save", False):
        path = save_calibration(result, getattr(args, "cache_dir", None))
        print(f"saved fit to {path} (sessions now apply it by default; "
              f"opt out with --no-calibration)")
    return 0


def cmd_cache(args) -> int:
    import json

    from .core.diskcache import CompileCache

    cache = CompileCache(getattr(args, "cache_dir", None))
    if args.action == "stats":
        stats = cache.stats_dict()
        del stats["session"]  # a fresh process has no activity yet
        if getattr(args, "json", None) and args.json != "-":
            _emit_json(args, stats)
        else:
            print(json.dumps(stats, indent=1, sort_keys=True))
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import GenConfig, run_campaign

    config = GenConfig().scaled(args.scale) if args.scale != 1.0 else None
    report = run_campaign(
        seed=args.seed,
        count=args.count,
        config=config,
        sweep_every=args.sweep_every,
        artifact_dir=args.artifacts,
        shrink_steps=args.shrink_steps,
        verbose=args.verbose,
    )
    print(report.summary())
    if report.findings and args.artifacts:
        print(f"minimized reproducers written to {args.artifacts}/")
    return 0 if report.ok else 1


def _add_grid_flags(parser: argparse.ArgumentParser) -> None:
    """The shared grid-definition surface of ``sweep`` and ``jobs
    submit``: programs, procs, option axes, what to measure and how to
    execute it."""
    parser.add_argument(
        "programs", nargs="+", help="mini-HPF source file(s)"
    )
    _add_option_flags(parser)
    parser.add_argument(
        "--procs", type=int, nargs="+", default=None,
        help="processor counts to sweep (default: each source's "
        "PROCESSORS directive)",
    )
    parser.add_argument(
        "--axis", action="append", metavar="FIELD=V1,V2",
        help="sweep a CompilerOptions field (repeatable), e.g. "
        "--axis strategy=selected,producer",
    )
    parser.add_argument(
        "--measure", choices=["estimate", "simulate", "compile"],
        default="simulate", dest="measure",
        help="what each grid point measures (default: simulate)",
    )
    parser.add_argument(  # old spelling of --measure
        "--sweep-mode", choices=["estimate", "simulate", "compile"],
        dest="measure", default=argparse.SUPPRESS, help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--exec", choices=["auto", "pool", "batched"], default="auto",
        dest="exec_mode",
        help="execution strategy: batched fuses points differing only "
        "in machine parameters or processor count into one vectorized "
        "evaluation (default: auto)",
    )
    parser.add_argument(  # old spelling of --exec
        "--mode", choices=["auto", "pool", "batched"], dest="exec_mode",
        default=argparse.SUPPRESS, help=argparse.SUPPRESS,
    )
    parser.add_argument("--seed", type=int, default=0)
    _add_json_flag(
        parser,
        help="emit the full result records (shared repro.records "
        "schema); bare --json prints to stdout, --json OUT writes it",
    )


def cmd_serve(args) -> int:
    service = _service(
        args,
        backend=args.backend,
        lease_ttl=args.lease_ttl,
    )
    try:
        processed = service.serve_forever(
            poll=args.poll,
            once=args.once,
            max_shards=args.max_shards,
            idle_timeout=args.idle_timeout,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted; leases will expire", file=sys.stderr)
        return 130
    finally:
        service.close()
    print(f"served {processed} shard(s) from {service.root}")
    return 0


def cmd_jobs_submit(args) -> int:
    session = _session(args)
    service = _service(args, cache=session.cache or None)
    spec = _build_spec(args, session)
    handle = service.submit(
        spec,
        name=args.name or "",
        exec_mode=args.exec_mode,
        shards=args.shards,
    )
    status = handle.poll()
    if not args.wait:
        if args.json:
            _emit_json(args, status.as_dict())
        else:
            print(
                f"submitted job {handle.job_id} ({status.n_points} points, "
                f"{status.n_shards} shards) to {service.root}; run 'repro "
                f"serve --service-dir {service.root}' to evaluate it"
            )
        service.close()
        return 0
    # --wait drains the queue from this process (inline worker) while
    # blocking for the result — handy for scripts and tests
    service.serve_forever(once=True)
    try:
        results = handle.result(timeout=args.timeout)
    except Exception as error:
        print(f"job {handle.job_id}: {error}", file=sys.stderr)
        service.close()
        return 1
    code = _render_sweep_results(args, results)
    service.close()
    return code


def cmd_jobs_status(args) -> int:
    service = _service(args)
    try:
        if args.job_id is not None:
            payload = [service.queue.status(args.job_id)]
        else:
            payload = service.queue.list_jobs()
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        service.close()
        return 1
    if args.json:
        records = [status.as_dict() for status in payload]
        _emit_json(args, records[0] if args.job_id is not None else records)
    else:
        print(f"{'id':>4} {'state':>10} {'points':>12} {'reused':>7} "
              f"{'shards':>8} name")
        for status in payload:
            print(
                f"{status.job_id:>4} {status.state:>10} "
                f"{status.done:>5}/{status.n_points:<6} "
                f"{status.reused:>7} "
                f"{status.shards_done:>3}/{status.n_shards:<4} "
                f"{status.name}"
            )
    service.close()
    return 0


def cmd_jobs_watch(args) -> int:
    service = _service(args)
    try:
        handle = service.handle(args.job_id)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        service.close()
        return 1
    last_kind = None
    for event in handle.stream_events(timeout=args.timeout):
        print(event.render())
        last_kind = event.kind
    service.close()
    if last_kind == "done":
        return 0
    if last_kind in ("failed", "cancelled"):
        return 1
    print(f"job {args.job_id} still running after {args.timeout}s",
          file=sys.stderr)
    return 2


def cmd_jobs_cancel(args) -> int:
    service = _service(args)
    cancelled = service.queue.cancel(args.job_id)
    if cancelled:
        print(f"cancelled job {args.job_id}")
    else:
        print(f"job {args.job_id} is already terminal (or unknown)",
              file=sys.stderr)
    service.close()
    return 0 if cancelled else 1


def cmd_catalog(args) -> int:
    service = _service(args)
    catalog = service.catalog
    code = 0
    if args.action == "ls":
        rows = catalog.ls(args.kind)
        if args.json:
            _emit_json(args, {"stats": catalog.stats_dict(), "rows": rows})
        else:
            for row in rows:
                key = row.get("key") or row.get("point_key") or row.get("path")
                tag = row["table"]
                use = row.get("uses", row.get("reuses", ""))
                print(f"{tag:>12}  {str(key)[:20]:20s}  "
                      f"{row.get('program', ''):12s}  uses={use}")
            stats = catalog.stats_dict()
            print(f"{stats['artifacts']['entries']} artifact(s), "
                  f"{stats['results']['entries']} result(s), "
                  f"{stats['calibrations']} calibration(s)")
    elif args.action == "show":
        try:
            record = catalog.show(args.key)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            service.close()
            return 1
        if args.json:
            _emit_json(args, record)
        else:
            for name, value in record.items():
                if name == "record":
                    continue
                print(f"{name:20s} {value}")
            if "record" in record:
                print("record:")
                import json as _json

                print(_json.dumps(record["record"], indent=1, sort_keys=True))
    else:  # gc
        removed = catalog.gc(
            max_age_days=args.max_age_days, dry_run=args.dry_run
        )
        verb = "would remove" if args.dry_run else "removed"
        if args.json:
            _emit_json(args, {"dry_run": args.dry_run, **removed})
        else:
            print(f"{verb} {removed['orphans']} orphan(s), "
                  f"{removed['aged_artifacts']} aged artifact(s), "
                  f"{removed['aged_results']} aged result(s)")
    service.close()
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Gupta, 'On Privatization of Variables for "
            "Data-Parallel Execution' (IPPS 1997)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile and print the mapping report")
    _add_compile_flags(p_compile)
    p_compile.add_argument("--procs", type=int, default=None)
    p_compile.add_argument(
        "--spmd", action="store_true", help="also print SPMD pseudo-code"
    )
    p_compile.add_argument(
        "--explain", action="store_true", help="print compiler diagnostics"
    )
    p_compile.set_defaults(func=cmd_compile)

    p_profile = sub.add_parser(
        "profile", help="per-statement cost breakdown (analytic model)"
    )
    _add_compile_flags(p_profile)
    p_profile.add_argument("--procs", type=int, default=16)
    p_profile.add_argument("--top", type=int, default=10)
    p_profile.set_defaults(func=cmd_profile)

    p_estimate = sub.add_parser("estimate", help="analytic performance sweep")
    _add_compile_flags(p_estimate)
    p_estimate.add_argument(
        "--procs", type=int, nargs="+", default=[1, 2, 4, 8, 16]
    )
    p_estimate.set_defaults(func=cmd_estimate)

    p_run = sub.add_parser("run", help="simulate and validate against sequential")
    _add_compile_flags(p_run)
    p_run.add_argument("--procs", type=int, default=4)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--tier",
        choices=["auto", "interpreted", "lowered", "slab"],
        default="auto",
        help="execution engine: 'auto' picks slab per nest from the "
        "compiled TierPlan; the others force one tier everywhere",
    )
    p_run.add_argument(
        "--trace", type=_trace_arg, default=0, metavar="N|OUT.json",
        help="an integer prints the first N runtime communication "
        "events; a path writes a Chrome trace_event JSON file",
    )
    p_run.add_argument(
        "--metrics", action="store_true",
        help="collect and print the repro.obs metrics registry",
    )
    p_run.add_argument(
        "--metrics-json", metavar="OUT.json", default=None,
        help="write the collected metrics as flat JSON",
    )
    p_run.add_argument(
        "--stats-json", metavar="OUT.json", default=None,
        help="write canonical clocks + traffic stats JSON "
        "(the CI determinism gate diffs two of these)",
    )
    _add_json_flag(
        p_run,
        help="write the full run record (shared repro.records schema); "
        "bare --json prints to stdout",
    )
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid (programs x procs x option axes)",
    )
    _add_grid_flags(p_sweep)
    p_sweep.add_argument(
        "--workers", type=int, default=None,
        help="pool size for non-batched points (0: serial in-process)",
    )
    p_sweep.set_defaults(func=cmd_sweep)

    p_cal = sub.add_parser(
        "calibrate",
        help="fit the tier-choice cost constants on this host",
    )
    p_cal.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per configuration (min is kept)",
    )
    p_cal.add_argument(
        "--save", action="store_true",
        help="persist the fit under the cache root so sessions (and "
        "tierplan) apply it by default",
    )
    _add_json_flag(p_cal)
    p_cal.add_argument("--verbose", action="store_true")
    _add_cache_flags(p_cal)
    p_cal.set_defaults(func=cmd_calibrate)

    p_cache = sub.add_parser(
        "cache", help="manage the persistent compile cache"
    )
    p_cache.add_argument("action", choices=["stats", "clear"])
    p_cache.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache root (default: ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    _add_json_flag(p_cache)
    p_cache.set_defaults(func=cmd_cache)

    p_tables = sub.add_parser("tables", help="regenerate the paper's tables")
    p_tables.add_argument("--table", type=int, nargs="+", default=[1, 2, 3],
                          choices=[1, 2, 3])
    p_tables.add_argument("--fast", action="store_true")
    p_tables.add_argument(
        "--timings",
        action="store_true",
        help="print the aggregated per-pass pipeline timings table",
    )
    p_tables.set_defaults(func=cmd_tables)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential tier-parity fuzzing over random programs",
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (program k draws seed*1e6+k)")
    p_fuzz.add_argument("--count", type=int, default=150,
                        help="programs to generate and check")
    p_fuzz.add_argument(
        "--sweep-every", type=int, default=25, metavar="K",
        help="add the pool-vs-batched sweep lens to every Kth "
             "program (0 disables the sweep lens)",
    )
    p_fuzz.add_argument(
        "--scale", type=float, default=1.0,
        help="scale generated program size (nests, bodies) by this factor",
    )
    p_fuzz.add_argument(
        "--shrink-steps", type=int, default=400,
        help="predicate-call budget per minimization",
    )
    p_fuzz.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="write minimized reproducers + findings.json here on failure",
    )
    p_fuzz.add_argument("--verbose", action="store_true")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_serve = sub.add_parser(
        "serve",
        help="run a sweep-service worker loop against the durable queue",
    )
    _add_service_flags(p_serve)
    p_serve.add_argument(
        "--backend", default="inline", metavar="NAME[:N]",
        help="worker backend: 'inline' (in-process, default) or "
        "'pool[:N]' (supervised N-process pool)",
    )
    p_serve.add_argument(
        "--once", action="store_true",
        help="drain the queue and exit instead of waiting for new work",
    )
    p_serve.add_argument(
        "--poll", type=float, default=0.2,
        help="idle polling interval in seconds (default: 0.2)",
    )
    p_serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="exit after S seconds with nothing claimable",
    )
    p_serve.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="exit after processing N shards",
    )
    p_serve.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="S",
        help="shard lease duration in seconds (default: 60)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_jobs = sub.add_parser(
        "jobs", help="submit and track durable sweep jobs"
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)

    p_submit = jobs_sub.add_parser(
        "submit", help="persist an experiment grid as a durable job"
    )
    _add_grid_flags(p_submit)
    _add_service_flags(p_submit)
    p_submit.add_argument(
        "--name", default=None, help="human-readable job name"
    )
    p_submit.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the grid into N shards (default: one per "
        "fusion group)",
    )
    p_submit.add_argument(
        "--wait", action="store_true",
        help="evaluate the job in this process and print the results "
        "(like 'repro sweep', but through the durable queue + catalog)",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="with --wait: give up after S seconds",
    )
    p_submit.set_defaults(func=cmd_jobs_submit)

    p_status = jobs_sub.add_parser(
        "status", help="one job's progress, or every job in the queue"
    )
    p_status.add_argument("job_id", type=int, nargs="?", default=None)
    _add_service_flags(p_status)
    _add_json_flag(p_status)
    p_status.set_defaults(func=cmd_jobs_status)

    p_watch = jobs_sub.add_parser(
        "watch", help="tail a job's event log until it finishes"
    )
    p_watch.add_argument("job_id", type=int)
    p_watch.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="stop tailing after S seconds (exit code 2)",
    )
    _add_service_flags(p_watch)
    p_watch.set_defaults(func=cmd_jobs_watch)

    p_cancel = jobs_sub.add_parser("cancel", help="cancel a job")
    p_cancel.add_argument("job_id", type=int)
    _add_service_flags(p_cancel)
    p_cancel.set_defaults(func=cmd_jobs_cancel)

    p_catalog = sub.add_parser(
        "catalog", help="inspect the service's artifact catalog"
    )
    catalog_sub = p_catalog.add_subparsers(
        dest="catalog_command", required=True
    )

    p_ls = catalog_sub.add_parser(
        "ls", help="list catalogued artifacts, results, calibrations"
    )
    p_ls.add_argument(
        "--kind", choices=["all", "artifacts", "results", "calibrations"],
        default="all",
    )
    _add_service_flags(p_ls)
    _add_json_flag(p_ls)
    p_ls.set_defaults(func=cmd_catalog, action="ls")

    p_show = catalog_sub.add_parser(
        "show", help="full detail of one entry (key prefix match)"
    )
    p_show.add_argument("key")
    _add_service_flags(p_show)
    _add_json_flag(p_show)
    p_show.set_defaults(func=cmd_catalog, action="show")

    p_gc = catalog_sub.add_parser(
        "gc", help="drop orphaned and aged catalog entries"
    )
    p_gc.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="also drop entries unused for DAYS (and their cache files)",
    )
    p_gc.add_argument("--dry-run", action="store_true")
    _add_service_flags(p_gc)
    _add_json_flag(p_gc)
    p_gc.set_defaults(func=cmd_catalog, action="gc")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
