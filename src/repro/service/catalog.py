"""The artifact catalog: a queryable sqlite index over what the
service has built and measured.

The content-addressed :class:`~repro.core.diskcache.CompileCache`
already persists compiled programs, but it is write-only bookkeeping:
a directory of opaque hashes.  The catalog layers provenance and
reuse accounting on top, in three tables:

* **artifacts** — one row per compiled-program pickle the service
  touched: catalog key (the cache's content address), source hash,
  canonical options signature, pipeline fingerprint, on-disk path and
  size, and use counters;
* **results** — one row per evaluated *point identity*
  (:func:`point_key`: source x options closure x measurement mode x
  seed): the pickled :class:`~repro.sweep.spec.SweepResult`, a sha256
  of its canonical stats, and two counters — ``evaluations`` (times
  the point was actually computed; the crash-recovery gates assert
  this stays 1) and ``reuses`` (times a later job was served the
  stored record instead of recomputing);
* **calibrations** — nest-cost calibration sets the service has seen
  (path + fitted constants), so a catalog listing shows which
  constants produced which results.

``repro catalog ls|show|gc`` is the CLI surface; :meth:`Catalog.gc`
drops index rows whose cache files vanished and (optionally) ages out
old entries together with their files.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from copy import copy
from typing import TYPE_CHECKING, Any

from ..core.diskcache import options_signature, pipeline_fingerprint
from ..sweep.spec import SweepJob, SweepResult
from .db import connect, ensure_schema, transaction

if TYPE_CHECKING:
    from ..core.diskcache import CompileCache

CATALOG_SCHEMA_VERSION = 1

_DDL = """
CREATE TABLE IF NOT EXISTS artifacts (
  key TEXT PRIMARY KEY,
  kind TEXT NOT NULL DEFAULT 'compile',
  program TEXT,
  source_sha TEXT NOT NULL,
  options_signature TEXT NOT NULL,
  pipeline_fingerprint TEXT NOT NULL,
  path TEXT NOT NULL,
  bytes INTEGER,
  created_at REAL NOT NULL,
  last_used REAL NOT NULL,
  uses INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS results (
  point_key TEXT PRIMARY KEY,
  program TEXT,
  mode TEXT,
  procs INTEGER,
  seed INTEGER,
  source_sha TEXT NOT NULL,
  options_signature TEXT NOT NULL,
  canonical_sha TEXT,
  record BLOB NOT NULL,
  job_id INTEGER,
  created_at REAL NOT NULL,
  last_used REAL NOT NULL,
  evaluations INTEGER NOT NULL DEFAULT 1,
  reuses INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS calibrations (
  path TEXT PRIMARY KEY,
  constants TEXT NOT NULL,
  recorded_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_program ON results (program, mode);
CREATE INDEX IF NOT EXISTS idx_artifacts_program ON artifacts (program);
"""


def source_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def point_key(job: SweepJob) -> str:
    """The measurement identity of one grid point: source hash,
    canonical options closure (machine model included), what is
    measured, and the input seed.  Two jobs with equal keys produce
    byte-identical results, so the catalog may serve one's stored
    record to the other."""
    digest = hashlib.sha256()
    digest.update(source_sha(job.source).encode("utf-8"))
    digest.update(b"\0")
    digest.update(options_signature(job.options).encode("utf-8"))
    digest.update(b"\0")
    digest.update(f"{job.mode}:{job.seed}".encode("utf-8"))
    return digest.hexdigest()


def canonical_sha(result: SweepResult) -> str | None:
    """sha256 of the result's canonical-stats JSON (the byte-parity
    payload), or None for modes that carry none."""
    if result.canonical_stats is None:
        return None
    payload = json.dumps(result.canonical_stats, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class Catalog:
    """Sqlite index over compiled artifacts, point results, and
    calibration sets (see module doc)."""

    def __init__(self, path: str | os.PathLike):
        self.path = path
        self.conn = connect(path)
        ensure_schema(self.conn, "catalog", CATALOG_SCHEMA_VERSION, _DDL)

    def close(self) -> None:
        self.conn.close()

    # -- recording ---------------------------------------------------------

    def record_compile(
        self,
        job: SweepJob,
        cache: "CompileCache | None",
        pipeline: tuple[str, ...] | None = None,
    ) -> str | None:
        """Index the compiled artifact a point's compile produced (or
        reused) in the disk cache; returns the artifact key.  No cache,
        or a compile that never landed on disk (batched
        grid-normalization can skip it), indexes nothing (None)."""
        if cache is None:
            return None
        key = cache.key(job.source, job.options, pipeline)
        path = cache.path_for(key)
        try:
            size = path.stat().st_size
        except OSError:
            return None
        now = time.time()
        with transaction(self.conn):
            self.conn.execute(
                "INSERT INTO artifacts (key, kind, program, source_sha,"
                " options_signature, pipeline_fingerprint, path, bytes,"
                " created_at, last_used, uses)"
                " VALUES (?, 'compile', ?, ?, ?, ?, ?, ?, ?, ?, 1)"
                " ON CONFLICT(key) DO UPDATE SET last_used = excluded"
                ".last_used, uses = uses + 1, bytes = excluded.bytes",
                (
                    key,
                    job.program,
                    source_sha(job.source),
                    options_signature(job.options),
                    pipeline_fingerprint(pipeline),
                    str(path),
                    size,
                    now,
                    now,
                ),
            )
        return key

    def record_result(
        self, job: SweepJob, result: SweepResult, *, job_id: int | None = None
    ) -> str:
        """Store one freshly evaluated point under its identity key.
        Re-recording the same key (a crash replayed an uncommitted
        evaluation, or two jobs raced) increments ``evaluations`` —
        the counter the exactly-once gates read."""
        key = point_key(job)
        now = time.time()
        with transaction(self.conn):
            self.conn.execute(
                "INSERT INTO results (point_key, program, mode, procs, seed,"
                " source_sha, options_signature, canonical_sha, record,"
                " job_id, created_at, last_used)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(point_key) DO UPDATE SET"
                " evaluations = evaluations + 1, record = excluded.record,"
                " canonical_sha = excluded.canonical_sha,"
                " last_used = excluded.last_used",
                (
                    key,
                    job.program,
                    job.mode,
                    job.procs,
                    job.seed,
                    source_sha(job.source),
                    options_signature(job.options),
                    canonical_sha(result),
                    pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
                    job_id,
                    now,
                    now,
                ),
            )
        return key

    def record_calibration(
        self, path: str | os.PathLike, constants: dict[str, float]
    ) -> None:
        with transaction(self.conn):
            self.conn.execute(
                "INSERT INTO calibrations (path, constants, recorded_at)"
                " VALUES (?, ?, ?) ON CONFLICT(path) DO UPDATE SET"
                " constants = excluded.constants,"
                " recorded_at = excluded.recorded_at",
                (str(path), json.dumps(constants, sort_keys=True), time.time()),
            )

    # -- lookup / reuse ----------------------------------------------------

    def lookup(self, job: SweepJob) -> SweepResult | None:
        """The stored result for this point identity, or None.  A hit
        bumps the ``reuses`` counter and comes back tagged
        ``worker="catalog"`` so provenance stays visible; everything
        the byte-parity gates compare is the stored record verbatim."""
        key = point_key(job)
        row = self.conn.execute(
            "SELECT record FROM results WHERE point_key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        with transaction(self.conn):
            self.conn.execute(
                "UPDATE results SET reuses = reuses + 1, last_used = ?"
                " WHERE point_key = ?",
                (time.time(), key),
            )
        result = copy(pickle.loads(row["record"]))
        result.worker = "catalog"
        return result

    def evaluations(self, job_or_key: "SweepJob | str") -> int:
        """How many times this point identity was actually computed
        (0: never recorded)."""
        key = (
            job_or_key
            if isinstance(job_or_key, str)
            else point_key(job_or_key)
        )
        row = self.conn.execute(
            "SELECT evaluations FROM results WHERE point_key = ?", (key,)
        ).fetchone()
        return row["evaluations"] if row else 0

    # -- querying ----------------------------------------------------------

    def ls(self, kind: str = "all") -> list[dict[str, Any]]:
        """Flat rows for ``repro catalog ls``: artifacts, results,
        calibrations, or all three (tagged by ``table``)."""
        if kind not in ("all", "artifacts", "results", "calibrations"):
            raise ValueError(f"unknown catalog kind {kind!r}")
        rows: list[dict[str, Any]] = []
        if kind in ("all", "artifacts"):
            for row in self.conn.execute(
                "SELECT * FROM artifacts ORDER BY created_at"
            ):
                record = dict(row)
                record["table"] = "artifacts"
                rows.append(record)
        if kind in ("all", "results"):
            for row in self.conn.execute(
                "SELECT point_key, program, mode, procs, seed,"
                " canonical_sha, job_id, created_at, last_used,"
                " evaluations, reuses FROM results ORDER BY created_at"
            ):
                record = dict(row)
                record["table"] = "results"
                rows.append(record)
        if kind in ("all", "calibrations"):
            for row in self.conn.execute(
                "SELECT * FROM calibrations ORDER BY recorded_at"
            ):
                record = dict(row)
                record["constants"] = json.loads(record["constants"])
                record["table"] = "calibrations"
                rows.append(record)
        return rows

    def show(self, key: str) -> dict[str, Any]:
        """Full detail of one artifact or result row (prefix match on
        the key, like git); the result's record is expanded to its
        ``as_dict()`` form."""
        row = self.conn.execute(
            "SELECT * FROM artifacts WHERE key LIKE ? || '%'", (key,)
        ).fetchone()
        if row is not None:
            record = dict(row)
            record["table"] = "artifacts"
            record["exists"] = os.path.exists(record["path"])
            return record
        row = self.conn.execute(
            "SELECT * FROM results WHERE point_key LIKE ? || '%'", (key,)
        ).fetchone()
        if row is not None:
            record = dict(row)
            record["table"] = "results"
            record["record"] = pickle.loads(record["record"]).as_dict()
            return record
        raise KeyError(f"no catalog entry matches {key!r}")

    def gc(
        self,
        *,
        max_age_days: float | None = None,
        dry_run: bool = False,
    ) -> dict[str, int]:
        """Garbage-collect the catalog: drop artifact rows whose cache
        file vanished (*orphans*), and — when ``max_age_days`` is given
        — artifacts and results not used within the window, unlinking
        aged artifacts' cache files too.  Returns removal counts."""
        removed = {"orphans": 0, "aged_artifacts": 0, "aged_results": 0}
        cutoff = (
            time.time() - max_age_days * 86400.0
            if max_age_days is not None
            else None
        )
        with transaction(self.conn):
            for row in self.conn.execute(
                "SELECT key, path, last_used FROM artifacts"
            ).fetchall():
                missing = not os.path.exists(row["path"])
                aged = cutoff is not None and row["last_used"] < cutoff
                if not (missing or aged):
                    continue
                removed["orphans" if missing else "aged_artifacts"] += 1
                if dry_run:
                    continue
                if aged and not missing:
                    try:
                        os.unlink(row["path"])
                    except OSError:
                        pass
                self.conn.execute(
                    "DELETE FROM artifacts WHERE key = ?", (row["key"],)
                )
            if cutoff is not None:
                stale = self.conn.execute(
                    "SELECT COUNT(*) AS n FROM results WHERE last_used < ?",
                    (cutoff,),
                ).fetchone()["n"]
                removed["aged_results"] = stale
                if not dry_run and stale:
                    self.conn.execute(
                        "DELETE FROM results WHERE last_used < ?", (cutoff,)
                    )
        return removed

    def stats_dict(self) -> dict[str, Any]:
        """Footprint summary (``repro catalog ls --json`` header and
        the CI artifact)."""
        artifacts = self.conn.execute(
            "SELECT COUNT(*) AS n, COALESCE(SUM(bytes), 0) AS bytes,"
            " COALESCE(SUM(uses), 0) AS uses FROM artifacts"
        ).fetchone()
        results = self.conn.execute(
            "SELECT COUNT(*) AS n, COALESCE(SUM(evaluations), 0) AS evals,"
            " COALESCE(SUM(reuses), 0) AS reuses FROM results"
        ).fetchone()
        calibrations = self.conn.execute(
            "SELECT COUNT(*) AS n FROM calibrations"
        ).fetchone()["n"]
        return {
            "path": str(self.path),
            "schema": CATALOG_SCHEMA_VERSION,
            "artifacts": {
                "entries": artifacts["n"],
                "bytes": artifacts["bytes"],
                "uses": artifacts["uses"],
            },
            "results": {
                "entries": results["n"],
                "evaluations": results["evals"],
                "reuses": results["reuses"],
            },
            "calibrations": calibrations,
        }
