"""Shared sqlite plumbing for the service's durable stores.

Both service databases — the job queue and the artifact catalog — are
single-file sqlite databases opened in WAL mode so a submitting client,
several ``repro serve`` worker processes, and a ``repro jobs watch``
poller can read and write concurrently without corrupting each other:
WAL gives readers a consistent snapshot while one writer commits, and
``busy_timeout`` turns writer contention into a bounded wait instead
of an immediate ``database is locked`` error.

Schema versions live in a ``schema_info`` table per database.  A
database written by a *newer* schema than the code understands is
refused loudly (the caller should upgrade, not silently corrupt);
missing tables are created on first open.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path

#: how long a writer waits on a locked database before erroring (ms)
BUSY_TIMEOUT_MS = 30_000


class SchemaMismatch(RuntimeError):
    """The on-disk schema is newer than this code understands."""


def connect(path: str | os.PathLike) -> sqlite3.Connection:
    """Open (creating if needed) a service database in WAL mode with
    row access by column name and autocommit semantics — transactions
    are always explicit ``BEGIN IMMEDIATE`` blocks."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(
        str(path), timeout=BUSY_TIMEOUT_MS / 1000.0, isolation_level=None
    )
    conn.row_factory = sqlite3.Row
    conn.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
    conn.execute("PRAGMA journal_mode = WAL")
    conn.execute("PRAGMA synchronous = NORMAL")
    conn.execute("PRAGMA foreign_keys = ON")
    return conn


def ensure_schema(
    conn: sqlite3.Connection, name: str, version: int, ddl: str
) -> None:
    """Create ``ddl`` (idempotent ``CREATE TABLE IF NOT EXISTS``
    statements, ``;``-separated, no semicolons inside literals) and
    record ``version`` under ``name``.  An on-disk version *newer*
    than ``version`` raises :class:`SchemaMismatch`; an older one is
    overwritten after the DDL runs (the DDL must stay additive within
    a major schema)."""
    # not executescript: that implicitly COMMITs any open transaction
    with transaction(conn):
        conn.execute(
            "CREATE TABLE IF NOT EXISTS schema_info ("
            " name TEXT PRIMARY KEY, version INTEGER NOT NULL)"
        )
        row = conn.execute(
            "SELECT version FROM schema_info WHERE name = ?", (name,)
        ).fetchone()
        if row is not None and row["version"] > version:
            raise SchemaMismatch(
                f"{name} database is schema v{row['version']}, but this "
                f"release only understands v{version}; refusing to touch it"
            )
        for statement in ddl.split(";"):
            if statement.strip():
                conn.execute(statement)
        conn.execute(
            "INSERT INTO schema_info (name, version) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET version = excluded.version",
            (name, version),
        )


class transaction:
    """``with transaction(conn):`` — an immediate write transaction
    that commits on success and rolls back on any exception.  Nested
    use is a no-op inner block (sqlite has no nested transactions; the
    outermost owner commits)."""

    def __init__(self, conn: sqlite3.Connection):
        self.conn = conn
        self.owns = False

    def __enter__(self):
        if not self.conn.in_transaction:
            self.conn.execute("BEGIN IMMEDIATE")
            self.owns = True
        return self.conn

    def __exit__(self, exc_type, exc, tb):
        if not self.owns:
            return False
        if exc_type is None:
            self.conn.execute("COMMIT")
        else:
            self.conn.execute("ROLLBACK")
        return False
