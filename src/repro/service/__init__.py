"""Persistent sweep service: durable job queue, artifact catalog, and
pluggable worker backends over one service directory.

See :mod:`repro.service.service` for the execution model and
``docs/SERVICE.md`` for the protocol walkthrough.
"""

from .catalog import Catalog, canonical_sha, point_key, source_sha
from .db import SchemaMismatch
from .queue import Event, JobQueue, JobStatus, make_owner
from .service import (
    KILL_AFTER_ENV,
    JobFailed,
    JobHandle,
    SweepService,
    default_service_dir,
)
from .worker import (
    BACKENDS,
    InlineBackend,
    PoolBackend,
    WorkerBackend,
    as_backend,
    shard_jobs,
)

__all__ = [
    "BACKENDS",
    "Catalog",
    "Event",
    "InlineBackend",
    "JobFailed",
    "JobHandle",
    "JobQueue",
    "JobStatus",
    "KILL_AFTER_ENV",
    "PoolBackend",
    "SchemaMismatch",
    "SweepService",
    "WorkerBackend",
    "as_backend",
    "canonical_sha",
    "default_service_dir",
    "make_owner",
    "point_key",
    "shard_jobs",
    "source_sha",
]
