"""The durable job queue: sweep work that survives the process.

A *job* is a submitted experiment grid — an ordered list of
:class:`~repro.sweep.spec.SweepJob` points.  On submit the grid is
persisted point-by-point to sqlite, pre-partitioned into *shards*
(fusion-preserving groups of points, see
:func:`repro.service.worker.shard_jobs`), and becomes claimable by any
worker process sharing the queue database:

* **states** — a job is ``queued`` → ``running`` → ``done`` (or
  ``failed`` / ``cancelled``); a shard is ``ready`` → ``leased`` →
  ``done``; a point is ``pending`` → ``done``.
* **leases** — claiming a shard takes a lease (owner tag + expiry);
  workers extend it by heartbeating.  A shard whose lease expired —
  or whose owner is a dead local pid — is reclaimable by anyone, so a
  killed worker forfeits only its in-flight shard, never the job.
* **durability** — every completed point commits its pickled
  :class:`~repro.sweep.spec.SweepResult` in the same transaction that
  flips the point state, so a crash between points loses nothing and
  a restarted service resumes exactly the pending points.
* **events** — submit/claim/point/shard/terminal transitions append to
  a monotonic per-queue event log that ``JobHandle.stream_events`` and
  ``repro jobs watch`` tail.

The queue stores *work*; measurement artifacts (compiled programs,
per-point results indexed for reuse) live in the
:class:`repro.service.catalog.Catalog`.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..sweep.spec import SweepJob, SweepResult
from .db import connect, ensure_schema, transaction

QUEUE_SCHEMA_VERSION = 1

#: job states; ``TERMINAL_STATES`` end the job's lifecycle
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

_DDL = """
CREATE TABLE IF NOT EXISTS jobs (
  id INTEGER PRIMARY KEY AUTOINCREMENT,
  name TEXT NOT NULL,
  state TEXT NOT NULL DEFAULT 'queued',
  exec_mode TEXT NOT NULL DEFAULT 'auto',
  n_points INTEGER NOT NULL,
  n_shards INTEGER NOT NULL,
  submitted_at REAL NOT NULL,
  started_at REAL,
  finished_at REAL,
  error TEXT
);
CREATE TABLE IF NOT EXISTS points (
  job_id INTEGER NOT NULL REFERENCES jobs(id) ON DELETE CASCADE,
  idx INTEGER NOT NULL,
  shard INTEGER NOT NULL,
  state TEXT NOT NULL DEFAULT 'pending',
  point_key TEXT NOT NULL,
  label TEXT NOT NULL,
  job BLOB NOT NULL,
  result BLOB,
  reused INTEGER NOT NULL DEFAULT 0,
  finished_at REAL,
  PRIMARY KEY (job_id, idx)
);
CREATE TABLE IF NOT EXISTS shards (
  job_id INTEGER NOT NULL REFERENCES jobs(id) ON DELETE CASCADE,
  shard INTEGER NOT NULL,
  state TEXT NOT NULL DEFAULT 'ready',
  owner TEXT,
  lease_expires REAL,
  heartbeat_at REAL,
  attempts INTEGER NOT NULL DEFAULT 0,
  PRIMARY KEY (job_id, shard)
);
CREATE TABLE IF NOT EXISTS events (
  seq INTEGER PRIMARY KEY AUTOINCREMENT,
  job_id INTEGER NOT NULL,
  ts REAL NOT NULL,
  kind TEXT NOT NULL,
  payload TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_points_state
  ON points (job_id, state);
CREATE INDEX IF NOT EXISTS idx_shards_claimable
  ON shards (state, job_id);
CREATE INDEX IF NOT EXISTS idx_events_job
  ON events (job_id, seq);
"""


def make_owner() -> str:
    """A worker identity: ``host:pid:token``.  The host + pid let a
    sibling worker on the same machine detect a dead owner without
    waiting out the lease; the token disambiguates pid reuse."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


def _owner_is_dead(owner: str | None) -> bool:
    """True only when ``owner`` names a pid on *this* host that no
    longer exists — remote owners are never presumed dead (their lease
    expiry decides)."""
    if not owner:
        return False
    host, _, rest = owner.partition(":")
    pid_text = rest.partition(":")[0]
    if host != socket.gethostname() or not pid_text.isdigit():
        return False
    pid = int(pid_text)
    if pid == os.getpid():
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False
    return False


@dataclass
class Event:
    """One row of the append-only event log."""

    seq: int
    job_id: int
    ts: float
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.payload.items())
        return f"[{self.seq:>5}] job {self.job_id} {self.kind} {detail}".rstrip()


@dataclass
class JobStatus:
    """A job's current shape: state plus point/shard progress."""

    job_id: int
    name: str
    state: str
    exec_mode: str
    n_points: int
    done: int
    failed: int
    reused: int
    n_shards: int
    shards_done: int
    submitted_at: float
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON record in the shared :mod:`repro.records` schema
        (``kind="job"``)."""
        from ..records import result_record

        return result_record(
            "job",
            job_id=self.job_id,
            name=self.name,
            state=self.state,
            exec_mode=self.exec_mode,
            points=self.n_points,
            done=self.done,
            failed=self.failed,
            reused=self.reused,
            shards=self.n_shards,
            shards_done=self.shards_done,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            error=self.error,
        )


@dataclass
class Claim:
    """A leased shard: the pending points (original grid index +
    deserialized job) the claimant must evaluate."""

    job_id: int
    shard: int
    owner: str
    exec_mode: str
    points: list[tuple[int, SweepJob]]


class JobQueue:
    """Durable sqlite-backed queue of sweep jobs (see module doc)."""

    def __init__(self, path: str | os.PathLike, *, lease_ttl: float = 60.0):
        self.path = path
        self.lease_ttl = float(lease_ttl)
        self.conn = connect(path)
        ensure_schema(self.conn, "queue", QUEUE_SCHEMA_VERSION, _DDL)

    def close(self) -> None:
        self.conn.close()

    # -- event log ---------------------------------------------------------

    def _emit(self, job_id: int, kind: str, **payload: Any) -> None:
        self.conn.execute(
            "INSERT INTO events (job_id, ts, kind, payload) VALUES (?, ?, ?, ?)",
            (job_id, time.time(), kind, json.dumps(payload, default=str)),
        )

    def events_since(self, job_id: int, seq: int = 0) -> list[Event]:
        rows = self.conn.execute(
            "SELECT * FROM events WHERE job_id = ? AND seq > ? ORDER BY seq",
            (job_id, seq),
        ).fetchall()
        return [
            Event(
                seq=row["seq"],
                job_id=row["job_id"],
                ts=row["ts"],
                kind=row["kind"],
                payload=json.loads(row["payload"]),
            )
            for row in rows
        ]

    # -- submit ------------------------------------------------------------

    def submit(
        self,
        jobs: Sequence[SweepJob],
        keys: Sequence[str],
        shards: Sequence[Sequence[int]],
        *,
        name: str = "",
        exec_mode: str = "auto",
    ) -> int:
        """Persist a grid and its shard assignment; returns the job id.
        ``keys`` are the points' catalog identities (for dedup
        accounting), ``shards`` the point-index partition."""
        if len(jobs) != len(keys):
            raise ValueError("one catalog key per grid point required")
        assigned = sorted(i for shard in shards for i in shard)
        if assigned != list(range(len(jobs))):
            raise ValueError("shards must partition the grid exactly")
        now = time.time()
        with transaction(self.conn):
            cursor = self.conn.execute(
                "INSERT INTO jobs (name, state, exec_mode, n_points,"
                " n_shards, submitted_at) VALUES (?, 'queued', ?, ?, ?, ?)",
                (name or "sweep", exec_mode, len(jobs), len(shards), now),
            )
            job_id = cursor.lastrowid
            shard_of = {
                idx: number
                for number, shard in enumerate(shards)
                for idx in shard
            }
            self.conn.executemany(
                "INSERT INTO points (job_id, idx, shard, point_key, label,"
                " job) VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (
                        job_id,
                        idx,
                        shard_of[idx],
                        keys[idx],
                        job.label,
                        pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL),
                    )
                    for idx, job in enumerate(jobs)
                ],
            )
            self.conn.executemany(
                "INSERT INTO shards (job_id, shard) VALUES (?, ?)",
                [(job_id, number) for number in range(len(shards))],
            )
            self._emit(
                job_id,
                "submitted",
                name=name,
                points=len(jobs),
                shards=len(shards),
                exec_mode=exec_mode,
            )
        return job_id

    # -- claim / lease -----------------------------------------------------

    def claim(self, owner: str) -> Claim | None:
        """Lease one shard of work, or None when nothing is claimable.
        Prefers fresh ``ready`` shards, then shards whose lease expired
        or whose owner died; completed points of a reclaimed shard are
        *not* reissued."""
        now = time.time()
        with transaction(self.conn):
            row = self.conn.execute(
                "SELECT s.job_id, s.shard, s.state, s.owner, s.attempts,"
                " j.exec_mode FROM shards s JOIN jobs j ON j.id = s.job_id"
                " WHERE j.state IN ('queued', 'running')"
                " AND (s.state = 'ready' OR (s.state = 'leased'"
                "      AND s.lease_expires < ?))"
                " ORDER BY s.state = 'ready' DESC, s.job_id, s.shard LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                row = self._find_dead_owner_shard()
            if row is None:
                return None
            job_id, shard = row["job_id"], row["shard"]
            reclaimed = row["state"] == "leased"
            self.conn.execute(
                "UPDATE shards SET state = 'leased', owner = ?,"
                " lease_expires = ?, heartbeat_at = ?, attempts = attempts + 1"
                " WHERE job_id = ? AND shard = ?",
                (owner, now + self.lease_ttl, now, job_id, shard),
            )
            self.conn.execute(
                "UPDATE jobs SET state = 'running', started_at ="
                " COALESCE(started_at, ?) WHERE id = ? AND state = 'queued'",
                (now, job_id),
            )
            pending = self.conn.execute(
                "SELECT idx, job FROM points WHERE job_id = ? AND shard = ?"
                " AND state = 'pending' ORDER BY idx",
                (job_id, shard),
            ).fetchall()
            self._emit(
                job_id,
                "reclaimed" if reclaimed else "claimed",
                shard=shard,
                owner=owner,
                pending=len(pending),
                attempt=row["attempts"] + 1,
            )
        return Claim(
            job_id=job_id,
            shard=shard,
            owner=owner,
            exec_mode=row["exec_mode"],
            points=[(r["idx"], pickle.loads(r["job"])) for r in pending],
        )

    def _find_dead_owner_shard(self):
        """A leased, unexpired shard whose owner is a dead local pid —
        reclaimable immediately instead of waiting out the lease."""
        rows = self.conn.execute(
            "SELECT s.job_id, s.shard, s.state, s.owner, s.attempts,"
            " j.exec_mode FROM shards s JOIN jobs j ON j.id = s.job_id"
            " WHERE j.state = 'running' AND s.state = 'leased'"
            " ORDER BY s.job_id, s.shard",
        ).fetchall()
        for row in rows:
            if _owner_is_dead(row["owner"]):
                return row
        return None

    def heartbeat(self, job_id: int, shard: int, owner: str) -> bool:
        """Extend the lease; False means the lease was lost (reclaimed
        by someone else) or the job was cancelled — the worker should
        abandon the shard."""
        now = time.time()
        with transaction(self.conn):
            cancelled = self.conn.execute(
                "SELECT 1 FROM jobs WHERE id = ? AND state = 'cancelled'",
                (job_id,),
            ).fetchone()
            if cancelled:
                return False
            cursor = self.conn.execute(
                "UPDATE shards SET lease_expires = ?, heartbeat_at = ?"
                " WHERE job_id = ? AND shard = ? AND owner = ?"
                " AND state = 'leased'",
                (now + self.lease_ttl, now, job_id, shard, owner),
            )
            return cursor.rowcount > 0

    # -- completion --------------------------------------------------------

    def complete_point(
        self,
        job_id: int,
        idx: int,
        result: SweepResult,
        *,
        reused: bool = False,
    ) -> bool:
        """Commit one point's result (state flip + pickled record in
        one transaction).  Returns False if the point was already done
        — a racing double-completion is dropped, not duplicated."""
        now = time.time()
        with transaction(self.conn):
            cursor = self.conn.execute(
                "UPDATE points SET state = 'done', result = ?, reused = ?,"
                " finished_at = ? WHERE job_id = ? AND idx = ?"
                " AND state = 'pending'",
                (
                    pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
                    int(reused),
                    now,
                    job_id,
                    idx,
                ),
            )
            if cursor.rowcount == 0:
                return False
            self._emit(
                job_id,
                "point",
                idx=idx,
                label=result.label,
                ok=result.ok,
                reused=reused,
            )
        return True

    def finish_shard(self, job_id: int, shard: int, owner: str) -> bool:
        """Mark a fully-evaluated shard done (only by its lease owner);
        when it was the last one, the job completes — ``done`` if every
        point has a result, ``failed`` if any is still pending (should
        not happen) — and a terminal event fires."""
        now = time.time()
        with transaction(self.conn):
            pending = self.conn.execute(
                "SELECT COUNT(*) AS n FROM points WHERE job_id = ?"
                " AND shard = ? AND state = 'pending'",
                (job_id, shard),
            ).fetchone()["n"]
            if pending:
                return False
            cursor = self.conn.execute(
                "UPDATE shards SET state = 'done', owner = NULL,"
                " lease_expires = NULL WHERE job_id = ? AND shard = ?"
                " AND owner = ? AND state = 'leased'",
                (job_id, shard, owner),
            )
            if cursor.rowcount == 0:
                return False
            self._emit(job_id, "shard_done", shard=shard, owner=owner)
            left = self.conn.execute(
                "SELECT COUNT(*) AS n FROM shards WHERE job_id = ?"
                " AND state != 'done'",
                (job_id,),
            ).fetchone()["n"]
            if left == 0:
                self.conn.execute(
                    "UPDATE jobs SET state = 'done', finished_at = ?"
                    " WHERE id = ? AND state = 'running'",
                    (now, job_id),
                )
                self._emit(job_id, "done")
        return True

    def release_shard(
        self, job_id: int, shard: int, owner: str, reason: str = ""
    ) -> None:
        """Give an unfinished shard back (worker shutting down or
        abandoning a cancelled job): the lease drops and the shard
        becomes ``ready`` again."""
        with transaction(self.conn):
            cursor = self.conn.execute(
                "UPDATE shards SET state = 'ready', owner = NULL,"
                " lease_expires = NULL WHERE job_id = ? AND shard = ?"
                " AND owner = ? AND state = 'leased'",
                (job_id, shard, owner),
            )
            if cursor.rowcount:
                self._emit(
                    job_id, "released", shard=shard, owner=owner, reason=reason
                )

    def cancel(self, job_id: int) -> bool:
        """Cancel a non-terminal job.  In-flight shards notice at their
        next heartbeat; completed point results are kept."""
        now = time.time()
        with transaction(self.conn):
            cursor = self.conn.execute(
                "UPDATE jobs SET state = 'cancelled', finished_at = ?"
                " WHERE id = ? AND state IN ('queued', 'running')",
                (now, job_id),
            )
            if cursor.rowcount == 0:
                return False
            self._emit(job_id, "cancelled")
        return True

    def fail_job(self, job_id: int, error: str) -> None:
        """Terminal failure (submit-side validation, poisoned spec)."""
        now = time.time()
        with transaction(self.conn):
            cursor = self.conn.execute(
                "UPDATE jobs SET state = 'failed', error = ?, finished_at = ?"
                " WHERE id = ? AND state NOT IN ('done', 'cancelled')",
                (error, now, job_id),
            )
            if cursor.rowcount:
                self._emit(job_id, "failed", error=error.splitlines()[-1])

    # -- inspection --------------------------------------------------------

    def status(self, job_id: int) -> JobStatus:
        row = self.conn.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no job {job_id} in {self.path}")
        progress = self.conn.execute(
            "SELECT COUNT(*) FILTER (WHERE state = 'done') AS done,"
            " COUNT(*) FILTER (WHERE reused = 1) AS reused FROM points"
            " WHERE job_id = ?",
            (job_id,),
        ).fetchone()
        failed = 0
        for record in self.conn.execute(
            "SELECT result FROM points WHERE job_id = ?"
            " AND state = 'done' AND result IS NOT NULL",
            (job_id,),
        ):
            if not pickle.loads(record["result"]).ok:
                failed += 1
        shards_done = self.conn.execute(
            "SELECT COUNT(*) AS n FROM shards WHERE job_id = ?"
            " AND state = 'done'",
            (job_id,),
        ).fetchone()["n"]
        return JobStatus(
            job_id=row["id"],
            name=row["name"],
            state=row["state"],
            exec_mode=row["exec_mode"],
            n_points=row["n_points"],
            done=progress["done"],
            failed=failed,
            reused=progress["reused"],
            n_shards=row["n_shards"],
            shards_done=shards_done,
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            error=row["error"],
        )

    def list_jobs(self) -> list[JobStatus]:
        ids = [
            row["id"]
            for row in self.conn.execute("SELECT id FROM jobs ORDER BY id")
        ]
        return [self.status(job_id) for job_id in ids]

    def results(self, job_id: int) -> list[SweepResult | None]:
        """Per-point results in grid order; None for points still
        pending."""
        status = self.status(job_id)  # raises on unknown job
        out: list[SweepResult | None] = [None] * status.n_points
        for row in self.conn.execute(
            "SELECT idx, result FROM points WHERE job_id = ?"
            " AND result IS NOT NULL",
            (job_id,),
        ):
            out[row["idx"]] = pickle.loads(row["result"])
        return out

    def depth(self) -> dict[str, int]:
        """Queue-pressure gauges: claimable shards, leased shards, and
        non-terminal jobs."""
        shards = self.conn.execute(
            "SELECT COUNT(*) FILTER (WHERE s.state = 'ready') AS ready,"
            " COUNT(*) FILTER (WHERE s.state = 'leased') AS leased"
            " FROM shards s JOIN jobs j ON j.id = s.job_id"
            " WHERE j.state IN ('queued', 'running')",
        ).fetchone()
        jobs = self.conn.execute(
            "SELECT COUNT(*) AS n FROM jobs"
            " WHERE state IN ('queued', 'running')",
        ).fetchone()["n"]
        return {
            "shards_ready": shards["ready"],
            "shards_leased": shards["leased"],
            "jobs_open": jobs,
        }
