"""The persistent sweep service: submit grids, harvest results, keep
the warm cache shared.

A *service directory* holds everything durable::

    <root>/queue.sqlite    the job queue (jobs, points, shards, events)
    <root>/catalog.sqlite  the artifact catalog (compiles, results)
    <root>/cache/          the content-addressed compile cache

Clients submit through :meth:`SweepService.submit` (or
``Session.submit`` / ``repro jobs submit``) and get a
:class:`JobHandle` — ``poll()`` for status, ``result()`` to block for
the ordered :class:`~repro.sweep.spec.SweepResult` list,
``stream_events()`` to tail progress.  Work happens wherever someone
runs the worker loop: ``repro serve`` (or
:meth:`SweepService.serve_forever`) claims one shard at a time,
serves points the catalog has already measured as *reuses*, evaluates
the rest through the configured
:class:`~repro.service.worker.WorkerBackend`, and commits every point
to queue + catalog as it lands.  Kill the process at any moment:
completed points are durable, the lease expires (or the dead pid is
detected), and the next worker resumes exactly the pending points —
canonical stats stay byte-identical to an uninterrupted
``Session.sweep`` of the same grid.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from ..core.diskcache import as_compile_cache, default_cache_dir
from ..core.passes import PassManager
from ..obs import NULL_TRACER
from ..sweep.engine import EXEC_MODES
from ..sweep.spec import SweepJob, SweepResult, SweepSpec
from .catalog import Catalog, point_key
from .queue import Claim, Event, JobQueue, JobStatus, make_owner
from .worker import WorkerBackend, as_backend, shard_jobs

if TYPE_CHECKING:
    from ..obs import Metrics, Tracer

#: test-only failure injection (the crash-recovery suites and the CI
#: service gate): when set, the serving process hard-exits —
#: ``os._exit(32)``, simulating a kill -9 / OOM — after committing
#: this many points, so recovery must resume from the queue alone
KILL_AFTER_ENV = "_REPRO_SERVICE_EXIT_AFTER_POINTS"

#: exit code of an injected service death (matches the sweep pool's
#: injected worker crash convention)
KILLED_EXIT_CODE = 32


def default_service_dir() -> Path:
    """``$REPRO_SERVICE_DIR``, else ``<compile-cache root>/service``."""
    env = os.environ.get("REPRO_SERVICE_DIR")
    if env:
        return Path(env).expanduser()
    return default_cache_dir() / "service"


class JobFailed(RuntimeError):
    """``JobHandle.result()`` on a failed or cancelled job."""


@dataclass
class JobHandle:
    """A client's view of one submitted job."""

    job_id: int
    service: "SweepService"

    def poll(self) -> JobStatus:
        """The job's current state and progress counters."""
        return self.service.queue.status(self.job_id)

    def result(
        self, *, timeout: float | None = None, poll: float = 0.05
    ) -> list[SweepResult]:
        """Block until the job is terminal and return its results in
        grid order.  Raises :class:`TimeoutError` after ``timeout``
        seconds, :class:`JobFailed` on a failed or cancelled job."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            status = self.poll()
            if status.terminal:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {self.job_id} still {status.state} "
                    f"({status.done}/{status.n_points} points) after "
                    f"{timeout}s"
                )
            time.sleep(poll)
        if status.state != "done":
            raise JobFailed(
                f"job {self.job_id} {status.state}"
                + (f": {status.error}" if status.error else "")
            )
        results = self.service.queue.results(self.job_id)
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:  # pragma: no cover - done implies all points stored
            raise JobFailed(
                f"job {self.job_id} done but points {missing} have no result"
            )
        return results  # type: ignore[return-value]

    def stream_events(
        self,
        *,
        since: int = 0,
        poll: float = 0.05,
        timeout: float | None = None,
    ) -> Iterator[Event]:
        """Yield the job's events as they append, ending after the
        terminal event (done/failed/cancelled).  ``since`` resumes from
        a previously seen sequence number."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        last = since
        while True:
            events = self.service.queue.events_since(self.job_id, last)
            for event in events:
                last = event.seq
                yield event
                if event.kind in ("done", "failed", "cancelled"):
                    return
            if deadline is not None and time.monotonic() > deadline:
                return
            time.sleep(poll)

    def cancel(self) -> bool:
        """Cancel the job (idempotent; False when already terminal)."""
        return self.service.queue.cancel(self.job_id)


class SweepService:
    """Queue + catalog + backend over one service directory.  The same
    class serves both roles: clients construct it to submit/poll,
    worker processes construct it (with their backend of choice) to
    run :meth:`serve_forever`."""

    def __init__(
        self,
        root: "str | os.PathLike | None" = None,
        *,
        backend: "WorkerBackend | str | None" = None,
        lease_ttl: float = 60.0,
        cache: Any = None,
        tracer: "Tracer | None" = None,
        metrics: "Metrics | None" = None,
        owner: str | None = None,
    ):
        self.root = Path(root).expanduser() if root else default_service_dir()
        self.root.mkdir(parents=True, exist_ok=True)
        self.queue = JobQueue(self.root / "queue.sqlite", lease_ttl=lease_ttl)
        self.catalog = Catalog(self.root / "catalog.sqlite")
        self.cache = as_compile_cache(
            cache if cache is not None else self.root / "cache"
        )
        self.backend = as_backend(backend)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.manager = PassManager(tracer=tracer)
        self.owner = owner or make_owner()
        self._committed_points = 0

    def close(self) -> None:
        self.queue.close()
        self.catalog.close()

    # -- metrics helpers ---------------------------------------------------

    def _inc(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def _update_depth_gauges(self) -> None:
        if self.metrics is None:
            return
        for name, value in self.queue.depth().items():
            self.metrics.gauge(f"service.queue.{name}", value)

    # -- client side -------------------------------------------------------

    def submit(
        self,
        spec: "SweepSpec | Iterable[SweepJob]",
        *,
        name: str = "",
        exec_mode: str = "auto",
        shards: int | None = None,
    ) -> JobHandle:
        """Persist a grid as a durable job; returns immediately with a
        :class:`JobHandle`.  ``exec_mode`` is how each shard will run
        (``auto``/``pool``/``batched``); ``shards`` partitions the
        grid (default: one shard per fusion group)."""
        if exec_mode not in EXEC_MODES:
            raise ValueError(
                f"exec_mode must be one of {EXEC_MODES}, got {exec_mode!r}"
            )
        jobs = list(spec.jobs() if isinstance(spec, SweepSpec) else spec)
        if not jobs:
            raise ValueError("cannot submit an empty grid")
        keys = [point_key(job) for job in jobs]
        assignment = shard_jobs(jobs, shards)
        job_id = self.queue.submit(
            jobs, keys, assignment, name=name, exec_mode=exec_mode
        )
        self._inc("service.jobs_submitted")
        self._inc("service.points_submitted", len(jobs))
        self._update_depth_gauges()
        self.tracer.instant(
            "service.submit",
            cat="service",
            job_id=job_id,
            points=len(jobs),
            shards=len(assignment),
        )
        return JobHandle(job_id=job_id, service=self)

    def handle(self, job_id: int) -> JobHandle:
        """Re-attach to an existing job (any process, any time)."""
        self.queue.status(job_id)  # raises KeyError on unknown id
        return JobHandle(job_id=job_id, service=self)

    # -- worker side -------------------------------------------------------

    def run_next(self) -> bool:
        """Claim and fully process one shard; False when the queue has
        nothing claimable."""
        claim = self.queue.claim(self.owner)
        if claim is None:
            self._update_depth_gauges()
            return False
        self._inc("service.shards_claimed")
        self._execute_claim(claim)
        self._update_depth_gauges()
        return True

    def _execute_claim(self, claim: Claim) -> None:
        with self.tracer.span(
            "service.shard",
            cat="service",
            job_id=claim.job_id,
            shard=claim.shard,
            backend=self.backend.name,
            pending=len(claim.points),
        ):
            fresh: list[tuple[int, SweepJob]] = []
            for idx, job in claim.points:
                cached = self.catalog.lookup(job)
                if cached is not None:
                    self._commit(claim, idx, job, cached, reused=True)
                else:
                    fresh.append((idx, job))
            if fresh:
                self._evaluate(claim, fresh)
        if not self.queue.heartbeat(claim.job_id, claim.shard, self.owner):
            # cancelled mid-shard, or the lease was reclaimed: committed
            # points are durable either way; just walk away
            self.queue.release_shard(
                claim.job_id, claim.shard, self.owner, "lease lost"
            )
            return
        self.queue.finish_shard(claim.job_id, claim.shard, self.owner)

    def _evaluate(
        self, claim: Claim, fresh: list[tuple[int, SweepJob]]
    ) -> None:
        """Run the shard's never-measured points through the backend,
        committing each result as it streams out.  Results map back to
        grid indices by label (unique within a grid up to identical
        point identities, which interchange freely)."""
        index_of: dict[str, deque[int]] = {}
        job_of = dict(fresh)
        for idx, job in fresh:
            index_of.setdefault(job.label, deque()).append(idx)

        def commit(result: SweepResult) -> None:
            lane = index_of.get(result.label)
            if not lane:  # pragma: no cover - engine emits one per job
                return
            idx = lane.popleft()
            self._commit(claim, idx, job_of[idx], result, reused=False)
            self.queue.heartbeat(claim.job_id, claim.shard, self.owner)

        self.backend.run(
            [job for _, job in fresh],
            exec_mode=claim.exec_mode,
            cache=self.cache,
            manager=self.manager,
            tracer=self.tracer,
            metrics=self.metrics,
            on_result=commit,
        )

    def _commit(
        self,
        claim: Claim,
        idx: int,
        job: SweepJob,
        result: SweepResult,
        *,
        reused: bool,
    ) -> None:
        if not reused:
            self.catalog.record_result(job, result, job_id=claim.job_id)
            self.catalog.record_compile(
                job, self.cache, self.manager.pipeline
            )
        self.queue.complete_point(claim.job_id, idx, result, reused=reused)
        self._inc("service.points_reused" if reused else "service.points_done")
        self.tracer.instant(
            "service.point",
            cat="service",
            job_id=claim.job_id,
            label=result.label,
            ok=result.ok,
            reused=reused,
        )
        self._committed_points += 1
        kill_after = int(os.environ.get(KILL_AFTER_ENV, "0") or "0")
        if kill_after and self._committed_points >= kill_after:
            os._exit(KILLED_EXIT_CODE)

    def serve_forever(
        self,
        *,
        poll: float = 0.2,
        once: bool = False,
        max_shards: int | None = None,
        idle_timeout: float | None = None,
    ) -> int:
        """The worker loop: claim-and-process shards until stopped.
        ``once`` drains the queue and returns when nothing is
        claimable; ``idle_timeout`` returns after that many idle
        seconds; ``max_shards`` bounds the shards processed.  Returns
        the number of shards this call processed."""
        processed = 0
        idle_since: float | None = None
        while True:
            if max_shards is not None and processed >= max_shards:
                return processed
            if self.run_next():
                processed += 1
                idle_since = None
                continue
            if once:
                return processed
            now = time.monotonic()
            idle_since = idle_since if idle_since is not None else now
            if idle_timeout is not None and now - idle_since >= idle_timeout:
                return processed
            time.sleep(poll)
