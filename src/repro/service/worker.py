"""Worker backends and fusion-preserving shard planning.

A :class:`WorkerBackend` is how a claimed shard's pending points get
evaluated.  Two ship with the package:

* ``"inline"`` — in-process through :func:`repro.sweep.run_sweep`
  with ``workers=0``: the shard shares the serving process's pass
  manager, and batched/procs-lane fusion applies to the whole shard;
* ``"pool"`` (``"pool:N"`` sizes it) — the supervised process pool:
  batchable groups still evaluate fused in-process, non-batchable
  points fan out over N pool workers with the engine's
  crash/timeout/retry ladder.

Horizontal scale-out does not come from one backend spanning hosts —
it comes from *sharding*: :func:`shard_jobs` partitions a submitted
grid into shards along the batched evaluator's fusion groups (points
that would share one vectorized evaluation stay together), so several
``repro serve`` processes can each lease a shard and the per-shard
evaluation is byte-identical to the direct sweep.  Remote/actor-style
backends implement the same two-method protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

from ..sweep.batched import plan_batches
from ..sweep.engine import run_sweep
from ..sweep.spec import SweepJob, SweepResult

if TYPE_CHECKING:
    from ..core.diskcache import CompileCache
    from ..core.passes import PassManager
    from ..obs import Metrics, Tracer


@runtime_checkable
class WorkerBackend(Protocol):
    """The pluggable evaluation strategy of a sweep service worker."""

    #: short tag recorded in spans/events
    name: str

    def run(
        self,
        jobs: Sequence[SweepJob],
        *,
        exec_mode: str = "auto",
        cache: "CompileCache | None" = None,
        manager: "PassManager | None" = None,
        tracer: "Tracer | None" = None,
        metrics: "Metrics | None" = None,
        on_result: Callable[[SweepResult], None] | None = None,
    ) -> list[SweepResult]:
        """Evaluate ``jobs`` in order, streaming each finished point
        through ``on_result`` (the service commits durability there).
        Must never lose a point: failures come back ``ok=False``."""
        ...


@dataclass
class InlineBackend:
    """Serial in-process evaluation on the serving process itself —
    the zero-infrastructure backend (and the most cache-friendly one:
    every shard shares one pass manager and one compile memo)."""

    name: str = "inline"

    def run(self, jobs, *, exec_mode="auto", cache=None, manager=None,
            tracer=None, metrics=None, on_result=None):
        return run_sweep(
            jobs,
            workers=0,
            mode=exec_mode,
            cache=cache,
            manager=manager,
            tracer=tracer,
            metrics=metrics,
            on_result=on_result,
        )


@dataclass
class PoolBackend:
    """The supervised process pool from :mod:`repro.sweep.engine`:
    non-batchable points fan out across ``workers`` child processes
    (timeout kill + respawn, retry with backoff, serial fallback),
    batchable groups evaluate fused in-process as always."""

    workers: int = 2
    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.1
    name: str = field(default="pool", init=False)

    def run(self, jobs, *, exec_mode="auto", cache=None, manager=None,
            tracer=None, metrics=None, on_result=None):
        return run_sweep(
            jobs,
            workers=self.workers,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            mode=exec_mode,
            cache=cache,
            manager=manager,
            tracer=tracer,
            metrics=metrics,
            on_result=on_result,
        )


#: registry of named backends (``repro serve --backend``)
BACKENDS = ("inline", "pool")


def as_backend(backend: "WorkerBackend | str | None") -> WorkerBackend:
    """Normalize the convenience forms: None/``"inline"`` → inline,
    ``"pool"``/``"pool:N"`` → a pool of default/N workers, an object
    implementing the protocol → itself."""
    if backend is None:
        return InlineBackend()
    if isinstance(backend, str):
        name, _, arg = backend.partition(":")
        if name == "inline":
            return InlineBackend()
        if name == "pool":
            return PoolBackend(workers=int(arg)) if arg else PoolBackend()
        raise ValueError(
            f"unknown worker backend {backend!r}; built in: {BACKENDS} "
            f"(or pass a WorkerBackend instance)"
        )
    if isinstance(backend, WorkerBackend):
        return backend
    raise TypeError(f"not a worker backend: {backend!r}")


def shard_jobs(
    jobs: Sequence[SweepJob], shards: int | None = None
) -> list[list[int]]:
    """Partition grid-point indices into shards without breaking
    fusion groups.

    The units are the batched evaluator's own groups
    (:func:`~repro.sweep.batched.plan_batches`): points that would
    share one lane-vectorized evaluation stay in one shard, so
    within-shard execution fuses exactly like a direct sweep.
    ``shards=None`` keeps one shard per group — maximal lease
    granularity at no fusion cost.  An explicit ``shards=N`` bin-packs
    the groups into N shards (largest group to least-loaded shard);
    when there are fewer groups than shards, the largest groups split
    — each half still fuses internally, only cross-half fusion is
    traded for parallelism."""
    if not jobs:
        return []
    batches, leftover = plan_batches(list(jobs))
    units: list[list[int]] = [list(b.indices) for b in batches]
    units += [[index] for index in leftover]
    units.sort(key=lambda unit: (-len(unit), unit[0]))
    if shards is not None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        target = min(shards, len(jobs))
        while len(units) < target:
            units.sort(key=lambda unit: (-len(unit), unit[0]))
            largest = units.pop(0)
            half = len(largest) // 2
            units += [largest[:half], largest[half:]]
        bins: list[list[int]] = [[] for _ in range(target)]
        for unit in sorted(units, key=lambda u: (-len(u), u[0])):
            smallest = min(bins, key=len)
            smallest.extend(unit)
        units = [sorted(b) for b in bins if b]
    else:
        units = [sorted(unit) for unit in units]
    units.sort(key=lambda unit: unit[0])
    return units
