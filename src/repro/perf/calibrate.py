"""Calibrate the tier-choice cost constants on the current host.

:meth:`PerfEstimator.nest_cost` decides tier 2 vs tier 3 per nest from
four host-side constants (``C_T2_STMT``, ``C_PREP``, ``C_VEC``,
``C_ELEM``) whose shipped defaults were measured on one reference
interpreter.  This module re-fits them from micro-benchmarks run *here*:
it generates a family of synthetic single-nest programs (one processor,
no communication, ``stmts`` self-contained statements inside an
``entries × n`` loop pair), times each under the forced tier-2 lowered
interpreter and the forced tier-3 slab engine, and solves the same two
linear forms the estimator prices with:

* ``tier2 = b + C_T2_STMT · instances``
* ``tier3 = b + C_PREP · entries + C_VEC · stmts · entries
  + C_ELEM · instances``

by least squares (the intercept ``b`` absorbs per-run simulator setup,
which ``nest_cost`` does not model).  Only the *ratios* of the
constants steer tier selection, so modest timing noise is tolerable;
the min over ``repeats`` runs is kept per configuration.

Apply a fit programmatically with
``PerfEstimator(compiled, nest_cost_constants=result.constants)``, or
print the suggestion with ``repro calibrate``.  ``repro calibrate
--save`` persists the fit under the cache root
(:func:`save_calibration`); from then on :class:`repro.api.Session`
(and hence the CLI and ``tierplan``) applies it by default —
``use_calibration=False`` / ``--no-calibration`` opts out, and an
explicit ``nest_cost_constants`` in the options always wins.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

#: saved-fit schema version (bumped on layout changes; a reader seeing
#: an unknown version treats the file as absent, never as an error)
CALIBRATION_SCHEMA = 1

#: file name of the persisted fit under the cache root
CALIBRATION_FILENAME = "calibration.json"

#: (stmts, entries, n) per synthetic nest — chosen so the design matrix
#: separates the per-entry, per-statement-per-entry, and per-element
#: columns while the slowest tier-2 run stays under ~0.5 s
DEFAULT_CONFIGS: tuple[tuple[int, int, int], ...] = (
    (1, 100, 64),
    (1, 400, 64),
    (4, 100, 64),
    (4, 300, 64),
    (2, 200, 128),
    (1, 60, 1024),
    (6, 80, 96),
)

#: fitted constants are clamped here: a noisy fit must not suggest a
#: zero/negative cost (which would make one tier free)
MIN_CONSTANT = 1e-12


def nest_source(stmts: int, entries: int, n: int) -> str:
    """A mini-HPF program holding exactly one takeover-candidate nest:
    ``stmts`` independent elementwise self-updates over ``n`` lanes,
    entered ``entries`` times, on a single processor (so no charge ever
    leaves the host — the wall clock is pure interpreter/slab work)."""
    arrays = ", ".join(f"A{k}(n)" for k in range(stmts))
    align = ""
    if stmts > 1:
        others = ", ".join(f"A{k}" for k in range(1, stmts))
        align = f"\n!HPF$ ALIGN (i) WITH A0(i) :: {others}"
    body = "\n".join(
        f"      A{k}(i) = A{k}(i) * 0.5 + 0.25" for k in range(stmts)
    )
    return f"""
PROGRAM CALIB
  PARAMETER (n = {n}, m = {entries})
  REAL {arrays}
  INTEGER t, i
!HPF$ PROCESSORS PROCS(1){align}
!HPF$ DISTRIBUTE (BLOCK) :: A0
  DO t = 1, m
    DO i = 1, n
{body}
    END DO
  END DO
END PROGRAM
"""


@dataclass
class CalibrationResult:
    """A fitted set of nest-cost constants plus fit diagnostics."""

    #: fitted values, keyed like the :class:`PerfEstimator` attributes
    constants: dict[str, float]
    #: the shipped class defaults, for comparison
    defaults: dict[str, float]
    #: coefficient of determination per fitted form
    r2: dict[str, float]
    repeats: int
    #: one record per synthetic configuration (sizes + both timings)
    samples: list[dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "constants": dict(self.constants),
            "defaults": dict(self.defaults),
            "r2": dict(self.r2),
            "repeats": self.repeats,
            "samples": [dict(s) for s in self.samples],
        }

    def render(self) -> str:
        lines = [
            f"nest-cost calibration: {len(self.samples)} synthetic "
            f"nests, min of {self.repeats} repeats",
            "",
            f"{'constant':<12} {'default':>12} {'fitted':>12} {'ratio':>8}",
        ]
        for name in ("C_T2_STMT", "C_PREP", "C_VEC", "C_ELEM"):
            default = self.defaults[name]
            fitted = self.constants[name]
            lines.append(
                f"{name:<12} {default:>12.3e} {fitted:>12.3e} "
                f"{fitted / default:>8.2f}"
            )
        lines.append(
            "fit quality: tier2 R²={tier2:.4f}, tier3 R²={tier3:.4f}"
            .format(**self.r2)
        )
        overrides = ", ".join(
            f'"{name}": {value:.3e}'
            for name, value in self.constants.items()
        )
        lines.append("")
        lines.append("suggested override:")
        lines.append(
            f"  PerfEstimator(compiled, nest_cost_constants="
            f"{{{overrides}}})"
        )
        return "\n".join(lines)


def calibration_path(root: "str | os.PathLike | None" = None) -> Path:
    """Where a saved fit lives: ``<cache root>/calibration.json``
    (the same root resolution as the persistent compile cache —
    ``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``)."""
    from ..core.diskcache import default_cache_dir

    base = Path(root).expanduser() if root else default_cache_dir()
    return base / CALIBRATION_FILENAME


def save_calibration(
    result: CalibrationResult, root: "str | os.PathLike | None" = None
) -> Path:
    """Persist ``result`` under the cache root; returns the path.  The
    write is atomic (tmp + rename) like the compile-cache stores, so a
    concurrent reader never sees a torn file."""
    path = calibration_path(root)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": CALIBRATION_SCHEMA,
        "saved_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        **result.as_dict(),
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_calibration(
    root: "str | os.PathLike | None" = None,
) -> "dict[str, float] | None":
    """The saved nest-cost constants, or None when no (readable,
    current-schema, positive-valued) fit has been saved.  Never raises:
    an unusable file behaves exactly like an absent one, so auto-apply
    can run unconditionally."""
    path = calibration_path(root)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("schema") != CALIBRATION_SCHEMA:
            return None
        constants = {
            str(name): float(value)
            for name, value in payload["constants"].items()
        }
    except Exception:
        return None
    valid = {"C_T2_STMT", "C_PREP", "C_VEC", "C_ELEM"}
    if set(constants) != valid:
        return None
    if any(value <= 0 for value in constants.values()):
        return None
    return constants


def _r2(observed, predicted) -> float:
    import numpy as np

    observed = np.asarray(observed)
    residual = float(np.sum((observed - predicted) ** 2))
    spread = float(np.sum((observed - observed.mean()) ** 2))
    return 1.0 - residual / spread if spread > 0 else 1.0


def calibrate(
    repeats: int = 3,
    verbose: bool = False,
    configs: Sequence[tuple[int, int, int]] | None = None,
) -> CalibrationResult:
    """Fit the four nest-cost constants on this host (takes a few
    seconds).  ``configs`` overrides the synthetic nest sizes — each is
    ``(stmts, entries, n)``."""
    import numpy as np

    from ..core.driver import CompilerOptions, compile_source
    from ..machine.simulator import simulate
    from .estimator import PerfEstimator

    configs = tuple(configs if configs is not None else DEFAULT_CONFIGS)
    if not configs:
        raise ValueError("calibrate needs at least one configuration")
    repeats = max(1, int(repeats))

    samples: list[dict[str, Any]] = []
    for stmts, entries, n in configs:
        source = nest_source(stmts, entries, n)
        compiled = compile_source(source, CompilerOptions(num_procs=1))
        rng = np.random.default_rng(0)
        inputs = {
            symbol.name: rng.uniform(
                0.5, 1.5, tuple(symbol.extent(d) for d in range(symbol.rank))
            )
            for symbol in compiled.proc.symbols.arrays()
        }
        timings = {}
        for tier in ("lowered", "slab"):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                simulate(compiled, inputs, tier=tier)
                best = min(best, time.perf_counter() - start)
            timings[tier] = best
        sample = {
            "stmts": stmts,
            "entries": entries,
            "n": n,
            "instances": stmts * entries * n,
            "tier2_s": timings["lowered"],
            "tier3_s": timings["slab"],
        }
        samples.append(sample)
        if verbose:
            print(
                f"  stmts={stmts} entries={entries} n={n}: "
                f"tier2 {timings['lowered'] * 1e3:.1f}ms, "
                f"tier3 {timings['slab'] * 1e3:.1f}ms"
            )

    instances = np.array([s["instances"] for s in samples], dtype=float)
    entries = np.array([s["entries"] for s in samples], dtype=float)
    stmt_entries = np.array(
        [s["stmts"] * s["entries"] for s in samples], dtype=float
    )
    t2 = np.array([s["tier2_s"] for s in samples])
    t3 = np.array([s["tier3_s"] for s in samples])
    ones = np.ones_like(instances)

    design2 = np.stack([ones, instances], axis=1)
    coef2, *_ = np.linalg.lstsq(design2, t2, rcond=None)
    design3 = np.stack([ones, entries, stmt_entries, instances], axis=1)
    coef3, *_ = np.linalg.lstsq(design3, t3, rcond=None)

    constants = {
        "C_T2_STMT": max(float(coef2[1]), MIN_CONSTANT),
        "C_PREP": max(float(coef3[1]), MIN_CONSTANT),
        "C_VEC": max(float(coef3[2]), MIN_CONSTANT),
        "C_ELEM": max(float(coef3[3]), MIN_CONSTANT),
    }
    defaults = {
        name: float(getattr(PerfEstimator, name)) for name in constants
    }
    r2 = {
        "tier2": _r2(t2, design2 @ coef2),
        "tier3": _r2(t3, design3 @ coef3),
    }
    return CalibrationResult(
        constants=constants,
        defaults=defaults,
        r2=r2,
        repeats=repeats,
        samples=samples,
    )
