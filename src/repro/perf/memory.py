"""Per-processor memory accounting.

Privatization's classical rival — scalar/array *expansion* (the paper's
references [16] and [7]) — buys the same storage-dependence removal by
materializing one copy per iteration, at a memory cost. This module
quantifies the comparison: the per-processor bytes implied by a
compiled program's effective mappings,

* a distributed dimension stores ``max_local_count`` elements,
* replicated and privatized dimensions store the full extent (the
  privatized copy is reused across iterations — that is privatization's
  memory advantage over expansion),
* scalars cost one element each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.driver import CompiledProgram


@dataclass
class MemoryReport:
    """Bytes per processor, by variable."""

    element_bytes: int
    arrays: dict[str, int] = field(default_factory=dict)
    scalars: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(self.arrays.values()) + self.scalars

    def summary(self) -> str:
        lines = [f"per-processor memory: {self.total_bytes / 1024:.1f} KiB"]
        for name in sorted(self.arrays, key=lambda n: -self.arrays[n]):
            lines.append(f"  {name:10s} {self.arrays[name] / 1024:10.1f} KiB")
        lines.append(f"  {'<scalars>':10s} {self.scalars / 1024:10.1f} KiB")
        return "\n".join(lines)


def memory_report(compiled: CompiledProgram) -> MemoryReport:
    """Per-processor memory footprint of the compiled program."""
    element_bytes = compiled.options.machine.element_bytes
    report = MemoryReport(element_bytes=element_bytes)
    for name, mapping in compiled.mappings.items():
        elements = 1
        for extent in mapping.local_shape():
            elements *= extent
        report.arrays[name] = elements * element_bytes
    report.scalars = element_bytes * len(list(compiled.proc.symbols.scalars()))
    return report
