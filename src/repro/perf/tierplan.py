"""Cost-driven tier selection: which engine runs each loop nest.

The simulator has three execution tiers — the tree-walking interpreter
(tier 1), the lowered closures (tier 2), and the vectorized slab engine
(tier 3).  Tier 3 used to take over every nest it *could*; on nests
with tiny per-entry lane counts the prepare/commit overhead loses to
plain tier-2 dispatch (the DGEFA regression).  In the paper's spirit —
mapping decisions driven by a cost model, not fixed heuristics — the
``tierplan`` pass combines the slab classifier's eligibility report
with :meth:`repro.perf.PerfEstimator.nest_cost` and records, per
eligible nest, whether the slab engine is *predicted* to win.

The product is a :class:`TierPlan`: plain ints/floats/strings only, so
it pickles with the :class:`~repro.core.driver.CompiledProgram` (disk
compile cache) and is consulted by the runtime when running with
``tier="auto"``.  A decision never regresses below tier 2: "lowered"
just means the slab engine leaves the nest to the closures, and any
slab bail already falls back to tier 2 statement-by-statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NestDecision:
    """One nest's verdict: the predicted times under each tier and the
    chosen engine."""

    loop_id: int
    #: "slab" or "lowered"
    choice: str
    #: "predicted-win" | "predicted-loss" | estimator failure reason
    reason: str
    tier2_time: float = 0.0
    tier3_time: float = 0.0

    def as_dict(self) -> dict:
        return {
            "loop_id": self.loop_id,
            "choice": self.choice,
            "reason": self.reason,
            "tier2_time": self.tier2_time,
            "tier3_time": self.tier3_time,
        }


@dataclass
class TierPlan:
    """Pass product: per-eligible-nest tier decisions, keyed on the
    loop's statement id at ``ir_epoch`` (stale plans are ignored by the
    runtime, like a stale lowering)."""

    ir_epoch: int
    decisions: dict[int, NestDecision] = field(default_factory=dict)

    def choice(self, loop_id: int) -> str | None:
        """The decision for one nest, or None if the nest was never
        eligible (the runtime then has nothing to consult)."""
        d = self.decisions.get(loop_id)
        return d.choice if d is not None else None

    def slab_loops(self) -> set[int]:
        return {
            sid
            for sid, d in self.decisions.items()
            if d.choice == "slab"
        }

    def summary(self) -> dict[str, int]:
        slab = sum(1 for d in self.decisions.values() if d.choice == "slab")
        return {
            "eligible": len(self.decisions),
            "slab": slab,
            "lowered": len(self.decisions) - slab,
        }

    def as_dict(self) -> dict:
        return {
            "ir_epoch": self.ir_epoch,
            "decisions": [
                d.as_dict()
                for _, d in sorted(self.decisions.items())
            ],
        }


def build_tierplan(proc, slabs, estimator) -> TierPlan:
    """Decide each slab-eligible nest with the per-nest cost inequality
    (see docs/COSTMODEL.md).  ``slabs`` is the slabexec pass's
    :class:`~repro.machine.slabexec.SlabReport`; ``estimator`` any
    object with a ``nest_cost(loop)`` method (normally a
    :class:`~repro.perf.PerfEstimator`)."""
    plan = TierPlan(ir_epoch=proc.ir_epoch)
    eligible = slabs.eligible_loops()
    if not eligible:
        return plan
    for loop in proc.all_stmts():
        sid = loop.stmt_id
        if sid not in eligible:
            continue
        try:
            cost = estimator.nest_cost(loop)
        except Exception as exc:  # never fail the compile over a prediction
            plan.decisions[sid] = NestDecision(
                loop_id=sid,
                choice="slab",  # eligible and unpriceable: keep legacy
                reason=f"estimate failed: {exc}",
            )
            continue
        win = cost.slab_wins
        plan.decisions[sid] = NestDecision(
            loop_id=sid,
            choice="slab" if win else "lowered",
            reason="predicted-win" if win else "predicted-loss",
            tier2_time=cost.tier2_time,
            tier3_time=cost.tier3_time,
        )
    return plan
