"""Analytic performance estimator.

Walks the compiled program's loop nest and prices, per processor:

* **computation** — statement instances × flops ÷ the statement's
  parallel factor (1 for replicated execution: everybody does all the
  work, which is the paper's "loss of parallelism");
* **communication** — each :class:`~repro.comm.events.CommEvent` costs
  its per-instance transfer time × the number of instances at its
  placement level. Message vectorization shows up as fewer, larger
  messages (placement hoisted outward); inner-loop communication as
  many small ones — the paper's two-orders-of-magnitude TOMCATV gap.

Triangular loops (DGEFA) are handled by evaluating affine bounds at the
midpoint of the enclosing ranges, i.e. average trip counts.

This estimator prices full problem sizes (n = 513 / 1000 / 64³)
instantly; bit-exact semantics are validated separately by the SPMD
simulator at small sizes (see ``repro.machine`` / ``repro.codegen``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..comm.costmodel import MachineModel, flops_of_expr
from ..comm.events import CommEvent, ReduceEvent
from ..core.driver import CompiledProgram
from ..core.locality import Position
from ..errors import AnalysisError
from ..ir.expr import ArrayElemRef, Const, Expr, ScalarRef, affine_form
from ..ir.stmt import AssignStmt, IfStmt, LoopStmt, Stmt


def _power_sum(p: int, m: int) -> int:
    """Faulhaber: Σ_{t=1}^{m} t^p for p ≤ 4."""
    if m <= 0:
        return 0
    if p == 0:
        return m
    if p == 1:
        return m * (m + 1) // 2
    if p == 2:
        return m * (m + 1) * (2 * m + 1) // 6
    if p == 3:
        return (m * (m + 1) // 2) ** 2
    if p == 4:
        return m * (m + 1) * (2 * m + 1) * (3 * m * m + 3 * m - 1) // 30
    raise ValueError(f"no power-sum formula for p={p}")


def _clamped_poly_sum(
    factors: list[tuple[int, int]], n: int
) -> int | None:
    """Σ_{t=0}^{n-1} Π_i max(0, m0_i + q_i·t), exactly.

    Each factor is a trip count clamped at zero; a factor's zero range
    zeroes the whole product (no iterations → no inner instances), so
    the sum runs over the intersection of the positive ranges, where
    the product is a plain polynomial summed by Faulhaber's formulas.
    ``None`` when the degree exceeds the table (≥ 5 correlated loops).
    """
    tlo, thi = 0, n - 1
    coeffs = [1]  # polynomial in t, ascending powers
    for m0, q in factors:
        if q == 0:
            if m0 <= 0:
                return 0
            coeffs = [c * m0 for c in coeffs]
            continue
        if len(coeffs) > 4:
            return None
        if q > 0:
            tlo = max(tlo, -((m0 - 1) // q))  # ceil((1 - m0) / q)
        else:
            thi = min(thi, (1 - m0) // q)
        prod = [0] * (len(coeffs) + 1)
        for p, c in enumerate(coeffs):
            prod[p] += c * m0
            prod[p + 1] += c * q
        coeffs = prod
    if tlo > thi:
        return 0
    total = coeffs[0] * (thi - tlo + 1)
    for p in range(1, len(coeffs)):
        if coeffs[p]:
            total += coeffs[p] * (_power_sum(p, thi) - _power_sum(p, tlo - 1))
    return total


@dataclass
class StmtCost:
    stmt: Stmt
    instances: float
    flops: int
    parallel_factor: float
    time: float


@dataclass
class EventCost:
    event: CommEvent | ReduceEvent
    instances: float
    elements: float
    time_per_instance: float
    time: float


@dataclass
class NestCost:
    """Predicted host-side execution time of one loop nest under the
    tier-2 lowered interpreter vs the tier-3 slab engine (see
    docs/COSTMODEL.md: the per-nest inequality the tierplan pass
    decides with)."""

    loop_id: int
    #: dynamic statement instances inside the nest, whole program run
    instances: float
    #: times the nest's header is entered (prepare attempts)
    entries: float
    #: assignment statements in the nest body
    stmts: int
    tier2_time: float
    tier3_time: float

    @property
    def slab_wins(self) -> bool:
        return self.tier3_time < self.tier2_time


@dataclass
class PerfEstimate:
    compute_time: float
    comm_time: float
    stmt_costs: list[StmtCost] = field(default_factory=list)
    event_costs: list[EventCost] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return self.compute_time + self.comm_time

    def speedup(self, serial_time: float) -> float:
        """Speedup over a serial execution time (see
        :meth:`PerfEstimator.estimate_serial`)."""
        if self.total_time <= 0:
            return float("inf")
        return serial_time / self.total_time

    def summary(self) -> str:
        return (
            f"total {self.total_time:.4f}s = compute {self.compute_time:.4f}s "
            f"+ comm {self.comm_time:.4f}s"
        )


class PerfEstimator:
    def __init__(
        self,
        compiled: CompiledProgram,
        machine: MachineModel | None = None,
        pipelined_shifts: bool = False,
        nest_cost_constants: "dict[str, float] | None" = None,
    ):
        self.compiled = compiled
        self.machine = machine or compiled.options.machine
        if nest_cost_constants:
            valid = {"C_T2_STMT", "C_PREP", "C_VEC", "C_ELEM"}
            unknown = sorted(set(nest_cost_constants) - valid)
            if unknown:
                raise ValueError(
                    f"unknown nest-cost constant(s) {unknown}; "
                    f"valid: {sorted(valid)}"
                )
            # Instance attributes shadow the class defaults, so a
            # calibrated set (``repro calibrate``) steers this
            # estimator's tier comparisons only.
            for name, value in nest_cost_constants.items():
                setattr(self, name, float(value))
        self.ctx = compiled.ctx
        self.grid = compiled.grid
        #: procs-lane mode: a machine that carries per-lane grid shapes
        #: (:class:`~repro.machine.batchexec.ProcsVectorMachine`) makes
        #: every grid-dependent quantity a ``(lanes,)`` vector, so one
        #: ``estimate()`` call prices a whole procs vector — each lane
        #: bitwise what a dedicated scalar estimate on that lane's
        #: machine + grid would produce (elementwise numpy ops replace
        #: the scalar ``min``/``max`` in identical order)
        shapes = getattr(self.machine, "grid_shapes", None)
        self._lane_shapes = None
        if shapes is not None:
            if any(len(s) != self.grid.rank for s in shapes):
                raise ValueError(
                    f"per-lane grid shapes must match the compiled grid "
                    f"rank {self.grid.rank}: got {shapes}"
                )
            self._lane_shapes = tuple(tuple(s) for s in shapes)
            self._shape_vectors = tuple(
                np.asarray([s[g] for s in self._lane_shapes], dtype=np.int64)
                for g in range(self.grid.rank)
            )
        #: pricing semantics for inner-loop shifts: False (default)
        #: charges a collective per iteration instance — the 1997
        #: compiled-code behaviour behind the paper's catastrophic
        #: inner-loop-communication columns; True charges only the
        #: block-boundary iterations (lazy point-to-point, matching the
        #: executing simulator). See docs/COSTMODEL.md.
        self.pipelined_shifts = pipelined_shifts
        self._trip_cache: dict[int, float] = {}
        self._midpoint_cache: dict[str, float] = {}
        #: var name -> (first value, step, trip count) of its loop —
        #: the arithmetic progression a triangular bound sums over
        self._range_cache: dict[str, tuple[float, float, float]] = {}
        #: loop id -> (driving var, m0, q): the loop's per-iteration
        #: trips are max(0, m0 + q·t) over the driver's t-th iteration
        self._tri_cache: dict[int, tuple[str, int, int]] = {}

    # ==================================================================
    # Trip counts
    # ==================================================================

    def _eval_bound(self, expr: Expr) -> float:
        """Evaluate a loop bound, substituting midpoints for enclosing
        loop indices (average-trip model for triangular nests)."""
        value = self.ctx.const.eval_expr(expr)
        if isinstance(value, (int, float)):
            return float(value)
        form = affine_form(expr)
        if form is None:
            raise AnalysisError(f"cannot estimate non-affine loop bound {expr}")
        total = float(form.const)
        for symbol, coeff in form.coeffs:
            mid = self._midpoint_cache.get(symbol.name)
            if mid is None:
                raise AnalysisError(
                    f"loop bound depends on {symbol.name} with unknown range"
                )
            total += coeff * mid
        return total

    def trip_count(self, loop: LoopStmt) -> float:
        cached = self._trip_cache.get(loop.stmt_id)
        if cached is not None:
            return cached
        # Ensure enclosing loops' midpoints exist (triangular bounds).
        for outer in loop.loops_enclosing():
            if outer.var.name not in self._midpoint_cache:
                self.trip_count(outer)
        low = self._eval_bound(loop.low)
        high = self._eval_bound(loop.high)
        step = 1.0
        if loop.step is not None:
            step = self._eval_bound(loop.step)
            if step == 0:
                raise AnalysisError("loop step of zero")
        trip = max(0.0, math.floor((high - low + step) / step))
        tri = self._triangular_terms(loop, step)
        if tri is not None:
            vname, m0, q, mean = tri
            trip = mean
            self._tri_cache[loop.stmt_id] = (vname, m0, q)
        self._trip_cache[loop.stmt_id] = trip
        self._midpoint_cache[loop.var.name] = (low + high) / 2.0
        self._range_cache[loop.var.name] = (low, step, trip)
        return trip

    def _triangular_terms(self, loop: LoopStmt, step: float):
        """Exact trips when the bounds are affine in exactly one
        enclosing loop variable (DGEFA's ``DO i = k+1, n``): the
        per-iteration trips form a clamped arithmetic progression
        max(0, m0 + q·t) over the driver's t-th iteration, so the
        n(n±1)/2 closed form replaces the midpoint approximation —
        which floors the *average* bound and so drifts by up to half an
        iteration per level.  Returns ``(driver, m0, q, mean)``, or
        ``None`` when the shape (or non-integral bounds) demands the
        midpoint fallback."""
        low_form = affine_form(loop.low)
        high_form = affine_form(loop.high)
        if low_form is None or high_form is None:
            return None
        # high - low + step, split into a·v + b over the one unresolved
        # variable v
        coeffs: dict[str, float] = {}
        b = step
        for form, sign in ((high_form, 1.0), (low_form, -1.0)):
            b += sign * form.const
            for sym, coeff in form.coeffs:
                if sym.value is not None:
                    b += sign * coeff * sym.value
                else:
                    coeffs[sym.name] = coeffs.get(sym.name, 0.0) + sign * coeff
        coeffs = {k: v for k, v in coeffs.items() if v != 0}
        if len(coeffs) != 1:
            return None  # rectangular (exact already) or too entangled
        ((vname, a),) = coeffs.items()
        if vname not in (o.var.name for o in loop.loops_enclosing()):
            # the variable is some finished loop's leftover value, not a
            # range this loop sweeps over — midpoint is all we have
            return None
        rng = self._range_cache.get(vname)
        if rng is None:
            return None
        vlow, vstep, vtrip = rng
        values = (a, b, vlow, vstep, vtrip, step)
        if any(x != int(x) for x in values) or vtrip <= 0:
            return None
        a, b, vlow, vstep, vtrip, step = (int(x) for x in values)
        # trips(t) = max(0, (a·(vlow + vstep·t) + b) // step) for
        # t = 0..vtrip-1 — arithmetic in t only if step divides a·vstep
        if (a * vstep) % step != 0:
            return None
        q = (a * vstep) // step
        m0 = (a * vlow + b) // step
        total = _clamped_poly_sum([(m0, q)], vtrip)
        if total is None:
            return None
        return vname, m0, q, total / vtrip

    # ==================================================================
    # Grid access (scalar or per-lane)
    # ==================================================================

    def _shape(self, g: int):
        """Grid extent along dimension ``g``: an int, or a ``(lanes,)``
        vector in procs-lane mode."""
        if self._lane_shapes is None:
            return self.grid.shape[g]
        return self._shape_vectors[g]

    def _grid_size(self):
        if self._lane_shapes is None:
            return self.grid.size
        return np.asarray(
            [math.prod(s) for s in self._lane_shapes], dtype=np.int64
        )

    def _instances(self, stmt: Stmt, up_to_level: int | None = None) -> float:
        enclosing = []
        for loop in stmt.loops_enclosing():
            if up_to_level is not None and loop.level > up_to_level:
                break
            self.trip_count(loop)  # populate the triangular caches
            enclosing.append(loop)
        # Triangular trips driven by the same variable are correlated
        # (DGEFA's update nest: both J and I sweep n−k elements), so a
        # product of their means undercounts; sum the product of their
        # arithmetic progressions over the driver's range instead.
        groups: dict[str, list[LoopStmt]] = {}
        plain: list[LoopStmt] = []
        for loop in enclosing:
            tri = self._tri_cache.get(loop.stmt_id)
            if tri is not None:
                groups.setdefault(tri[0], []).append(loop)
            else:
                plain.append(loop)
        total = 1.0
        for loop in plain:
            members = groups.pop(loop.var.name, None)
            exact = None
            if members is not None:
                _vlow, _vstep, vtrip = self._range_cache[loop.var.name]
                if vtrip == int(vtrip) and vtrip > 0:
                    factors = [
                        self._tri_cache[m.stmt_id][1:] for m in members
                    ]
                    exact = _clamped_poly_sum(factors, int(vtrip))
            if exact is not None:
                total *= exact
            else:
                total *= self.trip_count(loop)
                for m in members or ():
                    total *= self.trip_count(m)
        # groups whose driver is itself triangular (or out of scope):
        # correlation is beyond the closed forms, use mean trips
        for members in groups.values():
            for m in members:
                total *= self.trip_count(m)
        return total

    # ==================================================================
    # Per-nest tier costs
    # ==================================================================

    #: host-side cost constants (seconds), calibrated against the
    #: executing simulator on this interpreter — only their *ratios*
    #: steer the tier choice, so rough is fine
    C_T2_STMT = 4e-6  #: one lowered-closure statement dispatch
    C_PREP = 6e-5  #: one slab prepare/commit attempt (fixed overhead)
    C_VEC = 2e-5  #: one vectorized statement evaluation (ufunc setup)
    C_ELEM = 1.5e-8  #: one slab lane of one statement

    def nest_cost(self, loop: LoopStmt) -> NestCost:
        """Predict tier-2 vs tier-3 time for one takeover-candidate
        nest.  Tier 2 dispatches a closure per statement instance; tier
        3 pays a fixed prepare/commit per entry of ``loop``, a ufunc
        setup per statement per entry, and a per-lane cost.  Both sides
        use the estimator's (triangular-exact) trip counts, so the
        comparison is between the same instance totals."""
        body = [
            stmt
            for stmt in loop.walk()
            if isinstance(stmt, (AssignStmt, IfStmt))
        ]
        instances = sum(self._instances(stmt) for stmt in body)
        entries = self._instances(loop)
        stmts = len(body)
        tier2 = self.C_T2_STMT * instances
        tier3 = (
            self.C_PREP * entries
            + self.C_VEC * stmts * entries
            + self.C_ELEM * instances
        )
        return NestCost(
            loop_id=loop.stmt_id,
            instances=instances,
            entries=entries,
            stmts=stmts,
            tier2_time=tier2,
            tier3_time=tier3,
        )

    # ==================================================================
    # Computation
    # ==================================================================

    def _flops_of_stmt(self, stmt: Stmt) -> int:
        if isinstance(stmt, AssignStmt):
            flops = flops_of_expr(stmt.rhs)
            if isinstance(stmt.lhs, ArrayElemRef):
                flops += len(stmt.lhs.subscripts)  # addressing
            return max(flops, 1)
        if isinstance(stmt, IfStmt):
            return max(flops_of_expr(stmt.cond), 1)
        return 0

    def _position_varies_with(self, position: Position, loop: LoopStmt) -> bool:
        for dim in position:
            if dim.kind == "pos" and dim.form is not None:
                if dim.form.coeff(loop.var) != 0:
                    return True
        return False

    def _parallel_factor(self, stmt: Stmt) -> float:
        """How many processors share this statement's instances."""
        executor = self.compiled.executors[stmt.stmt_id]
        if executor.kind == "all":
            return 1.0
        if executor.kind == "union" and all(
            p.kind == "any" for p in executor.position
        ):
            return self._sibling_parallel_factor(stmt)
        factor = 1.0
        lanes = self._lane_shapes is not None
        enclosing = stmt.loops_enclosing()
        for g, dim in enumerate(executor.position):
            procs = self._shape(g)
            if dim.kind != "pos" or dim.form is None:
                continue
            driving = [
                loop for loop in enclosing if dim.form.coeff(loop.var) != 0
            ]
            if not driving:
                continue  # fixed position: serialized along this dim
            extent = 1.0
            for loop in driving:
                extent *= self.trip_count(loop)
            if lanes:
                factor = factor * np.minimum(
                    procs.astype(np.float64), max(extent, 1.0)
                )
            else:
                factor *= min(float(procs), max(extent, 1.0))
        return np.maximum(factor, 1.0) if lanes else max(factor, 1.0)

    def _sibling_parallel_factor(self, stmt: Stmt) -> float:
        """Privatized (no-guard) statements execute with the union of
        the iteration's executors: inherit the best parallel factor of
        a sibling statement in the same innermost loop."""
        loop = stmt.loop
        if loop is None:
            return 1.0
        best = 1.0
        for sibling in loop.walk():
            if sibling is stmt:
                continue
            executor = self.compiled.executors.get(sibling.stmt_id)
            if executor is None or executor.kind != "owner":
                continue
            sibling_factor = self._parallel_factor(sibling)
            if self._lane_shapes is not None:
                best = np.maximum(best, sibling_factor)
            else:
                best = max(best, sibling_factor)
        return best

    # ==================================================================
    # Communication
    # ==================================================================

    def _ref_varies_with(self, ref, loop: LoopStmt) -> bool:
        if isinstance(ref, ArrayElemRef):
            for sub in ref.subscripts:
                form = affine_form(sub)
                if form is None:
                    return True  # unknown: assume it varies
                if form.coeff(loop.var) != 0:
                    return True
            return False
        if isinstance(ref, ScalarRef):
            # One scalar value per transfer instance.
            return False
        return False

    def _elements_of(self, event: CommEvent) -> float:
        """Elements this transfer aggregates per placement instance
        (message vectorization), with the shift-boundary reduction."""
        stmt = event.stmt
        p = event.placement_level
        elements = 1.0
        shift_dim_trip = 1.0
        for loop in stmt.loops_enclosing():
            if loop.level <= p:
                continue
            if self._ref_varies_with(event.ref, loop):
                elements *= self.trip_count(loop)
                if self._position_varies_with(event.data_position, loop):
                    shift_dim_trip *= self.trip_count(loop)
        if event.pattern.kind == "shift":
            # Only the boundary planes cross processors.
            delta = max((abs(d) for d in event.pattern.offsets), default=1)
            if shift_dim_trip > 1.0:
                elements = elements / shift_dim_trip * min(delta, shift_dim_trip)
        return elements

    def _boundary_fraction(self, event: CommEvent) -> float:
        """Fraction of placement instances of a shift that actually
        cross a processor boundary (lazy point-to-point semantics):
        (P_g − 1)·|δ| boundary iterations out of the driving loop's
        trip, per grid dimension the shift spans."""
        stmt = event.stmt
        p = event.placement_level
        fraction = 1.0
        for loop in stmt.loops_enclosing():
            if loop.level > p:
                continue
            for g, dim in enumerate(event.data_position):
                if (
                    dim.kind == "pos"
                    and dim.form is not None
                    and dim.form.coeff(loop.var) != 0
                ):
                    trip = self.trip_count(loop)
                    if trip <= 0:
                        continue
                    delta = max(
                        (abs(d) for d in event.pattern.offsets), default=1
                    )
                    if self._lane_shapes is not None:
                        boundaries = np.maximum(self._shape(g) - 1, 0) * delta
                        fraction = fraction * np.minimum(
                            1.0, boundaries / trip
                        )
                    else:
                        boundaries = max(self.grid.shape[g] - 1, 0) * delta
                        fraction *= min(1.0, boundaries / trip)
                    break
        return fraction

    def _event_cost(self, event: CommEvent) -> EventCost:
        stmt = event.stmt
        p = event.placement_level
        instances = self._instances(stmt, up_to_level=p)
        if self.pipelined_shifts and event.pattern.kind == "shift":
            instances *= self._boundary_fraction(event)
        # Message combining: one startup per instance, summed payload of
        # the merged transfers (duplicates are free — same data).
        elements = self._elements_of(event)
        for member in event.combined_with:
            elements += self._elements_of(member)
        span = 1
        if event.pattern.kind == "broadcast":
            for g in event.pattern.bcast_dims:
                span = span * self._shape(g)
        elif event.pattern.kind == "general":
            span = self._grid_size()
        if event.pattern.kind == "general":
            # Distinguish two 'general' shapes at this placement:
            #  * the data position is FIXED within one instance (only
            #    the destinations vary) -> one value multicast to many:
            #    broadcast pricing (e.g. DGEFA's pivot column);
            #  * the data position varies across the inner iterations ->
            #    personalized all-to-all: transpose pricing (e.g. the
            #    APPSP sweepz redistribution).
            data_varies_below = any(
                self._position_varies_with(event.data_position, loop)
                for loop in stmt.loops_enclosing()
                if loop.level > p
            )
            if data_varies_below:
                per_instance = self.machine.alltoall_time(
                    int(math.ceil(elements)), span
                )
            else:
                per_instance = self.machine.broadcast_time(
                    int(math.ceil(elements)), span
                )
        else:
            per_instance = self.machine.transfer_time(
                event.pattern, int(math.ceil(elements)), span
            )
        return EventCost(
            event=event,
            instances=instances,
            elements=elements,
            time_per_instance=per_instance,
            time=instances * per_instance,
        )

    def _reduce_cost(self, event: ReduceEvent) -> EventCost:
        # One combine per iteration of the loops enclosing the
        # reduction loop.
        instances = self._instances(event.stmt, up_to_level=event.loop_level - 1)
        span = 1
        for g in event.grid_dims:
            span = span * self._shape(g)
        per_instance = self.machine.reduce_time(event.elements, span)
        return EventCost(
            event=event,
            instances=instances,
            elements=float(event.elements),
            time_per_instance=per_instance,
            time=instances * per_instance,
        )

    # ==================================================================
    # Entry points
    # ==================================================================

    def estimate(self) -> PerfEstimate:
        stmt_costs: list[StmtCost] = []
        compute = 0.0
        for stmt in self.compiled.proc.all_stmts():
            flops = self._flops_of_stmt(stmt)
            if flops == 0:
                continue
            instances = self._instances(stmt)
            factor = self._parallel_factor(stmt)
            time = self.machine.compute_time(flops, 1) * instances / factor
            stmt_costs.append(
                StmtCost(
                    stmt=stmt,
                    instances=instances,
                    flops=flops,
                    parallel_factor=factor,
                    time=time,
                )
            )
            compute += time
        event_costs: list[EventCost] = []
        comm = 0.0
        for event in self.compiled.comm.events:
            cost = self._event_cost(event)
            event_costs.append(cost)
            comm += cost.time
        for reduce_event in self.compiled.comm.reduces:
            cost = self._reduce_cost(reduce_event)
            event_costs.append(cost)
            comm += cost.time
        return PerfEstimate(
            compute_time=compute,
            comm_time=comm,
            stmt_costs=stmt_costs,
            event_costs=event_costs,
        )

    def estimate_serial(self) -> float:
        """Single-processor execution time (no communication, no
        parallelism) — the speedup baseline."""
        total = 0.0
        for stmt in self.compiled.proc.all_stmts():
            flops = self._flops_of_stmt(stmt)
            if flops == 0:
                continue
            total += self.machine.compute_time(flops, 1) * self._instances(stmt)
        return total


def _position_signature(position) -> tuple:
    out = []
    for dim in position:
        form = None
        if dim.form is not None:
            form = (
                dim.form.const,
                tuple(sorted((s.name, c) for s, c in dim.form.coeffs)),
            )
        fmt = None
        if dim.fmt is not None:
            fmt = (dim.fmt.kind, dim.fmt.extent, dim.fmt.chunk)
        out.append((dim.kind, form, fmt))
    return tuple(out)


def estimate_signature(compiled: CompiledProgram) -> tuple:
    """Structural fingerprint of everything :class:`PerfEstimator`
    walks, *excluding* the processor count.

    Two compiles of the same source at different ``num_procs`` that
    share this signature differ only in ``grid.shape`` extents — every
    other estimator input (trip counts, flops, executor positions,
    communication events, placements, reduction spans) is identical —
    so a single procs-lane estimate with per-lane grid shapes prices
    each lane exactly as that lane's dedicated scalar estimate.  When
    the signatures differ (e.g. the mapping analysis made a
    P-dependent choice), the batched sweep evaluator falls back to one
    estimate per procs value."""
    # statement/ref ids are assigned by a compile-global counter, so
    # normalize to program-order indices before comparing compiles
    order = {
        stmt.stmt_id: i
        for i, stmt in enumerate(compiled.proc.all_stmts())
    }
    executors = tuple(
        (
            order.get(sid, sid),
            info.kind,
            _position_signature(info.position),
            tuple(info.union_dims),
        )
        for sid, info in sorted(
            compiled.executors.items(),
            key=lambda kv: order.get(kv[0], kv[0]),
        )
    )
    events = tuple(
        (
            e.ordinal,
            order.get(e.stmt.stmt_id, -1),
            e.placement_level,
            e.pattern.kind,
            tuple(e.pattern.offsets),
            tuple(e.pattern.bcast_dims),
            _position_signature(e.data_position),
            tuple(m.ordinal for m in e.combined_with),
        )
        for e in compiled.comm.events
    )
    reduces = tuple(
        (
            order.get(r.stmt.stmt_id, -1),
            r.loop_level,
            tuple(r.grid_dims),
            r.elements,
        )
        for r in compiled.comm.reduces
    )
    return (compiled.grid.rank, executors, events, reduces)

