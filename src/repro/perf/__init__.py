"""Analytic performance estimation over compiled programs."""

from .memory import MemoryReport, memory_report
from .estimator import (
    EventCost,
    NestCost,
    PerfEstimate,
    PerfEstimator,
    StmtCost,
)
from .tierplan import NestDecision, TierPlan, build_tierplan

__all__ = [
    "MemoryReport",
    "memory_report",
    "EventCost",
    "NestCost",
    "PerfEstimate",
    "PerfEstimator",
    "StmtCost",
    "NestDecision",
    "TierPlan",
    "build_tierplan",
]
