"""Analytic performance estimation over compiled programs."""

from .memory import MemoryReport, memory_report
from .estimator import (
    EventCost,
    NestCost,
    PerfEstimate,
    PerfEstimator,
    StmtCost,
    estimate_performance,
)
from .tierplan import NestDecision, TierPlan, build_tierplan

__all__ = [
    "MemoryReport",
    "memory_report",
    "EventCost",
    "NestCost",
    "PerfEstimate",
    "PerfEstimator",
    "StmtCost",
    "estimate_performance",
    "NestDecision",
    "TierPlan",
    "build_tierplan",
]
