"""Analytic performance estimation over compiled programs."""

from .memory import MemoryReport, memory_report
from .estimator import (
    EventCost,
    PerfEstimate,
    PerfEstimator,
    StmtCost,
    estimate_performance,
)

__all__ = [
    "MemoryReport",
    "memory_report",
    "EventCost",
    "PerfEstimate",
    "PerfEstimator",
    "StmtCost",
    "estimate_performance",
]
