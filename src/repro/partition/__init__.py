"""Computation partitioning (owner-computes executor sets and guards)."""

from .owner_computes import ExecutorInfo, PartitionPass, run_partitioning

__all__ = ["ExecutorInfo", "PartitionPass", "run_partitioning"]
