"""Computation partitioning under the owner-computes rule.

Every executable statement gets an :class:`ExecutorInfo` describing the
set of processors that execute it:

* ``owner`` — the owners of the lhs reference (or of the scalar
  mapping's alignment target),
* ``all``   — replicated execution: every processor runs the statement
  (the costly default the paper's privatization avoids),
* ``union`` — no computation-partitioning guard: the statement is
  executed by the union of processors executing any other statement of
  the same loop iteration (privatization without alignment, privatized
  control flow).

The grid-dimension-wise :class:`~repro.core.locality.Position` encodes
the executor set symbolically for the communication analysis and the
performance estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.context import AnalysisContext
from ..core.locality import Position, all_any, position_of_array_ref
from ..core.mapping_kinds import (
    AlignedTo,
    ControlFlowDecision,
    FullyReplicatedReduction,
    PrivateNoAlign,
    Replicated,
    ReductionMapping,
    ScalarMapping,
)
from ..errors import PartitionError
from ..ir.expr import ArrayElemRef, Ref, ScalarRef
from ..ir.stmt import (
    AssignStmt,
    CallStmt,
    ContinueStmt,
    GotoStmt,
    IfStmt,
    LoopStmt,
    Stmt,
    StopStmt,
)
from ..mapping.descriptors import ArrayMapping


@dataclass
class ExecutorInfo:
    stmt: Stmt
    kind: str  # "owner" | "all" | "union"
    position: Position
    guard_ref: Ref | None = None
    #: grid dims along which the executor follows the iteration's other
    #: statements (privatized/union execution) rather than an owner set
    union_dims: tuple[int, ...] = ()

    @property
    def no_guard(self) -> bool:
        return self.kind == "union"

    def __str__(self) -> str:
        if self.kind == "owner":
            return f"ON_OWNER({self.guard_ref})"
        return self.kind.upper()


class PartitionPass:
    """Computes :class:`ExecutorInfo` for every statement."""

    def __init__(
        self,
        ctx: AnalysisContext,
        scalar_pass,
        effective_mappings: dict[str, ArrayMapping],
        cf_decisions: dict[int, ControlFlowDecision],
        privatizations: list | None = None,
    ):
        self.ctx = ctx
        self.scalar_pass = scalar_pass
        self.mappings = effective_mappings
        self.cf_decisions = cf_decisions
        #: array name -> ArrayPrivatization (for union-dim refinement)
        self.privatizations = {
            p.array.name: p for p in (privatizations or [])
        }

    def run(self) -> dict[int, ExecutorInfo]:
        result: dict[int, ExecutorInfo] = {}
        for stmt in self.ctx.proc.all_stmts():
            result[stmt.stmt_id] = self._executor(stmt)
        return result

    # ------------------------------------------------------------------

    def _position_of_array_lhs(self, ref: ArrayElemRef) -> tuple[Position, tuple[int, ...]]:
        mapping = self.mappings[ref.symbol.name]
        position = position_of_array_ref(ref, mapping)
        union_dims = mapping.privatized_grid_dims
        if union_dims:
            # A write to a privatized array executes, along the
            # privatized grid dims, on the union of the iteration's
            # executors — which is exactly where the privatization's
            # alignment target lives (the consumers of the array's
            # values). Substitute the target's position there so
            # communication analysis sees the true executor set.
            priv = self.privatizations.get(ref.symbol.name)
            if priv is not None and priv.target is not None:
                target_mapping = self.mappings[priv.target.symbol.name]
                target_pos = position_of_array_ref(priv.target, target_mapping)
                position = tuple(
                    target_pos[g] if g in union_dims else p
                    for g, p in enumerate(position)
                )
        return position, union_dims

    def _executor(self, stmt: Stmt) -> ExecutorInfo:
        grid_rank = self.ctx.grid.rank
        if isinstance(stmt, AssignStmt):
            # Array-valued reduction updates execute on the owners of
            # the partial-reduction target (paper Section 3.1): each
            # processor accumulates into its private copy, combined at
            # loop exit.
            array_reductions = getattr(self.scalar_pass, "array_reductions", {})
            if stmt.stmt_id in array_reductions:
                _, mapping = array_reductions[stmt.stmt_id]
                target_mapping = self.mappings[mapping.target.symbol.name]
                return ExecutorInfo(
                    stmt=stmt,
                    kind="owner",
                    position=position_of_array_ref(mapping.target, target_mapping),
                    guard_ref=mapping.target,
                )
            if isinstance(stmt.lhs, ArrayElemRef):
                position, union_dims = self._position_of_array_lhs(stmt.lhs)
                kind = "owner"
                if union_dims and all(
                    p.kind == "any" for p in position
                ):
                    kind = "union"
                return ExecutorInfo(
                    stmt=stmt,
                    kind=kind,
                    position=position,
                    guard_ref=stmt.lhs,
                    union_dims=union_dims,
                )
            return self._scalar_executor(stmt)
        if isinstance(stmt, (IfStmt, GotoStmt)):
            decision = self.cf_decisions.get(stmt.stmt_id)
            if decision is not None and decision.privatized:
                return ExecutorInfo(
                    stmt=stmt,
                    kind="union",
                    position=all_any(grid_rank),
                    union_dims=tuple(range(grid_rank)),
                )
            return ExecutorInfo(stmt=stmt, kind="all", position=all_any(grid_rank))
        if isinstance(stmt, (LoopStmt, ContinueStmt, StopStmt, CallStmt)):
            # Loop headers (bounds/trip management) run everywhere; they
            # carry no owned data.
            return ExecutorInfo(stmt=stmt, kind="all", position=all_any(grid_rank))
        raise PartitionError(f"no executor rule for {stmt!r}")

    def _scalar_executor(self, stmt: AssignStmt) -> ExecutorInfo:
        grid_rank = self.ctx.grid.rank
        def_id = self.ctx.ssa.def_of_lhs.get(stmt.lhs.ref_id)
        mapping: ScalarMapping | None = (
            self.scalar_pass.decisions.get(def_id) if def_id is not None else None
        )
        if mapping is None or isinstance(
            mapping, (Replicated, FullyReplicatedReduction)
        ):
            return ExecutorInfo(
                stmt=stmt, kind="all", position=all_any(grid_rank), guard_ref=stmt.lhs
            )
        if isinstance(mapping, PrivateNoAlign):
            return ExecutorInfo(
                stmt=stmt,
                kind="union",
                position=all_any(grid_rank),
                guard_ref=stmt.lhs,
                union_dims=tuple(range(grid_rank)),
            )
        if isinstance(mapping, AlignedTo):
            target_mapping = self.mappings[mapping.target.symbol.name]
            return ExecutorInfo(
                stmt=stmt,
                kind="owner",
                position=position_of_array_ref(mapping.target, target_mapping),
                guard_ref=mapping.target,
            )
        if isinstance(mapping, ReductionMapping):
            target_mapping = self.mappings[mapping.target.symbol.name]
            base = position_of_array_ref(mapping.target, target_mapping)
            # Along the reduction dimensions every processor accumulates
            # its local partial result: owner-of-element execution.
            return ExecutorInfo(
                stmt=stmt,
                kind="owner",
                position=base,
                guard_ref=mapping.target,
            )
        raise PartitionError(f"unknown scalar mapping {mapping!r}")


def run_partitioning(
    ctx: AnalysisContext,
    scalar_pass,
    effective_mappings: dict[str, ArrayMapping],
    cf_decisions: dict[int, ControlFlowDecision],
    privatizations: list | None = None,
) -> dict[int, ExecutorInfo]:
    return PartitionPass(
        ctx, scalar_pass, effective_mappings, cf_decisions, privatizations
    ).run()
