"""Seeded random generation of valid mini-HPF programs.

:func:`generate` draws a :class:`~repro.fuzz.grammar.FuzzProgram` from
a :class:`GenConfig` and an integer seed.  The same ``(seed, config)``
always produces the same program (``random.Random`` is stable), so a
campaign is reproducible from its seed alone and every corpus file can
be regenerated from the provenance comment in its header.

Validity invariants the generator maintains (property-tested in
``tests/fuzz/test_generator.py``):

* every emitted program parses, compiles, and runs on the interpreter;
* every scalar is assigned before it is read — reduction accumulators
  at program start, privatized temporaries earlier in the same
  iteration (temporaries defined in an inner loop are never read in
  the epilogue, where a sometimes-empty triangular inner loop could
  leave them stale);
* all subscripts stay inside the declared ``(n, n)`` bounds: loop
  ranges are drawn from ``2 .. n-1`` and stencil offsets from
  ``[-1, 1]``;
* ``INDEPENDENT`` is asserted only on nests where every array is
  read-only or written-only (no loop-carried flow), with privatized
  temporaries in ``NEW`` and accumulators in ``REDUCTION``;
* no division, so no input can trap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .grammar import (
    DIST_PLANS,
    DistPlan,
    FuzzLoop,
    FuzzNest,
    FuzzProgram,
    FuzzStmt,
    ref,
)

#: float literals used as coefficients (exact in binary where it
#: matters little — tiers share one numeric path anyway)
COEFFS = ("0.125", "0.25", "0.5", "0.75", "1.25", "2.0", "3.0")

#: guard comparison thresholds inside the input range [0.5, 1.5]
THRESHOLDS = ("0.8", "1.0", "1.2", "1.4")


@dataclass
class GenConfig:
    """Size and feature knobs of the generator."""

    n_min: int = 7
    n_max: int = 12
    max_nests: int = 3
    max_body: int = 4
    procs_choices: tuple[int, ...] = (1, 2, 3, 4)
    dists: tuple[DistPlan, ...] = DIST_PLANS
    #: feature probabilities
    p_guard: float = 0.30
    p_scalar_reduce: float = 0.45
    p_elem_reduce: float = 0.25
    p_triangular: float = 0.40
    p_empty_triangle: float = 0.15
    p_imperfect: float = 0.40
    p_downward: float = 0.20
    p_flat: float = 0.15
    p_work_array: float = 0.25
    p_independent: float = 0.35
    p_lhs_offset: float = 0.15
    temps: tuple[str, ...] = ("T0", "T1", "T2")
    accumulators: tuple[str, ...] = ("R0", "R1")

    def scaled(self, factor: float) -> "GenConfig":
        """A config with the structural size knobs scaled (the CLI's
        ``--size``); probabilities stay put."""
        import dataclasses

        return dataclasses.replace(
            self,
            max_nests=max(1, round(self.max_nests * factor)),
            max_body=max(1, round(self.max_body * factor)),
        )


@dataclass
class _Draw:
    """Mutable generation state for one program."""

    rng: random.Random
    config: GenConfig
    arrays: tuple[str, ...]
    used_scalars: set[str] = field(default_factory=set)
    used_work: bool = False


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def _array_ref(d: _Draw, i: str, j: str, *, inner: bool) -> str:
    """A random in-bounds array reference.  ``inner`` refs use both
    loop variables with stencil offsets; outer-level refs pin the
    first subscript to a small literal."""
    rng = d.rng
    array = rng.choice(d.arrays)
    oi = rng.choice((-1, 0, 0, 1))
    oj = rng.choice((-1, 0, 0, 1))
    if inner:
        return ref(array, i, oi, j, oj)
    return ref(array, str(rng.choice((2, 3))), 0, j, oj)


def _operand(d: _Draw, i: str, j: str, temps: list[str], *, inner: bool) -> str:
    rng = d.rng
    if temps and rng.random() < 0.3:
        return rng.choice(temps)
    return _array_ref(d, i, j, inner=inner)


def _expr(d: _Draw, i: str, j: str, temps: list[str], *, inner: bool) -> str:
    """A small random arithmetic expression over in-scope operands."""
    rng = d.rng
    shape = rng.randrange(5)
    a = _operand(d, i, j, temps, inner=inner)
    b = _operand(d, i, j, temps, inner=inner)
    if shape == 0:
        return f"{rng.choice(COEFFS)} * {a}"
    if shape == 1:
        return f"{a} {rng.choice('+-')} {b}"
    if shape == 2:
        return f"{rng.choice(COEFFS)} * ({a} {rng.choice('+-')} {b})"
    if shape == 3:
        return f"ABS({a} - {b})"
    return f"{a} * {rng.choice(COEFFS)} + {b}"


def _guard(d: _Draw, i: str, j: str, *, inner: bool) -> str:
    rng = d.rng
    op = rng.choice((".GT.", ".LT.", ".GE."))
    return f"{_array_ref(d, i, j, inner=inner)} {op} {rng.choice(THRESHOLDS)}"


def _reduce_stmt(d: _Draw, acc: str, i: str, j: str, temps: list[str],
                 *, inner: bool) -> FuzzStmt:
    rng = d.rng
    d.used_scalars.add(acc)
    value = _expr(d, i, j, temps, inner=inner)
    if rng.random() < 0.5:
        rhs = f"MAX({acc}, ABS({value}))"
    else:
        rhs = f"{acc} + {value}"
    guard = None
    if rng.random() < d.config.p_guard:
        guard = _guard(d, i, j, inner=inner)
    return FuzzStmt(lhs=acc, rhs=rhs, guard=guard)


# ---------------------------------------------------------------------------
# Nest shapes
# ---------------------------------------------------------------------------


def _inner_body(d: _Draw) -> list[FuzzStmt]:
    """Random inner-loop body: privatized temp chain, array writes,
    optional guards, optional reductions."""
    rng = d.rng
    config = d.config
    body: list[FuzzStmt] = []
    temps: list[str] = []
    count = rng.randrange(1, config.max_body + 1)
    for _ in range(count):
        kind = rng.random()
        if kind < 0.30 and len(temps) < len(config.temps):
            name = config.temps[len(temps)]
            body.append(
                FuzzStmt(lhs=name, rhs=_expr(d, "i", "j", temps, inner=True))
            )
            temps.append(name)
            d.used_scalars.add(name)
            continue
        if kind < 0.30 + config.p_scalar_reduce * 0.5:
            body.append(
                _reduce_stmt(
                    d, rng.choice(config.accumulators), "i", "j", temps,
                    inner=True,
                )
            )
            continue
        target = rng.choice(d.arrays)
        oi = 0
        if rng.random() < config.p_lhs_offset:
            oi = rng.choice((-1, 1))
        lhs = ref(target, "i", oi, "j", 0)
        if rng.random() < config.p_elem_reduce:
            # fold into one element of the owned column (dgefa-style)
            lhs = ref(target, "2", 0, "j", 0)
            rhs = f"{lhs} + {_expr(d, 'i', 'j', temps, inner=True)}"
        else:
            rhs = _expr(d, "i", "j", temps, inner=True)
        guard = None
        if rng.random() < config.p_guard:
            guard = _guard(d, "i", "j", inner=True)
        body.append(FuzzStmt(lhs=lhs, rhs=rhs, guard=guard))
    if not any("(" in stmt.lhs for stmt in body):
        # always at least one array write, so the nest has an owner-
        # computes executor and the program an observable effect
        target = rng.choice(d.arrays)
        body.append(
            FuzzStmt(
                lhs=ref(target, "i", 0, "j", 0),
                rhs=_expr(d, "i", "j", temps, inner=True),
            )
        )
    return body


def _array_roles(
    stmts: list[FuzzStmt], arrays: tuple[str, ...]
) -> tuple[set[str], set[str]]:
    """(written, read) array names across ``stmts`` — lhs counts as a
    read too when it is a fold accumulator (``A(...) = A(...) + ...``)."""
    writes: set[str] = set()
    reads: set[str] = set()
    for stmt in stmts:
        for name in arrays:
            tag = f"{name}("
            if stmt.lhs.startswith(tag):
                writes.add(name)
            if tag in stmt.rhs or (stmt.guard is not None and tag in stmt.guard):
                reads.add(name)
    return writes, reads


def _nest(d: _Draw) -> FuzzNest:
    rng = d.rng
    config = d.config

    # -- flat nests: outer loop only, statements indexed by j ---------------
    if rng.random() < config.p_flat:
        pre: list[FuzzStmt] = []
        for _ in range(rng.randrange(1, config.max_body + 1)):
            if rng.random() < 0.3:
                pre.append(
                    _reduce_stmt(
                        d, rng.choice(config.accumulators), "2", "j", [],
                        inner=False,
                    )
                )
                continue
            target = rng.choice(d.arrays)
            pre.append(
                FuzzStmt(
                    lhs=ref(target, str(rng.choice((2, 3))), 0, "j", 0),
                    rhs=_expr(d, "2", "j", [], inner=False),
                )
            )
        return FuzzNest(var="j", low="2", high="n - 1", pre=pre)

    # -- the NEW-privatized work-array nest ---------------------------------
    if d.used_work is False and rng.random() < config.p_work_array:
        d.used_work = True
        fill = FuzzLoop(
            var="i",
            low="2",
            high="n - 1",
            body=[
                FuzzStmt(lhs="W(i)", rhs=_expr(d, "i", "j", [], inner=True))
            ],
        )
        target = rng.choice(d.arrays)
        use = FuzzLoop(
            var="i",
            low="2",
            high="n - 1",
            body=[
                FuzzStmt(
                    lhs=ref(target, "i", 0, "j", 0),
                    rhs=f"W(i) * {rng.choice(COEFFS)} + "
                    + _array_ref(d, "i", "j", inner=True),
                )
            ],
        )
        nest = FuzzNest(
            var="j",
            low="2",
            high="n - 1",
            inner=[fill, use],
            independent=True,
            new_vars=("W",),
        )
        # the consume loop's extra operand (or the fill expression) may
        # read the array it writes — a cross-column flow that makes the
        # INDEPENDENT assertion a lie; demote to a plain nest then
        writes, reads = _array_roles(nest.all_stmts(), d.arrays)
        if writes & reads:
            nest.independent = False
            nest.new_vars = ()
        return nest

    # -- two-level nests -----------------------------------------------------
    low, high, step = "2", "n - 1", 1
    triangular = rng.random() < config.p_triangular
    if triangular:
        shapes = ["j, n - 1", "2, j"]
        if rng.random() < config.p_empty_triangle:
            shapes.append("j + 1, n - 1")  # empty at j = n-1
        low, high = rng.choice(shapes).split(", ")
    elif rng.random() < config.p_downward:
        low, high, step = "n - 1", "2", -1
    body = _inner_body(d)
    inner = [FuzzLoop(var="i", low=low, high=high, step=step, body=body)]

    pre: list[FuzzStmt] = []
    post: list[FuzzStmt] = []
    if rng.random() < config.p_imperfect:
        # scalar prologue: a temp the inner body may not see (it uses
        # its own chain) but the epilogue can — def-before-use holds
        # because pre runs every outer iteration
        name = config.temps[-1]
        d.used_scalars.add(name)
        pre.append(FuzzStmt(lhs=name, rhs=_expr(d, "2", "j", [], inner=False)))
        if rng.random() < 0.5:
            target = rng.choice(d.arrays)
            post.append(
                FuzzStmt(
                    lhs=ref(target, "2", 0, "j", 0),
                    rhs=f"{name} + {_expr(d, '3', 'j', [], inner=False)}",
                )
            )
    writes, reads = _array_roles(pre + body + post, d.arrays)
    independent = False
    new_vars: tuple[str, ...] = ()
    reduction_vars: tuple[str, ...] = ()
    if (
        rng.random() < config.p_independent
        and not triangular
        and step == 1
        and not (writes & reads)
    ):
        independent = True
        new_vars = tuple(
            t for t in config.temps
            if any(s.lhs == t for n_ in inner for s in n_.body)
            or any(s.lhs == t for s in pre)
        )
        reduction_vars = tuple(
            a for a in config.accumulators
            if any(
                s.lhs == a
                for s in pre + post + [b for n_ in inner for b in n_.body]
            )
        )
    return FuzzNest(
        var="j",
        low="2",
        high="n - 1",
        pre=pre,
        inner=inner,
        post=post,
        independent=independent,
        new_vars=new_vars,
        reduction_vars=reduction_vars,
    )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def generate(seed: int, config: GenConfig | None = None) -> FuzzProgram:
    """The program drawn by ``seed`` under ``config``."""
    config = config or GenConfig()
    rng = random.Random(seed)
    n = rng.randrange(config.n_min, config.n_max + 1)
    dist = rng.choice(config.dists)
    procs = rng.choice(config.procs_choices)
    arrays = ("A", "B", "C")
    d = _Draw(rng=rng, config=config, arrays=arrays)
    nests = [_nest(d) for _ in range(rng.randrange(1, config.max_nests + 1))]
    scalars = tuple(
        s for s in config.accumulators + config.temps if s in d.used_scalars
    )
    return FuzzProgram(
        n=n,
        procs=procs,
        dist=dist,
        arrays=arrays,
        scalars=scalars,
        work_array="W" if d.used_work else None,
        nests=nests,
        seed=seed,
    )
