"""Greedy structural minimization of failing fuzz programs.

The shrinker never edits source text: it deletes and simplifies nodes
of the :class:`~repro.fuzz.grammar.FuzzProgram` model and re-emits, so
every candidate is valid-by-construction.  A candidate is kept when
the caller's predicate still fails on it (same divergence kind, by
default), and the loop runs to a fixpoint:

1. drop whole nests,
2. drop statements (prologue / inner bodies / epilogue),
3. drop empty inner loops,
4. strip guards, INDEPENDENT clauses, and the provenance comment,
5. simplify surviving right-hand sides to a single operand,
6. shrink ``n`` toward the smallest size that still reproduces.

Deletion candidates are tried largest-first so the common case (one
culprit statement in one nest) minimizes in O(program size) predicate
calls rather than O(size²).
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Callable

from .grammar import FuzzProgram

#: the smallest n the shrinker will try (stencils need 2 .. n-1
#: non-degenerate, and tiny extents stop exercising distribution math)
MIN_N = 6


def _without(items: list, index: int) -> list:
    return items[:index] + items[index + 1:]


def _stmt_sites(program: FuzzProgram):
    """Every deletable statement as (nest index, list name, inner
    index or None, stmt index)."""
    for ni, nest in enumerate(program.nests):
        for si in range(len(nest.pre)):
            yield ni, "pre", None, si
        for li, loop in enumerate(nest.inner):
            for si in range(len(loop.body)):
                yield ni, "body", li, si
        for si in range(len(nest.post)):
            yield ni, "post", None, si


def _delete_stmt(program: FuzzProgram, site) -> FuzzProgram:
    ni, kind, li, si = site
    clone = program.clone()
    nest = clone.nests[ni]
    if kind == "pre":
        nest.pre = _without(nest.pre, si)
    elif kind == "post":
        nest.post = _without(nest.post, si)
    else:
        loop = nest.inner[li]
        loop.body = _without(loop.body, si)
    return clone


def _drop_empty_loops(program: FuzzProgram) -> FuzzProgram:
    clone = program.clone()
    changed = False
    for nest in clone.nests:
        kept = [loop for loop in nest.inner if loop.body]
        if len(kept) != len(nest.inner):
            nest.inner = kept
            changed = True
    clone.nests = [
        nest
        for nest in clone.nests
        if nest.pre or nest.post or nest.inner
    ]
    return clone if changed or len(clone.nests) != len(program.nests) else program


_REF = re.compile(r"[A-Z]\w*\([^()]*\)|[A-Z]\w*|\d+\.\d+")


def _simplify_rhs(rhs: str) -> str | None:
    """The first operand of a compound rhs, or None when already
    minimal.  Fold accumulators (``X = X + ...``) keep their shape —
    collapsing them to the accumulator alone would erase the fold."""
    refs = _REF.findall(rhs)
    if len(refs) <= 1:
        return None
    first = refs[0]
    if first in ("ABS", "MAX", "MIN") and len(refs) > 1:
        first = refs[1]
    if first == rhs:
        return None
    return first


def shrink(
    program: FuzzProgram,
    still_fails: Callable[[FuzzProgram], bool],
    *,
    max_steps: int = 400,
) -> FuzzProgram:
    """Greedy fixpoint minimization of ``program`` under
    ``still_fails`` (which must be True for ``program`` itself)."""
    current = program
    steps = 0

    def attempt(candidate: FuzzProgram) -> bool:
        nonlocal current, steps
        steps += 1
        if steps > max_steps:
            return False
        if candidate.stmt_count() == 0 and not candidate.nests:
            return False
        if still_fails(candidate):
            current = candidate
            return True
        return False

    progress = True
    while progress and steps <= max_steps:
        progress = False
        # 1. whole nests, largest first
        order = sorted(
            range(len(current.nests)),
            key=lambda ni: -len(current.nests[ni].all_stmts()),
        )
        for ni in order:
            if len(current.nests) <= 1:
                break
            clone = current.clone()
            clone.nests = _without(clone.nests, ni)
            if attempt(clone):
                progress = True
                break
        if progress:
            continue
        # 2. single statements
        for site in list(_stmt_sites(current)):
            candidate = _drop_empty_loops(_delete_stmt(current, site))
            if candidate.stmt_count() == 0:
                continue
            if attempt(candidate):
                progress = True
                break
        if progress:
            continue
        # 3. strip guards / directives / provenance
        clone = current.clone()
        changed = False
        for nest in clone.nests:
            if nest.independent:
                nest.independent = False
                nest.new_vars = ()
                nest.reduction_vars = ()
                changed = True
            for stmt in nest.all_stmts():
                if stmt.guard is not None:
                    stmt.guard = None
                    changed = True
        if clone.seed is not None:
            clone.seed = None
            changed = True
        if changed and attempt(clone):
            progress = True
            continue
        # ... then one site at a time (the bulk strip usually loses the
        # bug when a guard or directive is load-bearing)
        for nest_index, nest in enumerate(current.nests):
            for stmt_index, stmt in enumerate(nest.all_stmts()):
                if stmt.guard is None:
                    continue
                clone = current.clone()
                clone.nests[nest_index].all_stmts()[stmt_index].guard = None
                if attempt(clone):
                    progress = True
                    break
            if progress:
                break
        if progress:
            continue
        # 4. simplify right-hand sides
        for nest_index, nest in enumerate(current.nests):
            for stmt_index, stmt in enumerate(nest.all_stmts()):
                if stmt.lhs in stmt.rhs:
                    continue  # keep fold shapes intact
                simpler = _simplify_rhs(stmt.rhs)
                if simpler is None:
                    continue
                clone = current.clone()
                clone.nests[nest_index].all_stmts()[stmt_index].rhs = simpler
                if attempt(clone):
                    progress = True
                    break
            if progress:
                break
        if progress:
            continue
        # 5. shrink n
        if current.n > MIN_N:
            for smaller in (MIN_N, current.n - 1):
                if smaller >= current.n:
                    continue
                if attempt(replace(current.clone(), n=smaller)):
                    progress = True
                    break
    return current
