"""The fuzzer's structured program model.

A :class:`FuzzProgram` is a small tree — declarations, mapping
directives, and a list of :class:`FuzzNest` loop nests over shared
2-D arrays — that *emits* mini-HPF source.  The generator
(:mod:`repro.fuzz.generator`) draws random instances; the shrinker
(:mod:`repro.fuzz.shrink`) deletes and simplifies pieces of the tree
and re-emits, so every minimized reproducer is a valid program by
construction rather than a text edit that happens to parse.

The modelled subset is exactly the surface the three execution tiers
disagree about in interesting ways:

* 1-D ``BLOCK``/``CYCLIC`` column and row distributions, block-cyclic
  ``CYCLIC(k)``, 2-D ``(BLOCK, BLOCK)`` grids, and fully replicated
  programs (no directives at all);
* ``ALIGN`` chains binding the other arrays to the distributed anchor;
* perfect, triangular (inner bounds using the outer variable),
  imperfect (scalar prologue/epilogue, multiple inner loops), and
  downward (negative step) nests;
* privatizable scalar chains, guarded statements (one-line logical
  ``IF``), sum/max reductions into scalars and into owned elements;
* ``INDEPENDENT [, NEW(...)] [, REDUCTION(...)]`` assertions, including
  a ``NEW``-privatized 1-D work array filled then consumed per column.

Everything emitted respects the generator's validity invariants: every
scalar is written before it is read, every subscript stays in bounds
for loop ranges drawn from ``2 .. n-1`` with stencil offsets in
``[-1, 1]``, and no division appears anywhere (so no runtime can trap).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
#
# Rhs expressions are plain strings built by the generator from a
# closed vocabulary (array refs with affine offsets, scalar names,
# float literals, ``+ - *`` and ``ABS/MAX/MIN``).  The shrinker never
# rewrites inside an expression — it replaces whole statements or
# deletes them — so strings keep the model small without costing any
# shrink power.


def ref(array: str, i: str, oi: int, j: str, oj: int) -> str:
    """``A(i+1, j-1)``-style reference text."""

    def sub(var: str, off: int) -> str:
        if off == 0:
            return var
        return f"{var} {'+' if off > 0 else '-'} {abs(off)}"

    return f"{array}({sub(i, oi)}, {sub(j, oj)})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class FuzzStmt:
    """One body statement: ``lhs = rhs``, optionally guarded by a
    one-line logical IF, optionally a reduction update (in which case
    ``lhs`` also appears as the fold accumulator inside ``rhs``)."""

    lhs: str
    rhs: str
    guard: str | None = None

    def emit(self, indent: str) -> str:
        text = f"{self.lhs} = {self.rhs}"
        if self.guard is not None:
            text = f"IF ({self.guard}) {text}"
        return f"{indent}{text}"


@dataclass
class FuzzLoop:
    """An inner loop: bounds may reference the outer variable (the
    triangular shapes) and the step may be negative."""

    var: str
    low: str
    high: str
    step: int = 1
    body: list[FuzzStmt] = field(default_factory=list)

    def emit(self, indent: str) -> list[str]:
        rng = f"{self.low}, {self.high}"
        if self.step != 1:
            rng += f", {self.step}"
        lines = [f"{indent}DO {self.var} = {rng}"]
        for stmt in self.body:
            lines.append(stmt.emit(indent + "  "))
        lines.append(f"{indent}END DO")
        return lines


@dataclass
class FuzzNest:
    """One outer loop over ``j`` holding prologue statements, inner
    loops, and epilogue statements.  ``independent`` attaches an
    ``!HPF$ INDEPENDENT`` directive with the given NEW/REDUCTION
    clauses to the outer loop."""

    var: str
    low: str
    high: str
    step: int = 1
    pre: list[FuzzStmt] = field(default_factory=list)
    inner: list[FuzzLoop] = field(default_factory=list)
    post: list[FuzzStmt] = field(default_factory=list)
    independent: bool = False
    new_vars: tuple[str, ...] = ()
    reduction_vars: tuple[str, ...] = ()

    def emit(self, indent: str) -> list[str]:
        lines: list[str] = []
        if self.independent:
            clauses = ""
            if self.new_vars:
                clauses += f", NEW({', '.join(self.new_vars)})"
            if self.reduction_vars:
                clauses += f", REDUCTION({', '.join(self.reduction_vars)})"
            lines.append(f"!HPF$ INDEPENDENT{clauses}")
        rng = f"{self.low}, {self.high}"
        if self.step != 1:
            rng += f", {self.step}"
        lines.append(f"{indent}DO {self.var} = {rng}")
        for stmt in self.pre:
            lines.append(stmt.emit(indent + "  "))
        for loop in self.inner:
            lines.extend(loop.emit(indent + "  "))
        for stmt in self.post:
            lines.append(stmt.emit(indent + "  "))
        lines.append(f"{indent}END DO")
        return lines

    def all_stmts(self) -> list[FuzzStmt]:
        stmts = list(self.pre)
        for loop in self.inner:
            stmts.extend(loop.body)
        stmts.extend(self.post)
        return stmts


# ---------------------------------------------------------------------------
# Distribution plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DistPlan:
    """How the anchor array (and everything aligned with it) is mapped.

    ``formats`` is the DISTRIBUTE format tuple (e.g. ``("*",
    "BLOCK")``); an empty tuple means fully replicated (no directives
    at all).  ``grid_rank`` is the PROCESSORS rank the formats need.
    """

    formats: tuple[str, ...] = ("*", "BLOCK")

    @property
    def grid_rank(self) -> int:
        return sum(1 for f in self.formats if f != "*")

    @property
    def replicated(self) -> bool:
        return not self.formats

    def describe(self) -> str:
        return "replicated" if self.replicated else ",".join(self.formats)


#: the distribution repertoire, in rough order of tier interest
DIST_PLANS = (
    DistPlan(("*", "BLOCK")),     # column-block: the slab tier's home turf
    DistPlan(("*", "CYCLIC")),    # cyclic columns: still slab-eligible
    DistPlan(("*", "CYCLIC(2)")),  # block-cyclic columns
    DistPlan(("BLOCK", "*")),     # row-block: executor varies along i
    DistPlan(("CYCLIC", "*")),    # cyclic rows
    DistPlan(("BLOCK", "BLOCK")),  # 2-D grid
    DistPlan(()),                 # fully replicated
)


# ---------------------------------------------------------------------------
# The program
# ---------------------------------------------------------------------------


@dataclass
class FuzzProgram:
    """A complete generated program.  ``emit(procs=...)`` renders
    mini-HPF source with the PROCESSORS directive re-shaped for the
    requested processor count (so sweep callables can re-emit per
    point, like the paper program builders do)."""

    n: int
    procs: int
    dist: DistPlan
    #: 2-D (n, n) arrays; the first is the DISTRIBUTE anchor, the rest
    #: are ALIGNed with it (replicated programs skip the directives)
    arrays: tuple[str, ...] = ("A", "B", "C")
    #: scalars initialized to 0.0 / 1.0 alternately before the nests
    scalars: tuple[str, ...] = ()
    #: a NEW-privatized 1-D work array (length n), or None
    work_array: str | None = None
    nests: list[FuzzNest] = field(default_factory=list)
    #: provenance, embedded as a comment for checked-in corpus files
    seed: int | None = None

    # -- grid shaping ------------------------------------------------------

    def grid_shape(self, procs: int) -> tuple[int, ...]:
        if self.dist.grid_rank <= 1:
            return (procs,)
        # 2-D grids: the most-square factorization, largest dim first
        best = (procs, 1)
        for a in range(2, int(procs**0.5) + 1):
            if procs % a == 0:
                best = (procs // a, a)
        return best

    # -- emission ----------------------------------------------------------

    def emit(self, procs: int | None = None) -> str:
        procs = self.procs if procs is None else procs
        lines = ["PROGRAM FUZZ"]
        if self.seed is not None:
            lines.append(f"! repro.fuzz seed={self.seed}")
        lines.append(f"  PARAMETER (n = {self.n})")
        decls = ", ".join(f"{a}(n,n)" for a in self.arrays)
        lines.append(f"  REAL {decls}")
        if self.work_array is not None:
            lines.append(f"  REAL {self.work_array}(n)")
        if self.scalars:
            lines.append(f"  REAL {', '.join(self.scalars)}")
        if not self.dist.replicated:
            shape = self.grid_shape(procs)
            dims = ", ".join(str(d) for d in shape)
            lines.append(f"!HPF$ PROCESSORS PROCS({dims})")
            anchor = self.arrays[0]
            rest = self.arrays[1:]
            if rest:
                lines.append(
                    f"!HPF$ ALIGN (i, j) WITH {anchor}(i, j) :: "
                    + ", ".join(rest)
                )
            fmt = ", ".join(self.dist.formats)
            lines.append(f"!HPF$ DISTRIBUTE ({fmt}) ONTO PROCS :: {anchor}")
        for k, name in enumerate(self.scalars):
            lines.append(f"  {name} = {'0.0' if k % 2 == 0 else '1.0'}")
        for nest in self.nests:
            lines.extend(nest.emit("  "))
        lines.append("END PROGRAM")
        return "\n".join(lines) + "\n"

    # -- shrink support ----------------------------------------------------

    def clone(self) -> "FuzzProgram":
        def stmts(items: list[FuzzStmt]) -> list[FuzzStmt]:
            return [replace(stmt) for stmt in items]

        return replace(
            self,
            nests=[
                replace(
                    nest,
                    pre=stmts(nest.pre),
                    post=stmts(nest.post),
                    inner=[
                        replace(loop, body=stmts(loop.body))
                        for loop in nest.inner
                    ],
                )
                for nest in self.nests
            ],
        )

    def stmt_count(self) -> int:
        return sum(len(nest.all_stmts()) for nest in self.nests)
