"""Fuzz campaigns: generate → check → shrink → report.

:func:`run_campaign` drives a fixed-seed, fixed-budget batch (the CI
``fuzz-smoke`` job and ``repro fuzz`` both call it): program ``k`` of a
campaign with seed ``s`` is always ``generate(s * STRIDE + k)``, so any
failure is reproducible from ``(seed, k)`` alone and a re-run after a
fix covers the identical program set.

Every failing program is minimized with :func:`repro.fuzz.shrink`
under a predicate that requires the *same divergence kind* to persist
(so a shrink step cannot wander from, say, a clock mismatch to an
unrelated crash), and lands in the report — and, when ``artifact_dir``
is set, on disk as ``divergence_NNN.hpf`` next to a JSON summary.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from .generator import GenConfig, generate
from .grammar import FuzzProgram
from .harness import Divergence, check_program
from .shrink import shrink

#: seed stride between campaigns — larger than any count we run, so
#: campaigns with different seeds never share a program
STRIDE = 1_000_000


@dataclass
class Finding:
    """One failing program: where it came from, what diverged, and the
    minimized reproducer."""

    index: int
    gen_seed: int
    divergences: list[Divergence]
    minimized: FuzzProgram
    minimized_source: str


@dataclass
class FuzzReport:
    seed: int
    count: int
    checked: int = 0
    invalid: int = 0
    findings: list[Finding] = field(default_factory=list)
    #: how many generated programs actually exercised the slab tier
    slab_hits: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and self.invalid == 0

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.checked}/{self.count} programs checked, "
            f"{self.slab_hits} ran slabs, {self.invalid} invalid, "
            f"{len(self.findings)} divergent"
        ]
        for finding in self.findings:
            kinds = sorted({d.kind for d in finding.divergences})
            lines.append(
                f"  #{finding.index} (seed {finding.gen_seed}): "
                f"{', '.join(kinds)} — minimized to "
                f"{finding.minimized.stmt_count()} statement(s)"
            )
            lines.append("    " + finding.divergences[0].describe())
        return "\n".join(lines)


def _slab_ran(program: FuzzProgram, procs: int = 3, seed: int = 0) -> bool:
    """Did the slab tier actually take over a nest of this program?"""
    from ..core.driver import CompilerOptions, compile_source
    from ..machine.simulator import simulate

    try:
        compiled = compile_source(
            program.emit(procs), CompilerOptions(num_procs=procs)
        )
        from .harness import make_inputs

        sim = simulate(
            compiled,
            make_inputs(program.emit(procs), seed),
            fast_path=True,
            slab_path=True,
        )
    except Exception:  # noqa: BLE001 — coverage stat only
        return False
    return sim.slab_instances > 0


def run_campaign(
    seed: int = 0,
    count: int = 150,
    *,
    config: GenConfig | None = None,
    procs_list: tuple[int, ...] = (1, 3, 4),
    sweep_every: int = 25,
    artifact_dir: str | None = None,
    shrink_steps: int = 400,
    verbose: bool = False,
    log=print,
) -> FuzzReport:
    """Check ``count`` generated programs; shrink and report failures.

    ``sweep_every > 0`` adds the pool-vs-batched sweep differential to
    every ``sweep_every``-th program (it multiplies runtime, so the
    smoke budget samples it rather than paying it everywhere).
    """
    config = config or GenConfig()
    report = FuzzReport(seed=seed, count=count)
    for index in range(count):
        gen_seed = seed * STRIDE + index
        program = generate(gen_seed, config)
        with_sweep = sweep_every > 0 and index % sweep_every == sweep_every - 1
        divergences = check_program(
            program,
            procs_list=procs_list,
            sweep=with_sweep,
        )
        report.checked += 1
        if _slab_ran(program):
            report.slab_hits += 1
        if not divergences:
            continue
        if all(d.kind == "invalid" for d in divergences):
            report.invalid += 1
            if verbose:
                log(f"  invalid program at seed {gen_seed}: "
                    f"{divergences[0].detail}")
            continue
        kinds = {d.kind for d in divergences} - {"invalid"}
        if verbose:
            log(f"  divergence at #{index} (seed {gen_seed}): "
                + "; ".join(sorted(kinds)))

        def still_fails(candidate: FuzzProgram) -> bool:
            found = check_program(
                candidate,
                procs_list=procs_list,
                sweep=with_sweep,
            )
            return bool({d.kind for d in found} & kinds)

        minimized = shrink(program, still_fails, max_steps=shrink_steps)
        final = check_program(
            minimized, procs_list=procs_list, sweep=with_sweep
        )
        report.findings.append(
            Finding(
                index=index,
                gen_seed=gen_seed,
                divergences=final or divergences,
                minimized=minimized,
                minimized_source=minimized.emit(),
            )
        )
    if artifact_dir and report.findings:
        write_artifacts(report, artifact_dir)
    return report


def write_artifacts(report: FuzzReport, artifact_dir: str) -> None:
    os.makedirs(artifact_dir, exist_ok=True)
    summary = []
    for pos, finding in enumerate(report.findings):
        path = os.path.join(artifact_dir, f"divergence_{pos:03d}.hpf")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"! minimized fuzz divergence (campaign seed "
                         f"{report.seed}, program seed {finding.gen_seed})\n")
            handle.write(finding.minimized_source)
        summary.append(
            {
                "file": os.path.basename(path),
                "index": finding.index,
                "gen_seed": finding.gen_seed,
                "kinds": sorted({d.kind for d in finding.divergences}),
                "details": [d.describe() for d in finding.divergences[:5]],
            }
        )
    path = os.path.join(artifact_dir, "findings.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=1, sort_keys=True)
        handle.write("\n")
