"""``repro.fuzz`` — the differential tier-parity fuzzer.

A seeded random program generator for the mini-HPF subset
(:mod:`~repro.fuzz.generator`), a differential harness that runs each
program through all three execution tiers, ``tier="auto"``,
pool-vs-batched sweeps, and the DetermineMapping-vs-replication
baseline (:mod:`~repro.fuzz.harness`), a greedy structural shrinker
for failing programs (:mod:`~repro.fuzz.shrink`), and the campaign
runner behind ``repro fuzz`` and the CI ``fuzz-smoke`` job
(:mod:`~repro.fuzz.runner`).

>>> from repro.fuzz import generate, check_program
>>> program = generate(seed=7)
>>> check_program(program, procs_list=(1, 3))
[]
"""

from .generator import GenConfig, generate
from .grammar import DistPlan, FuzzLoop, FuzzNest, FuzzProgram, FuzzStmt
from .harness import (
    Divergence,
    check_mapping,
    check_program,
    check_sequential,
    check_sweep,
    check_tiers,
)
from .runner import Finding, FuzzReport, run_campaign
from .shrink import shrink

__all__ = [
    "Divergence",
    "DistPlan",
    "Finding",
    "FuzzLoop",
    "FuzzNest",
    "FuzzProgram",
    "FuzzReport",
    "FuzzStmt",
    "GenConfig",
    "check_mapping",
    "check_program",
    "check_sequential",
    "check_sweep",
    "check_tiers",
    "generate",
    "run_campaign",
    "shrink",
]
