"""The differential tier-parity harness.

:func:`check_program` runs one program through every cross-checking
lens the repo has and returns the list of :class:`Divergence` records
it found (empty = the program survives):

* **tier parity** — ``interpreted`` / ``lowered`` / ``slab`` /
  ``tier="auto"`` runs must produce byte-identical clocks, traffic
  stats, canonical stats, per-rank memories, and gathered arrays;
* **sequential validation** — the gathered arrays must match the
  sequential interpreter (``allclose``: parallel reductions combine in
  tree order, so bitwise equality is not expected);
* **DetermineMapping differential** — the paper's ``selected``
  strategy must compute the same values as the replicate-everything
  baseline (mapping decisions move data, never change it);
* **sweep parity** — pool-vs-batched ``run_sweep`` over a small
  procs × machine grid must stitch byte-identical records.

Divergence kinds form the triage taxonomy (see ARCHITECTURE.md):
``compile-crash``, ``tier-crash``, ``tier-error-mismatch``, ``clocks``,
``stats``, ``canonical``, ``memory``, ``gather``, ``sequential``,
``mapping``, ``sweep``, ``invalid`` (the program itself is rejected
everywhere — a generator bug, not a tier bug).
"""

from __future__ import annotations

import dataclasses
import json
import traceback
from dataclasses import dataclass

from ..core.driver import CompilerOptions, compile_source
from ..model import SP2

#: forced-tier simulate() kwargs, plus the TierPlan-driven auto mode
TIER_KWARGS = {
    "interpreted": dict(fast_path=False),
    "lowered": dict(fast_path=True, slab_path=False),
    "slab": dict(fast_path=True, slab_path=True),
    "auto": dict(tier="auto"),
}

#: the small machine grid of the sweep differential
SWEEP_MACHINES = (
    SP2,
    dataclasses.replace(SP2, name="fuzz-fast", alpha=5e-6, beta=1.0 / 300e6),
    dataclasses.replace(SP2, name="fuzz-slow", flop_time=1.0 / 5e6),
)


@dataclass
class Divergence:
    """One observed disagreement, with enough provenance to reproduce."""

    kind: str
    detail: str
    procs: int | None = None
    tier: str | None = None
    seed: int | None = None
    source: str | None = None

    def describe(self) -> str:
        where = f" procs={self.procs}" if self.procs is not None else ""
        who = f" tier={self.tier}" if self.tier else ""
        return f"[{self.kind}]{where}{who}: {self.detail}"


# ---------------------------------------------------------------------------
# Inputs and payloads
# ---------------------------------------------------------------------------


def make_inputs(source: str, seed: int) -> dict:
    """Deterministic random inputs, drawn in the *untransformed*
    procedure's symbol order exactly like ``Session.run`` (so the
    sequential reference and every tier see one dataset)."""
    import numpy as np

    from ..ir.build import parse_and_build

    proc = parse_and_build(source)
    rng = np.random.default_rng(seed)
    inputs = {}
    for symbol in proc.symbols.arrays():
        shape = tuple(symbol.extent(d) for d in range(symbol.rank))
        inputs[symbol.name] = rng.uniform(0.5, 1.5, shape)
    return inputs


def tier_payload(sim) -> dict:
    """Everything a tier's run must agree on, in comparable form:
    canonical stats verbatim, per-rank memory and gathered-array
    contents as hex digests (byte-level, order-stable).

    Memory digests cover *every declared array on every rank*, indexing
    ``memory.arrays[name]`` so lazily-deferred storage materializes to
    its semantic state (initial values + ownership validity) first.
    Tiers legitimately differ in *when* they allocate per-rank copies —
    the walker touches lazily, the fast path may materialize during
    setup — but the materialized contents must be byte-identical, and
    comparing the forced total state is strictly stronger than
    comparing whichever keys each tier happened to touch."""
    import hashlib

    def digest(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()[:16]

    names = sorted(s.name for s in sim.compiled.proc.symbols.arrays())
    memories = []
    for memory in sim.memories:
        record = {}
        for name in names:
            record[name] = (
                digest(memory.arrays[name].tobytes()),
                digest(memory.valid[name].tobytes()),
            )
        record["scalars"] = dict(sorted(memory.scalars.items()))
        record["scalar_valid"] = dict(sorted(memory.scalar_valid.items()))
        memories.append(record)
    gathers = {
        name: digest(sim.gather(name).tobytes()) for name in names
    }
    canonical = sim.canonical_stats()
    # 'tiers' records which engine took each nest — definitionally
    # different across forced tiers, so it is not a parity surface
    canonical.pop("tiers", None)
    return {
        "canonical": canonical,
        "memories": memories,
        "gathers": gathers,
    }


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, default=repr)


def _trim(exc: BaseException) -> str:
    lines = traceback.format_exception_only(type(exc), exc)
    return lines[-1].strip()


# ---------------------------------------------------------------------------
# Lenses
# ---------------------------------------------------------------------------


def check_tiers(
    source: str,
    procs: int,
    *,
    seed: int = 0,
    options: CompilerOptions | None = None,
) -> tuple[list[Divergence], dict | None]:
    """Tier parity at one processor count.  Returns the divergences
    plus the interpreted tier's payload (the reference for corpus
    pinning), or None when nothing ran."""
    from ..machine.simulator import simulate

    options = options or CompilerOptions(num_procs=procs)
    try:
        compiled = compile_source(source, options)
    except Exception as exc:  # noqa: BLE001 — triage sorts it out
        return (
            [
                Divergence(
                    kind="compile-crash",
                    detail=_trim(exc),
                    procs=procs,
                    source=source,
                )
            ],
            None,
        )
    inputs = make_inputs(source, seed)

    payloads: dict[str, dict] = {}
    errors: dict[str, str] = {}
    for tier, kwargs in TIER_KWARGS.items():
        try:
            sim = simulate(compiled, dict(inputs), **kwargs)
            payloads[tier] = tier_payload(sim)
        except Exception as exc:  # noqa: BLE001 — compared below
            errors[tier] = _trim(exc)

    divergences: list[Divergence] = []
    if errors and len(errors) == len(TIER_KWARGS):
        # every engine rejects it identically: the program is invalid
        kinds = set(errors.values())
        kind = "invalid" if len(kinds) == 1 else "tier-error-mismatch"
        return (
            [
                Divergence(
                    kind=kind,
                    detail="; ".join(
                        f"{t}: {e}" for t, e in sorted(errors.items())
                    ),
                    procs=procs,
                    source=source,
                )
            ],
            None,
        )
    for tier, error in sorted(errors.items()):
        divergences.append(
            Divergence(
                kind="tier-crash",
                detail=error,
                procs=procs,
                tier=tier,
                source=source,
            )
        )
    reference = payloads.get("interpreted")
    if reference is not None:
        want = _canonical(reference)
        for tier in ("lowered", "slab", "auto"):
            got = payloads.get(tier)
            if got is None or _canonical(got) == want:
                continue
            divergences.append(
                Divergence(
                    kind=_first_difference(reference, got),
                    detail=_diff_detail(reference, got),
                    procs=procs,
                    tier=tier,
                    source=source,
                )
            )
    return divergences, reference


def _first_difference(want: dict, got: dict) -> str:
    if _canonical(want["canonical"]["clocks"]) != _canonical(
        got["canonical"]["clocks"]
    ):
        return "clocks"
    if _canonical(want["canonical"]["stats"]) != _canonical(
        got["canonical"]["stats"]
    ):
        return "stats"
    if _canonical(want["canonical"]) != _canonical(got["canonical"]):
        return "canonical"
    if _canonical(want["memories"]) != _canonical(got["memories"]):
        return "memory"
    if _canonical(want["gathers"]) != _canonical(got["gathers"]):
        return "gather"
    return "canonical"


def _diff_detail(want: dict, got: dict, limit: int = 3) -> str:
    """The first few differing leaves, dotted-path → (want, got)."""

    def walk(a, b, path, out):
        if len(out) >= limit:
            return
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                walk(a.get(key), b.get(key), f"{path}.{key}", out)
            return
        if isinstance(a, list) and isinstance(b, list) and len(a) == len(b):
            for idx, (x, y) in enumerate(zip(a, b)):
                walk(x, y, f"{path}[{idx}]", out)
            return
        if a != b:
            out.append(f"{path}: {a!r} != {b!r}")

    out: list[str] = []
    walk(want, got, "", out)
    return "; ".join(out) if out else "payloads differ"


def check_sequential(
    source: str, procs: int, *, seed: int = 0
) -> list[Divergence]:
    """The whole parallel machinery against the sequential
    interpreter: gathered arrays must match within tolerance."""
    import numpy as np

    from ..codegen.seq import run_sequential
    from ..ir.build import parse_and_build
    from ..machine.simulator import simulate

    try:
        compiled = compile_source(source, CompilerOptions(num_procs=procs))
        inputs = make_inputs(source, seed)
        sim = simulate(compiled, dict(inputs), tier="auto")
        sequential = run_sequential(parse_and_build(source), inputs)
    except Exception as exc:  # noqa: BLE001 — tier lens already reported
        return [
            Divergence(
                kind="tier-crash",
                detail=_trim(exc),
                procs=procs,
                tier="sequential-check",
                source=source,
            )
        ]
    out: list[Divergence] = []
    for symbol in compiled.proc.symbols.arrays():
        name = symbol.name
        if not np.allclose(sim.gather(name), sequential.get_array(name)):
            out.append(
                Divergence(
                    kind="sequential",
                    detail=f"array {name} deviates from the sequential run",
                    procs=procs,
                    source=source,
                )
            )
    return out


def check_mapping(
    source: str, procs: int, *, seed: int = 0
) -> list[Divergence]:
    """DetermineMapping differential: the selected-strategy run must
    compute the same values as the replicate-everything baseline."""
    import numpy as np

    from ..machine.simulator import simulate

    runs = {}
    for strategy in ("selected", "replication"):
        try:
            compiled = compile_source(
                source,
                CompilerOptions(num_procs=procs, strategy=strategy),
            )
            sim = simulate(compiled, make_inputs(source, seed), tier="auto")
        except Exception as exc:  # noqa: BLE001
            return [
                Divergence(
                    kind="mapping",
                    detail=f"strategy={strategy} failed: {_trim(exc)}",
                    procs=procs,
                    source=source,
                )
            ]
        runs[strategy] = sim
    selected, baseline = runs["selected"], runs["replication"]
    out: list[Divergence] = []
    for symbol in baseline.compiled.proc.symbols.arrays():
        name = symbol.name
        if not np.allclose(selected.gather(name), baseline.gather(name)):
            out.append(
                Divergence(
                    kind="mapping",
                    detail=(
                        f"array {name}: selected mapping deviates from "
                        "the replicate-everything baseline"
                    ),
                    procs=procs,
                    source=source,
                )
            )
    return out


def check_sweep(
    emit,
    *,
    name: str = "fuzz",
    procs: tuple[int, ...] = (1, 2, 4),
    seed: int = 0,
) -> list[Divergence]:
    """Pool-vs-batched sweep parity over a procs × machine grid.
    ``emit`` is a source builder callable (``emit(procs) -> str``) so
    the procs axis re-emits its PROCESSORS directive per point."""
    from ..sweep import SweepSpec, run_sweep
    from ..sweep.spec import SweepResult

    spec = SweepSpec(
        programs={name: emit},
        procs=procs,
        axes={"machine": SWEEP_MACHINES},
        mode="simulate",
        seed=seed,
    )

    def record(result: SweepResult) -> dict:
        return {
            "label": result.label,
            "ok": result.ok,
            "elapsed": result.elapsed,
            "messages": result.messages,
            "fetches": result.fetches,
            "canonical": result.canonical_stats,
        }

    try:
        pool = run_sweep(spec, workers=0, mode="pool")
        batched = run_sweep(spec, workers=0, mode="batched")
    except Exception as exc:  # noqa: BLE001
        return [
            Divergence(kind="sweep", detail=_trim(exc), source=emit(None))
        ]
    out: list[Divergence] = []
    for p_result, b_result in zip(pool, batched):
        if _canonical(record(p_result)) != _canonical(record(b_result)):
            out.append(
                Divergence(
                    kind="sweep",
                    detail=_diff_detail(record(p_result), record(b_result)),
                    procs=p_result.procs,
                    source=emit(p_result.procs),
                )
            )
    return out


# ---------------------------------------------------------------------------
# The full battery
# ---------------------------------------------------------------------------


def check_program(
    program,
    *,
    procs_list: tuple[int, ...] = (1, 3, 4),
    seed: int = 0,
    sweep: bool = False,
    mapping: bool = True,
    sequential: bool = True,
) -> list[Divergence]:
    """Run every lens over ``program`` (a
    :class:`~repro.fuzz.grammar.FuzzProgram` or raw source text).
    ``sweep`` adds the (slower) pool-vs-batched differential."""
    emit = program.emit if hasattr(program, "emit") else None
    gen_seed = getattr(program, "seed", None)
    divergences: list[Divergence] = []
    for procs in procs_list:
        source = emit(procs) if emit is not None else program
        tier_div, _reference = check_tiers(source, procs, seed=seed)
        divergences.extend(tier_div)
        if any(d.kind in ("compile-crash", "invalid") for d in tier_div):
            break  # nothing else can run; one record is enough
        if sequential:
            divergences.extend(check_sequential(source, procs, seed=seed))
        if mapping:
            divergences.extend(check_mapping(source, procs, seed=seed))
    if sweep and emit is not None and not divergences:
        divergences.extend(check_sweep(emit, seed=seed))
    for divergence in divergences:
        divergence.seed = gen_seed
    return divergences
