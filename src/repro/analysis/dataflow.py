"""Classic iterative dataflow analyses on the statement-level CFG.

* :class:`LivenessInfo` — backward may-liveness over scalar symbols and
  (coarsely, whole-array) over array symbols. Used to decide whether a
  value is live outside a loop ("privatizable and not live outside the
  current loop", paper Section 2.2) and to validate `NEW` clauses.
* :func:`upward_exposed_uses` — per-loop upward-exposed scalar reads,
  the classical test that every read is preceded by a same-iteration
  write (array privatization legality support).
"""

from __future__ import annotations

from ..ir.cfg import CFG, CFGNode
from ..ir.expr import ArrayElemRef, ScalarRef
from ..ir.stmt import LoopStmt


class LivenessInfo:
    """live_in / live_out sets of symbol names per CFG node."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.live_in: dict[int, frozenset[str]] = {}
        self.live_out: dict[int, frozenset[str]] = {}
        self._compute()

    @staticmethod
    def _node_uses(node: CFGNode) -> set[str]:
        if node.stmt is None:
            return set()
        names = set()
        for ref in node.stmt.uses():
            names.add(ref.symbol.name)
        return names

    @staticmethod
    def _node_defs(node: CFGNode) -> set[str]:
        """Definitely-assigned symbols. An array element store is *not*
        a kill of the whole array."""
        if node.stmt is None:
            return set()
        names = set()
        for ref in node.stmt.defs():
            if isinstance(ref, ScalarRef):
                names.add(ref.symbol.name)
        return names

    def _compute(self) -> None:
        order = self.cfg.reverse_postorder()
        use = {n.index: frozenset(self._node_uses(n)) for n in order}
        defs = {n.index: frozenset(self._node_defs(n)) for n in order}
        live_in = {n.index: frozenset() for n in order}
        live_out = {n.index: frozenset() for n in order}
        changed = True
        while changed:
            changed = False
            for node in reversed(order):  # postorder: good for backward flow
                out = frozenset().union(
                    *(live_in.get(s.index, frozenset()) for s in node.succs)
                ) if node.succs else frozenset()
                new_in = use[node.index] | (out - defs[node.index])
                if out != live_out[node.index] or new_in != live_in[node.index]:
                    live_out[node.index] = out
                    live_in[node.index] = new_in
                    changed = True
        self.live_in = live_in
        self.live_out = live_out

    # -- loop-level queries --------------------------------------------------

    def live_after_loop(self, loop: LoopStmt) -> frozenset[str]:
        """Symbols live on the loop's exit edge (header → follow)."""
        header = self.cfg.node_of(loop)
        body_nodes = {
            self.cfg.node_of(s).index for s in loop.walk() if s is not loop
        }
        live: set[str] = set()
        for succ in header.succs:
            if succ.index not in body_nodes:
                live |= self.live_in.get(succ.index, frozenset())
        return frozenset(live)

    def is_live_out_of_loop(self, name: str, loop: LoopStmt) -> bool:
        return name.upper() in self.live_after_loop(loop)


def upward_exposed_uses(cfg: CFG, loop: LoopStmt) -> set[str]:
    """Scalar symbols with a read in ``loop``'s body not preceded by a
    same-iteration write on some path from the loop header.

    Computed by a forward "definitely assigned since header" analysis
    restricted to the loop body.
    """
    header = cfg.node_of(loop)
    body_nodes = [cfg.node_of(s) for s in loop.walk() if s is not loop]
    body_set = {n.index for n in body_nodes}
    # assigned[n] = set of symbols definitely written on every path
    # from the header to the *entry* of n (within the body).
    universe: set[str] = set()
    for node in body_nodes:
        universe |= LivenessInfo._node_defs(node)
    assigned: dict[int, set[str] | None] = {n.index: None for n in body_nodes}
    exposed: set[str] = set()

    changed = True
    while changed:
        changed = False
        for node in body_nodes:
            ins: set[str] | None = None
            for pred in node.preds:
                if pred.index == header.index:
                    contrib: set[str] = set()
                elif pred.index in body_set:
                    prev = assigned[pred.index]
                    if prev is None:
                        continue
                    contrib = prev | LivenessInfo._node_defs(pred)
                else:
                    continue
                ins = contrib if ins is None else (ins & contrib)
            if ins is None:
                continue
            if assigned[node.index] != ins:
                assigned[node.index] = ins
                changed = True

    for node in body_nodes:
        ins = assigned[node.index]
        if ins is None:
            ins = set()
        for ref in LivenessInfo._node_uses(node):
            symbol = cfg.proc.symbols.lookup(ref)
            if symbol is None or not symbol.is_scalar or ref in ins:
                continue
            if symbol.is_loop_var:
                continue  # loop indices are defined by their headers
            exposed.add(ref)
    return exposed


def array_reads_in(loop: LoopStmt) -> set[str]:
    names: set[str] = set()
    for stmt in loop.walk():
        for ref in stmt.uses():
            if isinstance(ref, ArrayElemRef):
                names.add(ref.symbol.name)
    return names


def array_writes_in(loop: LoopStmt) -> set[str]:
    names: set[str] = set()
    for stmt in loop.walk():
        for ref in stmt.defs():
            if isinstance(ref, ArrayElemRef):
                names.add(ref.symbol.name)
    return names


def compute_liveness(cfg: CFG) -> LivenessInfo:
    return LivenessInfo(cfg)
