"""Dominator tree and dominance frontiers.

Implementation of Cooper, Harvey & Kennedy, "A Simple, Fast Dominance
Algorithm", operating on the statement-level CFG. Consumed by the SSA
construction pass (paper Section 2.2 requires SSA form: "...follows an
earlier program analysis phase which constructs the static single
assignment (SSA) representation").
"""

from __future__ import annotations

from ..ir.cfg import CFG, CFGNode


class DominatorInfo:
    """Immediate dominators, dominator-tree children, and dominance
    frontiers for all nodes reachable from the CFG entry."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.rpo = cfg.reverse_postorder()
        self._rpo_index = {node.index: k for k, node in enumerate(self.rpo)}
        self.idom: dict[int, CFGNode] = {}
        self._compute_idoms()
        self.children: dict[int, list[CFGNode]] = {node.index: [] for node in self.rpo}
        for node in self.rpo:
            if node is not cfg.entry:
                self.children[self.idom[node.index].index].append(node)
        self.frontier: dict[int, set[int]] = {node.index: set() for node in self.rpo}
        self._compute_frontiers()

    # -- idoms -----------------------------------------------------------------

    def _compute_idoms(self) -> None:
        entry = self.cfg.entry
        self.idom[entry.index] = entry
        changed = True
        while changed:
            changed = False
            for node in self.rpo:
                if node is entry:
                    continue
                processed_preds = [
                    p
                    for p in node.preds
                    if p.index in self.idom and p.index in self._rpo_index
                ]
                if not processed_preds:
                    continue
                new_idom = processed_preds[0]
                for pred in processed_preds[1:]:
                    new_idom = self._intersect(pred, new_idom)
                if self.idom.get(node.index) is not new_idom:
                    self.idom[node.index] = new_idom
                    changed = True

    def _intersect(self, a: CFGNode, b: CFGNode) -> CFGNode:
        while a.index != b.index:
            while self._rpo_index[a.index] > self._rpo_index[b.index]:
                a = self.idom[a.index]
            while self._rpo_index[b.index] > self._rpo_index[a.index]:
                b = self.idom[b.index]
        return a

    # -- frontiers --------------------------------------------------------------

    def _compute_frontiers(self) -> None:
        for node in self.rpo:
            if len(node.preds) < 2:
                continue
            for pred in node.preds:
                if pred.index not in self.idom:
                    continue  # unreachable predecessor
                runner = pred
                while runner.index != self.idom[node.index].index:
                    self.frontier[runner.index].add(node.index)
                    runner = self.idom[runner.index]

    # -- queries ---------------------------------------------------------------------

    def dominates(self, a: CFGNode, b: CFGNode) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        node = b
        while True:
            if node.index == a.index:
                return True
            parent = self.idom.get(node.index)
            if parent is None or parent.index == node.index:
                return node.index == a.index
            node = parent

    def strictly_dominates(self, a: CFGNode, b: CFGNode) -> bool:
        return a.index != b.index and self.dominates(a, b)

    def iterated_frontier(self, nodes: list[CFGNode]) -> set[int]:
        """Iterated dominance frontier of a node set (phi placement)."""
        result: set[int] = set()
        work = [n.index for n in nodes if n.index in self.frontier]
        on_work = set(work)
        while work:
            index = work.pop()
            for f in self.frontier.get(index, ()):
                if f not in result:
                    result.add(f)
                    if f not in on_work:
                        on_work.add(f)
                        work.append(f)
        return result


def compute_dominance(cfg: CFG) -> DominatorInfo:
    return DominatorInfo(cfg)
