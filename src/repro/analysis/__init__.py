"""Program analyses: dominance, pruned SSA, liveness, constant
propagation, induction variables, reductions, array dependence, and
privatizability."""

from .array_sections import (
    SectionDim,
    auto_privatizable,
    auto_privatizable_arrays,
    ref_section,
)
from .constprop import ConstPropInfo, propagate_constants
from .dataflow import (
    LivenessInfo,
    array_reads_in,
    array_writes_in,
    compute_liveness,
    upward_exposed_uses,
)
from .dependence import (
    Dependence,
    array_dependences,
    array_written_in,
    read_may_see_loop_write,
    test_dependence,
)
from .dominance import DominatorInfo, compute_dominance
from .induction import (
    InductionVar,
    find_induction_vars,
    substitute_induction_vars,
)
from .privatizable import PrivatizabilityInfo
from .reductions import Reduction, find_reductions, reduction_for_def
from .ssa import SSADef, SSAInfo, build_ssa

__all__ = [
    "SectionDim",
    "auto_privatizable",
    "auto_privatizable_arrays",
    "ref_section",
    "ConstPropInfo",
    "propagate_constants",
    "LivenessInfo",
    "array_reads_in",
    "array_writes_in",
    "compute_liveness",
    "upward_exposed_uses",
    "Dependence",
    "array_dependences",
    "array_written_in",
    "read_may_see_loop_write",
    "test_dependence",
    "DominatorInfo",
    "compute_dominance",
    "InductionVar",
    "find_induction_vars",
    "substitute_induction_vars",
    "PrivatizabilityInfo",
    "Reduction",
    "find_reductions",
    "reduction_for_def",
    "SSADef",
    "SSAInfo",
    "build_ssa",
]
