"""Array data-dependence testing on affine subscripts.

Used for:

* detecting the memory-based (anti/output) dependences that
  privatization eliminates (paper Section 3.1),
* deciding communication placement: a read of an array that is written
  inside the same loop cannot have its communication vectorized out of
  that loop (see :mod:`repro.comm.placement`).

Tests implemented: ZIV, strong/weak SIV with distance extraction, and a
GCD feasibility test for MIV subscripts (conservatively assuming
dependence when feasible). This is the classical portfolio of a 1990s
HPF compiler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ir.expr import ArrayElemRef, AffineForm, affine_form
from ..ir.program import Procedure
from ..ir.stmt import LoopStmt, Stmt
from ..ir.symbols import Symbol


@dataclass(frozen=True)
class Dependence:
    """A (possible) data dependence between two array references."""

    array: Symbol
    source: ArrayElemRef  # the write
    sink: ArrayElemRef
    kind: str  # "flow" | "anti" | "output"
    #: distance per common loop (outermost first); None entry = unknown
    distances: tuple[int | None, ...]
    loop_carried: bool

    @property
    def loop_independent(self) -> bool:
        return not self.loop_carried


def _trip_count(loop: LoopStmt) -> int | None:
    """Constant trip count if bounds are constant."""
    low = affine_form(loop.low)
    high = affine_form(loop.high)
    step = affine_form(loop.step) if loop.step is not None else None
    if low is None or high is None or not low.is_constant or not high.is_constant:
        return None
    step_value = 1 if step is None else (step.const if step.is_constant else None)
    if step_value in (None, 0):
        return None
    count = (high.const - low.const + step_value) // step_value
    return max(count, 0)


def _bounds_of_loops(*stmts) -> dict[str, tuple[AffineForm | None, AffineForm | None]]:
    """Loop-variable bounds (as affine forms) for every loop enclosing
    any of the given statements."""
    bounds: dict[str, tuple[AffineForm | None, AffineForm | None]] = {}
    for stmt in stmts:
        for loop in stmt.loops_enclosing():
            step_ok = loop.step is None or (
                (sf := affine_form(loop.step)) is not None
                and sf.is_constant
                and sf.const > 0
            )
            if not step_ok:
                bounds[loop.var.name] = (None, None)
                continue
            bounds[loop.var.name] = (affine_form(loop.low), affine_form(loop.high))
    return bounds


def _form_sub(f1: AffineForm, f2: AffineForm) -> AffineForm:
    coeffs: dict[str, tuple] = {}
    for s, c in f1.coeffs:
        coeffs[s.name] = (s, c)
    for s, c in f2.coeffs:
        prev = coeffs.get(s.name, (s, 0))[1]
        coeffs[s.name] = (s, prev - c)
    items = tuple((s, c) for _, (s, c) in sorted(coeffs.items()) if c != 0)
    return AffineForm(coeffs=items, const=f1.const - f2.const)


def _extreme_of_form(
    form: AffineForm,
    bounds: dict[str, tuple[AffineForm | None, AffineForm | None]],
    want_max: bool,
    depth: int = 0,
) -> int | None:
    """Banerjee-style bound: the max (or min) of an affine form over the
    loop ranges, by substituting each loop variable with the bound that
    extremizes its term. Returns None when not derivable."""
    if depth > 8:
        return None
    if form.is_constant:
        return form.const
    for symbol, coeff in form.coeffs:
        lo_hi = bounds.get(symbol.name)
        if lo_hi is None:
            return None
        lo, hi = lo_hi
        pick = hi if (coeff > 0) == want_max else lo
        if pick is None:
            return None
        # substitute: form' = form - coeff*symbol + coeff*pick
        rest = AffineForm(
            coeffs=tuple((s, c) for s, c in form.coeffs if s.name != symbol.name),
            const=form.const,
        )
        scaled = AffineForm(
            coeffs=tuple((s, c * coeff) for s, c in pick.coeffs),
            const=pick.const * coeff,
        )
        merged: dict[str, tuple] = {}
        for s, c in rest.coeffs + scaled.coeffs:
            prev = merged.get(s.name, (s, 0))[1]
            merged[s.name] = (s, prev + c)
        combined = AffineForm(
            coeffs=tuple(
                (s, c) for _, (s, c) in sorted(merged.items()) if c != 0
            ),
            const=rest.const + scaled.const,
        )
        return _extreme_of_form(combined, bounds, want_max, depth + 1)
    return None


def _banerjee_independent(
    f1: AffineForm,
    f2: AffineForm,
    bounds: dict[str, tuple[AffineForm | None, AffineForm | None]],
) -> bool:
    """True when f1 - f2 is provably always > 0 or always < 0 over the
    loop ranges — the subscripts can never be equal."""
    diff = _form_sub(f1, f2)
    low = _extreme_of_form(diff, bounds, want_max=False)
    if low is not None and low > 0:
        return True
    high = _extreme_of_form(diff, bounds, want_max=True)
    return high is not None and high < 0


def _subscript_pair_test(
    f1: AffineForm | None,
    f2: AffineForm | None,
    common: list[LoopStmt],
    bounds: dict[str, tuple[AffineForm | None, AffineForm | None]] | None = None,
) -> tuple[bool, dict[str, int | None]]:
    """Test one subscript dimension; returns (feasible, distances) where
    distances maps loop-var name -> dependence distance (i2 - i1) when
    determinable."""
    if f1 is None or f2 is None:
        return True, {}  # non-affine: assume dependence, unknown distance
    if bounds is not None:
        # Bounds-based disproof is only sound here for the
        # *loop-independent* (same-iteration) interpretation, which is
        # what shared symbols encode; the loop-carried variant with
        # per-side renaming lives in may_depend_within_loop().
        common_names = {l.var.name for l in common}
        if not any(s.name in common_names for s in (*f1.symbols, *f2.symbols)):
            if _banerjee_independent(f1, f2, bounds):
                return False, {}
    common_vars = {l.var.name for l in common}
    # Difference form: f2 - f1 = sum (a2 - a1)*i_common terms only when
    # coefficients match variable-wise; otherwise fall back to GCD.
    vars1 = {s.name for s in f1.symbols}
    vars2 = {s.name for s in f2.symbols}
    all_vars = vars1 | vars2
    if not all_vars:
        # ZIV
        return f1.const == f2.const, {}
    if all_vars <= common_vars:
        coeff_pairs = {}
        for name in all_vars:
            c1 = next((c for s, c in f1.coeffs if s.name == name), 0)
            c2 = next((c for s, c in f2.coeffs if s.name == name), 0)
            coeff_pairs[name] = (c1, c2)
        if all(c1 == c2 for c1, c2 in coeff_pairs.values()):
            # Strong SIV/MIV with equal coefficients:
            # sum c*(i2 - i1) = const1 - const2.
            diff = f1.const - f2.const
            nonzero = [(n, c1) for n, (c1, _) in coeff_pairs.items() if c1 != 0]
            if len(nonzero) == 1:
                name, coeff = nonzero[0]
                if diff % coeff != 0:
                    return False, {}
                return True, {name: diff // coeff}
            if not nonzero:
                return diff == 0, {}
            gcd = math.gcd(*(abs(c) for _, c in nonzero))
            if diff % gcd != 0:
                return False, {}
            return True, {}
        # Unequal coefficients: GCD feasibility on all coefficients.
        coeffs = []
        for name, (c1, c2) in coeff_pairs.items():
            coeffs.extend([c1, -c2])
        coeffs = [c for c in coeffs if c != 0]
        if not coeffs:
            return f1.const == f2.const, {}
        gcd = math.gcd(*(abs(c) for c in coeffs))
        if (f2.const - f1.const) % gcd != 0:
            return False, {}
        return True, {}
    # Variables outside the common nest (inner loops, free symbols):
    # conservative.
    return True, {}


def test_dependence(
    proc: Procedure,
    write: ArrayElemRef,
    other: ArrayElemRef,
    kind: str,
) -> Dependence | None:
    """Dependence from ``write`` to ``other`` (same array), or None when
    disproven. ``kind`` names the dependence type from the caller's
    perspective (flow if other is a read after write, etc.)."""
    if write.symbol.name != other.symbol.name:
        return None
    stmt1 = proc.stmt_of_ref(write)
    stmt2 = proc.stmt_of_ref(other)
    common = proc.common_loops(stmt1, stmt2)
    bounds = _bounds_of_loops(stmt1, stmt2)
    distances: dict[str, int | None] = {l.var.name: None for l in common}
    for sub1, sub2 in zip(write.subscripts, other.subscripts):
        feasible, dim_distances = _subscript_pair_test(
            affine_form(sub1), affine_form(sub2), common, bounds
        )
        if not feasible:
            return None
        for name, dist in dim_distances.items():
            prev = distances.get(name)
            if prev is None:
                distances[name] = dist
            elif dist is not None and prev != dist:
                return None  # inconsistent distances: no dependence
    # Check distances against trip counts.
    dist_vector: list[int | None] = []
    carried = False
    for loop in common:
        dist = distances.get(loop.var.name)
        if dist is not None:
            trip = _trip_count(loop)
            if trip is not None and abs(dist) >= trip:
                return None
            if dist != 0:
                carried = True
        else:
            carried = True  # unknown distance: may be carried
        dist_vector.append(dist)
    return Dependence(
        array=write.symbol,
        source=write,
        sink=other,
        kind=kind,
        distances=tuple(dist_vector),
        loop_carried=carried,
    )


def _writes_and_reads(proc: Procedure, loop: LoopStmt | None = None):
    """(writes, reads) array references within ``loop`` (or the whole
    procedure)."""
    writes: list[ArrayElemRef] = []
    reads: list[ArrayElemRef] = []
    stmts = loop.walk() if loop is not None else proc.all_stmts()
    for stmt in stmts:
        for ref in stmt.defs():
            if isinstance(ref, ArrayElemRef):
                writes.append(ref)
        for ref in stmt.uses():
            if isinstance(ref, ArrayElemRef):
                reads.append(ref)
    return writes, reads


def array_dependences(proc: Procedure, loop: LoopStmt | None = None) -> list[Dependence]:
    """All (possible) array dependences within ``loop``."""
    writes, reads = _writes_and_reads(proc, loop)
    result: list[Dependence] = []
    for w in writes:
        for r in reads:
            if r.symbol.name != w.symbol.name:
                continue
            dep = test_dependence(proc, w, r, "flow")
            if dep is not None:
                result.append(dep)
        for w2 in writes:
            if w2.symbol.name != w.symbol.name:
                continue
            dep = test_dependence(proc, w, w2, "output")
            if dep is None:
                continue
            if w2 is w and not dep.loop_carried:
                continue  # a write trivially "overlapping" itself
            result.append(dep)
    return result


def array_written_in(proc: Procedure, array: Symbol, loop: LoopStmt) -> bool:
    """Is any element of ``array`` written inside ``loop``?"""
    for stmt in loop.walk():
        for ref in stmt.defs():
            if isinstance(ref, ArrayElemRef) and ref.symbol.name == array.name:
                return True
    return False


def _rename_form(
    form: AffineForm, deep_names: set[str], suffix: str
) -> AffineForm:
    """Rename variables in ``deep_names`` by appending ``suffix`` —
    fresh Symbol clones so the two sides of a carried-dependence test
    iterate independently."""
    from ..ir.symbols import Symbol as _Symbol, SymbolKind as _Kind

    coeffs = []
    for s, c in form.coeffs:
        if s.name in deep_names:
            coeffs.append(
                (_Symbol(name=s.name + suffix, kind=_Kind.SCALAR, type=s.type), c)
            )
        else:
            coeffs.append((s, c))
    return AffineForm(coeffs=tuple(coeffs), const=form.const)


def _side_bounds(
    stmt, loop: LoopStmt, suffix: str
) -> dict[str, tuple[AffineForm | None, AffineForm | None]]:
    """Bounds for one side of a carried test: loops at or inside
    ``loop`` get suffixed names; loops outside stay shared."""
    deep_names = {
        l.var.name for l in stmt.loops_enclosing() if l.level >= loop.level
    }
    bounds: dict[str, tuple[AffineForm | None, AffineForm | None]] = {}
    for l in stmt.loops_enclosing():
        name = l.var.name + (suffix if l.var.name in deep_names else "")
        lo = affine_form(l.low)
        hi = affine_form(l.high)
        if lo is not None:
            lo = _rename_form(lo, deep_names, suffix)
        if hi is not None:
            hi = _rename_form(hi, deep_names, suffix)
        step_ok = l.step is None or (
            (sf := affine_form(l.step)) is not None
            and sf.is_constant
            and sf.const > 0
        )
        bounds[name] = (lo, hi) if step_ok else (None, None)
    return bounds


def may_depend_within_loop(
    proc: Procedure,
    write: ArrayElemRef,
    read: ArrayElemRef,
    loop: LoopStmt,
) -> bool:
    """Can a value written by ``write`` during some iteration of
    ``loop`` be observed by ``read`` (same or later iteration)?

    Variables of ``loop`` and deeper loops iterate *independently* on
    the two sides (renamed); variables of loops strictly enclosing
    ``loop`` are shared (same iteration). A dimension whose subscript
    difference is provably sign-definite over those ranges disproves
    the dependence.
    """
    if write.symbol.name != read.symbol.name:
        return False
    write_stmt = proc.stmt_of_ref(write)
    read_stmt = proc.stmt_of_ref(read)
    write_deep = {
        l.var.name for l in write_stmt.loops_enclosing() if l.level >= loop.level
    }
    read_deep = {
        l.var.name for l in read_stmt.loops_enclosing() if l.level >= loop.level
    }
    bounds = {}
    bounds.update(_side_bounds(write_stmt, loop, "%W"))
    bounds.update(_side_bounds(read_stmt, loop, "%R"))
    for sub_w, sub_r in zip(write.subscripts, read.subscripts):
        f_w = affine_form(sub_w)
        f_r = affine_form(sub_r)
        if f_w is None or f_r is None:
            continue  # unknown: cannot disprove via this dimension
        f_w = _rename_form(f_w, write_deep, "%W")
        f_r = _rename_form(f_r, read_deep, "%R")
        if _banerjee_independent(f_w, f_r, bounds):
            return False
    return True


def read_may_see_loop_write(
    proc: Procedure, read: ArrayElemRef, loop: LoopStmt
) -> bool:
    """Can ``read`` observe a value written inside ``loop``? If so,
    communication for ``read`` cannot be hoisted out of ``loop``.

    Disproven only when every write in the loop provably never overlaps
    the read (bounds-aware, with per-side iteration renaming).
    """
    for stmt in loop.walk():
        for ref in stmt.defs():
            if isinstance(ref, ArrayElemRef) and ref.symbol.name == read.symbol.name:
                if may_depend_within_loop(proc, ref, read, loop):
                    return True
    return False
