"""Induction-variable recognition and closed-form substitution.

Paper, Section 2.1: "Any scalar variable recognized as an induction
variable, such as m in Figure 1, should be privatized without
alignment. The phpf compiler replaces the rhs of that assignment
statement by the closed-form expression for the value of that induction
variable as a function of surrounding loop indices."

We recognize *basic* induction variables — a single unconditional
``s = s + c`` (or ``s = s - c``) update per loop iteration whose initial
value is a compile-time constant — and rewrite the update statement's
rhs to the closed form, e.g. ``m = m + 1`` with ``m = 2`` before a
``DO i = 2, n-1`` loop becomes ``m = i + 1``.

After rewriting, the caller must rebuild CFG/SSA (the pipeline driver in
:mod:`repro.core.driver` does this).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cfg import CFG
from ..ir.expr import BinOp, Const, Expr, ScalarRef, affine_form
from ..ir.program import Procedure
from ..ir.stmt import AssignStmt, IfStmt, LoopStmt, Stmt
from ..ir.symbols import ScalarType, Symbol
from .constprop import ConstPropInfo
from .ssa import SSAInfo


@dataclass
class InductionVar:
    """A recognized basic induction variable."""

    symbol: Symbol
    loop: LoopStmt
    update_stmt: AssignStmt
    init_value: int
    stride: int
    closed_form: Expr  # value right after the update, as f(loop indices)


def _is_unconditional_in(stmt: Stmt, loop: LoopStmt) -> bool:
    """True when ``stmt`` is in the *direct* body of ``loop`` (not nested
    in an inner loop or IF), hence executed exactly once per iteration."""
    return any(s is stmt for s in loop.body)


def _update_stride(stmt: AssignStmt, symbol: Symbol) -> int | None:
    """If ``stmt`` is ``symbol = symbol ± c``, return the signed stride."""
    form = affine_form(stmt.rhs)
    if form is None:
        return None
    if form.coeff(symbol) != 1:
        return None
    if len(form.coeffs) != 1:
        return None  # only 'symbol + const' qualifies as a *basic* IV
    return form.const


def _loop_bounds_const(loop: LoopStmt, const: ConstPropInfo) -> tuple[int | None, int]:
    """(low, step) of the loop when known; step defaults to 1."""
    low = const.eval_expr(loop.low)
    if not isinstance(low, int):
        low_form = affine_form(loop.low)
        low = low_form.const if low_form is not None and low_form.is_constant else None
    step = 1
    if loop.step is not None:
        step_value = const.eval_expr(loop.step)
        if not isinstance(step_value, int):
            return None, 1
        step = step_value
    return low, step


def find_induction_vars(
    proc: Procedure, ssa: SSAInfo, const: ConstPropInfo
) -> list[InductionVar]:
    """Find all basic induction variables in the procedure."""
    result: list[InductionVar] = []
    for loop in proc.loops():
        # Group real defs inside the direct body per symbol.
        for stmt in loop.body:
            if not isinstance(stmt, AssignStmt) or not isinstance(stmt.lhs, ScalarRef):
                continue
            symbol = stmt.lhs.symbol
            if symbol.type is not ScalarType.INT or symbol.is_loop_var:
                continue
            stride = _update_stride(stmt, symbol)
            if stride is None or stride == 0:
                continue
            # The symbol must have no other def anywhere inside the loop.
            defs_in_loop = [
                d
                for d in ssa.real_defs(symbol.name)
                if d.stmt is not None and proc.encloses(loop, d.stmt)
            ]
            if len(defs_in_loop) != 1:
                continue
            # The rhs use must see the value from the previous iteration
            # merged with the initial value (the header phi).
            rhs_uses = [
                r
                for r in stmt.rhs.refs()
                if isinstance(r, ScalarRef) and r.symbol.name == symbol.name
            ]
            if len(rhs_uses) != 1:
                continue
            seen_def = ssa.defs[ssa.use_def[rhs_uses[0].ref_id]]
            if seen_def.kind != "phi":
                continue
            reaching = ssa.reaching_real_defs(rhs_uses[0])
            outside = [d for d in reaching if d.stmt is None or not proc.encloses(loop, d.stmt)]
            inside = [d for d in reaching if d.stmt is not None and proc.encloses(loop, d.stmt)]
            if len(inside) != 1 or inside[0].stmt is not stmt:
                continue
            # Initial value must be a known integer constant.
            init_values = {const.const_of_def(d) for d in outside}
            if len(init_values) != 1:
                continue
            init = init_values.pop()
            if not isinstance(init, int):
                continue
            if not _is_unconditional_in(stmt, loop):
                continue
            low, step = _loop_bounds_const(loop, const)
            if low is None or step == 0:
                continue
            closed = _closed_form(loop, init, stride, low, step)
            if closed is None:
                continue
            result.append(
                InductionVar(
                    symbol=symbol,
                    loop=loop,
                    update_stmt=stmt,
                    init_value=init,
                    stride=stride,
                    closed_form=closed,
                )
            )
    return result


def _closed_form(
    loop: LoopStmt, init: int, stride: int, low: int, step: int
) -> Expr | None:
    """Closed-form value immediately after the update in the iteration
    with index value ``i``: init + stride * ((i - low)/step + 1)."""
    if step == 0:
        return None
    if stride % 1:  # pragma: no cover - stride is int by construction
        return None
    index = ScalarRef(symbol=loop.var)
    if step == 1:
        # init + stride*(i - low + 1)  ==  stride*i + (init + stride*(1-low))
        const_part = init + stride * (1 - low)
        return _affine_expr(stride, index, const_part)
    # General step: stride must stay integral per iteration; build
    # init + stride * ((i - low + step) / step). Exactness of the
    # division holds for every actual index value i = low + k*step.
    diff = BinOp(op="-", left=index, right=Const(value=low))
    plus = BinOp(op="+", left=diff, right=Const(value=step))
    count = BinOp(op="/", left=plus, right=Const(value=step))
    scaled = BinOp(op="*", left=Const(value=stride), right=count)
    return BinOp(op="+", left=Const(value=init), right=scaled)


def _affine_expr(coeff: int, index: ScalarRef, const: int) -> Expr:
    """Build a tidy ``coeff*index + const`` expression."""
    if coeff == 0:
        return Const(value=const)
    term: Expr = index if coeff == 1 else BinOp(
        op="*", left=Const(value=coeff), right=index
    )
    if const == 0:
        return term
    if const > 0:
        return BinOp(op="+", left=term, right=Const(value=const))
    return BinOp(op="-", left=term, right=Const(value=-const))


def substitute_induction_vars(
    proc: Procedure,
    inductions: list[InductionVar],
    cfg: CFG | None = None,
    ssa: SSAInfo | None = None,
    dom=None,
) -> list[InductionVar]:
    """Rewrite each recognized update statement's rhs to its closed
    form, in place, and — when ``cfg``/``ssa``/``dom`` are provided —
    also substitute the closed form into every *use* the update
    definition reaches that is dominated by the update (same-iteration
    uses after the increment, e.g. ``D(m)`` in paper Fig. 1, which the
    paper notes "is known to be i+1 via induction variable analysis").

    Returns the list actually rewritten. The caller must re-run the
    analysis pipeline afterwards."""
    from ..ir.expr import clone_expr

    applied: list[InductionVar] = []
    for iv in inductions:
        if ssa is not None and cfg is not None and dom is not None:
            _substitute_uses(proc, iv, cfg, ssa, dom)
        iv.update_stmt.rhs = clone_expr(iv.closed_form)
        applied.append(iv)
    if applied:
        proc.finalize()
    return applied


def _substitute_uses(proc: Procedure, iv: InductionVar, cfg: CFG, ssa: SSAInfo, dom) -> None:
    from ..ir.expr import (
        ArrayElemRef,
        BinOp,
        IntrinsicCall,
        ScalarRef,
        UnOp,
        clone_expr,
    )
    from ..ir.stmt import AssignStmt, IfStmt

    d = ssa.def_of_assignment(iv.update_stmt)
    if d is None:
        return
    update_node = cfg.node_of(iv.update_stmt)
    for use in ssa.reached_uses(d):
        use_node = ssa.node_of_use(use)
        if use_node.stmt is iv.update_stmt:
            continue
        if not dom.strictly_dominates(update_node, use_node):
            continue
        if ssa.reaching_real_defs(use) != {d}:
            continue

        def replace_in(expr):
            if expr is use:
                return clone_expr(iv.closed_form)
            if isinstance(expr, ArrayElemRef):
                expr.subscripts = [replace_in(s) for s in expr.subscripts]
                return expr
            if isinstance(expr, BinOp):
                expr.left = replace_in(expr.left)
                expr.right = replace_in(expr.right)
                return expr
            if isinstance(expr, UnOp):
                expr.operand = replace_in(expr.operand)
                return expr
            if isinstance(expr, IntrinsicCall):
                expr.args = [replace_in(a) for a in expr.args]
                return expr
            return expr

        stmt = use_node.stmt
        if isinstance(stmt, AssignStmt):
            stmt.rhs = replace_in(stmt.rhs)
            if isinstance(stmt.lhs, ArrayElemRef):
                stmt.lhs.subscripts = [replace_in(s) for s in stmt.lhs.subscripts]
        elif isinstance(stmt, IfStmt):
            stmt.cond = replace_in(stmt.cond)
