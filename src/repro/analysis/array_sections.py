"""Array section analysis and automatic array privatizability.

The paper's conclusion: "In the future, we plan to integrate our
mapping techniques with automatic array privatization." This module
implements that integration in the style of Tu & Padua ("Automatic
array privatization", LCPC'93, the paper's reference [18]):

an array ``C`` is *automatically privatizable* with respect to loop
``L`` when

1. every read of ``C`` inside ``L`` is **covered** by a write that
   executes earlier in the same iteration of ``L`` and whose written
   section (per dimension, as symbolic affine bounds over the inner
   loop ranges) contains the read section,
2. the covering writes are unconditional (not nested under an IF), and
3. ``C`` is not live at ``L``'s exit.

Sections are rectangular (per-dimension affine bounds) — the classical
sufficient approximation; anything it cannot prove stays
non-privatizable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cfg import CFG
from ..ir.expr import AffineForm, ArrayElemRef, affine_form
from ..ir.program import Procedure
from ..ir.stmt import AssignStmt, IfStmt, LoopStmt, Stmt
from ..ir.symbols import Symbol
from .dataflow import LivenessInfo


# --------------------------------------------------------------------------
# Symbolic affine bounds
# --------------------------------------------------------------------------


def _form_add(a: AffineForm, b: AffineForm, sign: int = 1) -> AffineForm:
    coeffs: dict[str, tuple] = {}
    for s, c in a.coeffs:
        coeffs[s.name] = (s, c)
    for s, c in b.coeffs:
        prev = coeffs.get(s.name, (s, 0))[1]
        coeffs[s.name] = (s, prev + sign * c)
    items = tuple((s, c) for _, (s, c) in sorted(coeffs.items()) if c != 0)
    return AffineForm(coeffs=items, const=a.const + sign * b.const)


def _substitute_extreme(
    form: AffineForm,
    inner: dict[str, tuple[AffineForm | None, AffineForm | None]],
    want_max: bool,
    depth: int = 0,
) -> AffineForm | None:
    """Replace every *inner* loop variable of ``form`` by the bound that
    extremizes its term, leaving outer symbols in place. Returns None
    when a needed bound is unavailable or the recursion cannot settle."""
    if depth > 8:
        return None
    for symbol, coeff in form.coeffs:
        if symbol.name not in inner:
            continue
        lo, hi = inner[symbol.name]
        pick = hi if (coeff > 0) == want_max else lo
        if pick is None:
            return None
        rest = AffineForm(
            coeffs=tuple((s, c) for s, c in form.coeffs if s.name != symbol.name),
            const=form.const,
        )
        scaled = AffineForm(
            coeffs=tuple((s, c * coeff) for s, c in pick.coeffs),
            const=pick.const * coeff,
        )
        return _substitute_extreme(_form_add(rest, scaled), inner, want_max, depth + 1)
    return form


@dataclass(frozen=True)
class SectionDim:
    """Per-dimension symbolic bounds (inclusive); None = unknown."""

    lo: AffineForm | None
    hi: AffineForm | None

    def contains(self, other: "SectionDim") -> bool:
        """Provably self.lo <= other.lo and other.hi <= self.hi."""
        if self.lo is None or self.hi is None or other.lo is None or other.hi is None:
            return False
        lo_diff = _form_add(other.lo, self.lo, sign=-1)
        hi_diff = _form_add(self.hi, other.hi, sign=-1)
        return (
            lo_diff.is_constant
            and lo_diff.const >= 0
            and hi_diff.is_constant
            and hi_diff.const >= 0
        )


def _inner_loop_bounds(
    ref_stmt: Stmt, loop: LoopStmt
) -> dict[str, tuple[AffineForm | None, AffineForm | None]]:
    """Bounds of the loops between ``loop`` (exclusive) and the
    reference's statement (inclusive)."""
    bounds: dict[str, tuple[AffineForm | None, AffineForm | None]] = {}
    for l in ref_stmt.loops_enclosing():
        if l.level <= loop.level:
            continue
        step_ok = l.step is None or (
            (sf := affine_form(l.step)) is not None and sf.is_constant and sf.const > 0
        )
        if not step_ok:
            bounds[l.var.name] = (None, None)
            continue
        bounds[l.var.name] = (affine_form(l.low), affine_form(l.high))
    return bounds


def ref_section(proc: Procedure, ref: ArrayElemRef, loop: LoopStmt) -> list[SectionDim]:
    """The rectangular section of ``ref`` touched during one iteration
    of ``loop``, as symbolic bounds over loop-invariant symbols."""
    stmt = proc.stmt_of_ref(ref)
    inner = _inner_loop_bounds(stmt, loop)
    section: list[SectionDim] = []
    for sub in ref.subscripts:
        form = affine_form(sub)
        if form is None:
            section.append(SectionDim(lo=None, hi=None))
            continue
        lo = _substitute_extreme(form, inner, want_max=False)
        hi = _substitute_extreme(form, inner, want_max=True)
        section.append(SectionDim(lo=lo, hi=hi))
    return section


# --------------------------------------------------------------------------
# Coverage / privatizability
# --------------------------------------------------------------------------


def _collect_refs(loop: LoopStmt, array: Symbol):
    writes: list[tuple[ArrayElemRef, Stmt]] = []
    reads: list[tuple[ArrayElemRef, Stmt]] = []
    for stmt in loop.walk():
        if stmt is loop:
            continue
        for ref in stmt.defs():
            if isinstance(ref, ArrayElemRef) and ref.symbol.name == array.name:
                writes.append((ref, stmt))
        for ref in stmt.uses():
            if isinstance(ref, ArrayElemRef) and ref.symbol.name == array.name:
                reads.append((ref, stmt))
    return writes, reads


def _top_level_position(loop: LoopStmt, stmt: Stmt) -> int | None:
    """Index of the direct child of ``loop`` containing ``stmt``."""
    for k, child in enumerate(loop.body):
        if any(s is stmt for s in child.walk()):
            return k
    return None


def _under_condition(loop: LoopStmt, stmt: Stmt) -> bool:
    """Is ``stmt`` nested under an IF inside ``loop``?"""
    def search(body: list[Stmt], conditional: bool) -> bool | None:
        for child in body:
            if child is stmt:
                return conditional
            if isinstance(child, IfStmt):
                found = search(child.then_body, True)
                if found is None:
                    found = search(child.else_body, True)
                if found is not None:
                    return found
            elif isinstance(child, LoopStmt):
                found = search(child.body, conditional)
                if found is not None:
                    return found
        return None

    result = search(loop.body, False)
    return bool(result)


def _write_covers_read(
    proc: Procedure,
    loop: LoopStmt,
    write: tuple[ArrayElemRef, Stmt],
    read: tuple[ArrayElemRef, Stmt],
) -> bool:
    write_ref, write_stmt = write
    read_ref, read_stmt = read
    if _under_condition(loop, write_stmt):
        return False
    w_pos = _top_level_position(loop, write_stmt)
    r_pos = _top_level_position(loop, read_stmt)
    if w_pos is None or r_pos is None:
        return False
    if w_pos < r_pos:
        # The write sub-nest completes before the read sub-nest starts:
        # section containment decides.
        w_section = ref_section(proc, write_ref, loop)
        r_section = ref_section(proc, read_ref, loop)
        return all(w.contains(r) for w, r in zip(w_section, r_section))
    if w_pos == r_pos:
        # Same sub-nest: sound only for the identical element written
        # earlier in the same innermost iteration.
        if write_stmt is read_stmt:
            return False
        order = {id(s): k for k, s in enumerate(loop.walk())}
        if order.get(id(write_stmt), 1 << 30) >= order.get(id(read_stmt), 0):
            return False
        return [str(s) for s in write_ref.subscripts] == [
            str(s) for s in read_ref.subscripts
        ]
    return False


def auto_privatizable(
    proc: Procedure,
    cfg: CFG,
    liveness: LivenessInfo,
    array: Symbol,
    loop: LoopStmt,
) -> bool:
    """Can ``array`` be privatized w.r.t. ``loop`` without a NEW clause?
    (See module docstring for the three conditions.)

    The not-live-out condition is discharged by the stronger (and
    easily checkable) requirement that *every* read of the array in the
    procedure is lexically inside ``loop`` — each such read is covered
    by its own iteration's writes, so no value escapes. (Whole-array
    may-liveness is useless here: array element stores never kill the
    array, so a loop that rewrites its work array every iteration still
    looks 'live' around the back edge.)"""
    writes, reads = _collect_refs(loop, array)
    if not writes:
        return False
    for read in reads:
        if not any(_write_covers_read(proc, loop, w, read) for w in writes):
            return False
    # No read of the array anywhere outside the loop.
    inside = {id(s) for s in loop.walk()}
    for stmt in proc.all_stmts():
        if id(stmt) in inside:
            continue
        for ref in stmt.uses():
            if isinstance(ref, ArrayElemRef) and ref.symbol.name == array.name:
                return False
    return True


def auto_privatizable_arrays(
    proc: Procedure, cfg: CFG, liveness: LivenessInfo, loop: LoopStmt
) -> list[Symbol]:
    """All arrays automatically privatizable w.r.t. ``loop``."""
    names = set()
    for stmt in loop.walk():
        for ref in stmt.defs():
            if isinstance(ref, ArrayElemRef):
                names.add(ref.symbol.name)
    result = []
    for name in sorted(names):
        symbol = proc.symbols.require(name)
        if auto_privatizable(proc, cfg, liveness, symbol, loop):
            result.append(symbol)
    return result
