"""Sparse constant propagation over SSA form.

The paper's analysis phase "performs constant propagation and induction
variable recognition" before mapping decisions. We propagate constants
through real defs and phis; the result annotates SSA definitions with
known values and lets loop bounds be evaluated where possible (used by
the performance estimator and the AlignLevel machinery).
"""

from __future__ import annotations

from ..ir.expr import (
    ArrayElemRef,
    BinOp,
    Const,
    Expr,
    IntrinsicCall,
    ScalarRef,
    UnOp,
)
from ..ir.stmt import AssignStmt
from .ssa import SSADef, SSAInfo

#: lattice: "top" (unknown yet) > constant > "bottom" (not constant)
_TOP = object()
_BOTTOM = object()


class ConstPropInfo:
    """Maps SSA definitions to compile-time constant values where known."""

    def __init__(self, ssa: SSAInfo):
        self.ssa = ssa
        self.values: dict[int, object] = {d: _TOP for d in ssa.defs}
        self._run()

    # -- solver -------------------------------------------------------------

    def _run(self) -> None:
        changed = True
        while changed:
            changed = False
            for d in self.ssa.defs.values():
                new = self._evaluate_def(d)
                old = self.values[d.def_id]
                if not self._same(old, new):
                    self.values[d.def_id] = new
                    changed = True

    @staticmethod
    def _same(a: object, b: object) -> bool:
        if a is b:
            return True
        if a in (_TOP, _BOTTOM) or b in (_TOP, _BOTTOM):
            return False
        return a == b

    def _evaluate_def(self, d: SSADef) -> object:
        if d.kind == "entry":
            return _BOTTOM  # uninitialized: unknown value
        if d.kind == "loop":
            return _BOTTOM  # loop index varies
        if d.kind == "phi":
            value: object = _TOP
            for op in d.operands:
                op_value = self.values[op]
                if op_value is _TOP:
                    continue
                if op_value is _BOTTOM:
                    return _BOTTOM
                if value is _TOP:
                    value = op_value
                elif value != op_value:
                    return _BOTTOM
            return value
        # real def
        stmt = d.stmt
        if isinstance(stmt, AssignStmt):
            return self._evaluate_expr(stmt.rhs)
        return _BOTTOM

    def _evaluate_expr(self, expr: Expr) -> object:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, ScalarRef):
            if expr.symbol.value is not None:
                return expr.symbol.value
            def_id = self.ssa.use_def.get(expr.ref_id)
            if def_id is None:
                return _BOTTOM
            return self.values[def_id]
        if isinstance(expr, ArrayElemRef):
            return _BOTTOM
        if isinstance(expr, UnOp):
            value = self._evaluate_expr(expr.operand)
            if value in (_TOP, _BOTTOM):
                return value
            if expr.op == "-":
                return -value
            if expr.op == ".NOT.":
                return not value
            return _BOTTOM
        if isinstance(expr, BinOp):
            left = self._evaluate_expr(expr.left)
            right = self._evaluate_expr(expr.right)
            for v in (left, right):
                if v is _TOP:
                    return _TOP
                if v is _BOTTOM:
                    return _BOTTOM
            return self._fold(expr.op, left, right)
        if isinstance(expr, IntrinsicCall):
            args = [self._evaluate_expr(a) for a in expr.args]
            if any(a is _TOP for a in args):
                return _TOP
            if any(a is _BOTTOM for a in args):
                return _BOTTOM
            return self._fold_intrinsic(expr.name, args)
        return _BOTTOM

    @staticmethod
    def _fold(op: str, left, right) -> object:
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    return _BOTTOM
                if isinstance(left, int) and isinstance(right, int):
                    return int(left / right)  # Fortran truncates toward zero
                return left / right
            if op == "**":
                return left**right
            if op == "==":
                return left == right
            if op == "/=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == ".AND.":
                return bool(left) and bool(right)
            if op == ".OR.":
                return bool(left) or bool(right)
        except (TypeError, OverflowError):
            return _BOTTOM
        return _BOTTOM

    @staticmethod
    def _fold_intrinsic(name: str, args: list) -> object:
        try:
            if name == "ABS":
                return abs(args[0])
            if name == "MAX":
                return max(args)
            if name == "MIN":
                return min(args)
            if name == "MOD":
                return args[0] % args[1]
            if name in ("INT",):
                return int(args[0])
            if name in ("REAL", "FLOAT", "DBLE"):
                return float(args[0])
        except (TypeError, ValueError, ZeroDivisionError):
            return _BOTTOM
        return _BOTTOM

    # -- queries -----------------------------------------------------------------

    def const_of_def(self, d: SSADef):
        """The constant value of a definition, or None."""
        value = self.values.get(d.def_id)
        if value in (_TOP, _BOTTOM):
            return None
        return value

    def const_of_use(self, ref: ScalarRef):
        def_id = self.ssa.use_def.get(ref.ref_id)
        if def_id is None:
            return None
        return self.const_of_def(self.ssa.defs[def_id])

    def eval_expr(self, expr: Expr):
        """Evaluate an expression to a constant using current SSA facts,
        or None."""
        value = self._evaluate_expr(expr)
        if value in (_TOP, _BOTTOM):
            return None
        return value


def propagate_constants(ssa: SSAInfo) -> ConstPropInfo:
    return ConstPropInfo(ssa)
