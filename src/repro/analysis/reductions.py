"""Reduction recognition.

Paper, Section 2.3: scalars computed by reductions (sum, product,
min/max, maxloc) get special mapping treatment — replicated across the
grid dimensions the reduction spans and aligned with the partial-
reduction target reference in the remaining dimensions.

Recognized idioms:

1. accumulation statements  ``s = s + e`` / ``s = s * e`` /
   ``s = MAX(s, e)`` / ``s = MIN(s, e)``;
2. the conditional maxloc/minloc idiom used by DGEFA's partial
   pivoting::

       IF (ABS(A(k,j)) > t) THEN
         t = ABS(A(k,j))
         l = k
       END IF

3. variables named in a loop's ``REDUCTION(...)`` clause are asserted
   to be reductions even if idiom matching fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.expr import (
    ArrayElemRef,
    BinOp,
    Expr,
    IntrinsicCall,
    Ref,
    ScalarRef,
)
from ..ir.program import Procedure
from ..ir.stmt import AssignStmt, IfStmt, LoopStmt, Stmt
from ..ir.symbols import Symbol
from .ssa import SSAInfo


@dataclass
class Reduction:
    """One recognized reduction.

    ``op`` ∈ {"+", "*", "MAX", "MIN", "MAXLOC", "MINLOC"}.
    ``loop`` is the innermost loop carrying the accumulation.
    ``update_stmts`` are the statements forming the reduction body.
    ``candidate_refs`` are partitioned-array rhs references appearing in
    the reduction computation — potential alignment targets for the
    partial-reduction result (paper Fig. 5: ``A(i, j)``).
    ``location_symbol`` is the index variable of a maxloc/minloc.
    ``accumulator`` is set for *array-valued* reductions
    (``S(i) = S(i) + A(i, j)``) — paper Section 3.1: "The privatizable
    arrays used to hold results of a reduction operation are also
    handled in a similar manner as scalar variables in reduction
    computations."
    """

    symbol: Symbol
    op: str
    loop: LoopStmt
    update_stmts: list[AssignStmt] = field(default_factory=list)
    candidate_refs: list[ArrayElemRef] = field(default_factory=list)
    location_symbol: Symbol | None = None
    from_directive: bool = False
    accumulator: ArrayElemRef | None = None

    @property
    def is_array_reduction(self) -> bool:
        return self.accumulator is not None


def _strip_abs(expr: Expr) -> Expr:
    if isinstance(expr, IntrinsicCall) and expr.name == "ABS" and len(expr.args) == 1:
        return expr.args[0]
    return expr


def _scalar_name(expr: Expr) -> str | None:
    if isinstance(expr, ScalarRef):
        return expr.symbol.name
    return None


def _array_refs(expr: Expr) -> list[ArrayElemRef]:
    return [r for r in expr.refs() if isinstance(r, ArrayElemRef)]


def _accumulation_op(stmt: AssignStmt, symbol: Symbol) -> tuple[str, Expr] | None:
    """If ``stmt`` is ``symbol = symbol op e`` (op commutative) or a
    MAX/MIN intrinsic accumulation, return (op, e)."""
    rhs = stmt.rhs
    if isinstance(rhs, BinOp) and rhs.op in ("+", "*"):
        if _scalar_name(rhs.left) == symbol.name:
            return rhs.op, rhs.right
        if _scalar_name(rhs.right) == symbol.name:
            return rhs.op, rhs.left
        # s = s - e  is a sum reduction too
    if isinstance(rhs, BinOp) and rhs.op == "-" and _scalar_name(rhs.left) == symbol.name:
        return "+", rhs.right
    if isinstance(rhs, IntrinsicCall) and rhs.name in ("MAX", "MIN") and len(rhs.args) == 2:
        if _scalar_name(rhs.args[0]) == symbol.name:
            return rhs.name, rhs.args[1]
        if _scalar_name(rhs.args[1]) == symbol.name:
            return rhs.name, rhs.args[0]
    return None


def _defs_of_symbol_in(proc: Procedure, loop: LoopStmt, name: str) -> list[AssignStmt]:
    out = []
    for stmt in loop.walk():
        if isinstance(stmt, AssignStmt) and isinstance(stmt.lhs, ScalarRef):
            if stmt.lhs.symbol.name == name:
                out.append(stmt)
    return out


def _uses_of_symbol_in(loop: LoopStmt, name: str) -> list[tuple[Stmt, ScalarRef]]:
    out = []
    for stmt in loop.walk():
        for ref in stmt.uses():
            if isinstance(ref, ScalarRef) and ref.symbol.name == name:
                out.append((stmt, ref))
    return out


def _find_accumulations(proc: Procedure, ssa: SSAInfo, loop: LoopStmt) -> list[Reduction]:
    found: list[Reduction] = []
    for stmt in loop.body:
        if not isinstance(stmt, AssignStmt) or not isinstance(stmt.lhs, ScalarRef):
            continue
        symbol = stmt.lhs.symbol
        acc = _accumulation_op(stmt, symbol)
        if acc is None:
            continue
        op, contribution = acc
        # contribution must not reference the accumulator
        if any(
            isinstance(r, ScalarRef) and r.symbol.name == symbol.name
            for r in contribution.refs()
        ):
            continue
        # single def of the accumulator inside the loop
        if len(_defs_of_symbol_in(proc, loop, symbol.name)) != 1:
            continue
        # accumulator must not be otherwise read inside the loop
        other_uses = [
            (s, r)
            for s, r in _uses_of_symbol_in(loop, symbol.name)
            if s is not stmt
        ]
        if other_uses:
            continue
        # the rhs use must be loop-carried (sees the header phi)
        rhs_use = next(
            r
            for r in stmt.rhs.refs()
            if isinstance(r, ScalarRef) and r.symbol.name == symbol.name
        )
        seen = ssa.defs.get(ssa.use_def.get(rhs_use.ref_id, -1))
        if seen is None or seen.kind != "phi":
            continue
        found.append(
            Reduction(
                symbol=symbol,
                op=op,
                loop=loop,
                update_stmts=[stmt],
                candidate_refs=_array_refs(contribution),
            )
        )
    return found


def _find_array_accumulations(proc: Procedure, loop: LoopStmt) -> list[Reduction]:
    """Array-valued accumulations ``S(f(outer)) = S(f(outer)) op e``
    whose accumulator subscripts are invariant with respect to the
    reduction loop (so the same element accumulates across the loop's
    iterations)."""
    from ..ir.expr import affine_form

    found: list[Reduction] = []
    for stmt in loop.walk():
        if not isinstance(stmt, AssignStmt) or not isinstance(stmt.lhs, ArrayElemRef):
            continue
        if stmt.loop is None or not (
            stmt.loop is loop or proc.encloses(loop, stmt.loop)
        ):
            continue
        lhs = stmt.lhs
        # Subscripts must not vary with the reduction loop's index.
        invariant = True
        for sub in lhs.subscripts:
            form = affine_form(sub)
            if form is None or form.coeff(loop.var) != 0:
                invariant = False
                break
        if not invariant:
            continue
        # rhs must be 'lhs op contribution' with matching subscripts.
        rhs = stmt.rhs
        acc_str = str(lhs)
        op: str | None = None
        contribution: Expr | None = None
        if isinstance(rhs, BinOp) and rhs.op in ("+", "*"):
            if str(rhs.left) == acc_str:
                op, contribution = rhs.op, rhs.right
            elif str(rhs.right) == acc_str:
                op, contribution = rhs.op, rhs.left
        elif isinstance(rhs, BinOp) and rhs.op == "-" and str(rhs.left) == acc_str:
            op, contribution = "+", rhs.right
        elif (
            isinstance(rhs, IntrinsicCall)
            and rhs.name in ("MAX", "MIN")
            and len(rhs.args) == 2
        ):
            if str(rhs.args[0]) == acc_str:
                op, contribution = rhs.name, rhs.args[1]
            elif str(rhs.args[1]) == acc_str:
                op, contribution = rhs.name, rhs.args[0]
        if op is None or contribution is None:
            continue
        if any(
            isinstance(r, ArrayElemRef) and r.symbol.name == lhs.symbol.name
            for r in contribution.refs()
        ):
            continue
        # The accumulator must have no other write, and no other read,
        # inside the loop.
        clean = True
        for other in loop.walk():
            if other is stmt:
                continue
            for ref in other.defs():
                if isinstance(ref, ArrayElemRef) and ref.symbol.name == lhs.symbol.name:
                    clean = False
            for ref in other.uses():
                if isinstance(ref, ArrayElemRef) and ref.symbol.name == lhs.symbol.name:
                    clean = False
        if not clean:
            continue
        found.append(
            Reduction(
                symbol=lhs.symbol,
                op=op,
                loop=loop,
                update_stmts=[stmt],
                candidate_refs=_array_refs(contribution),
                accumulator=lhs,
            )
        )
    return found


def _find_maxloc(proc: Procedure, loop: LoopStmt) -> list[Reduction]:
    """Match ``IF (cand REL s) THEN s = cand ; l = idx END IF``."""
    found: list[Reduction] = []
    for stmt in loop.body:
        if not isinstance(stmt, IfStmt) or stmt.else_body:
            continue
        cond = stmt.cond
        if not isinstance(cond, BinOp) or cond.op not in (">", ">=", "<", "<="):
            continue
        assigns = [s for s in stmt.then_body if isinstance(s, AssignStmt)]
        if len(assigns) != len(stmt.then_body) or not assigns:
            continue
        # One side of the comparison must be a scalar (the accumulator),
        # the other the candidate expression.
        for acc_side, cand_side in ((cond.right, cond.left), (cond.left, cond.right)):
            name = _scalar_name(acc_side)
            if name is None:
                continue
            value_assign = None
            loc_assign = None
            for a in assigns:
                if isinstance(a.lhs, ScalarRef) and a.lhs.symbol.name == name:
                    value_assign = a
                elif isinstance(a.lhs, ScalarRef):
                    loc_assign = a
            if value_assign is None:
                continue
            # The updated value must equal the candidate expression.
            if str(value_assign.rhs) != str(cand_side):
                continue
            bigger_wins = (cond.op in (">", ">=")) == (acc_side is cond.right)
            op = "MAXLOC" if loc_assign is not None else ("MAX" if bigger_wins else "MIN")
            if loc_assign is not None and not bigger_wins:
                op = "MINLOC"
            found.append(
                Reduction(
                    symbol=value_assign.lhs.symbol,
                    op=op,
                    loop=loop,
                    update_stmts=[value_assign] + ([loc_assign] if loc_assign else []),
                    candidate_refs=_array_refs(_strip_abs(cand_side)),
                    location_symbol=(
                        loc_assign.lhs.symbol if loc_assign is not None else None
                    ),
                )
            )
            break
    return found


def _array_touches_in(loop: LoopStmt, name: str) -> list[Stmt]:
    """Statements in ``loop`` referencing array ``name`` in any way."""
    out = []
    for stmt in loop.walk():
        refs = list(stmt.defs()) + list(stmt.uses())
        if any(isinstance(r, ArrayElemRef) and r.symbol.name == name for r in refs):
            out.append(stmt)
    return out


def _grow_reduction(proc: Procedure, reduction: Reduction) -> None:
    """Extend the reduction loop outward across perfectly-accumulating
    enclosing loops: an enclosing loop whose only definitions and uses
    of the accumulator are the update statements themselves carries the
    same reduction (e.g. TOMCATV's residual max over the whole i/j
    nest)."""
    update_ids = {s.stmt_id for s in reduction.update_stmts}
    loop = reduction.loop
    if reduction.is_array_reduction:
        # Array accumulators: grow while the outer loop touches the
        # accumulator only through the update statement AND the
        # accumulator subscripts stay invariant in the outer loop.
        from ..ir.expr import affine_form

        while loop.loop is not None:
            outer = loop.loop
            touches = _array_touches_in(outer, reduction.symbol.name)
            if {s.stmt_id for s in touches} != update_ids:
                break
            invariant = all(
                (form := affine_form(sub)) is not None
                and form.coeff(outer.var) == 0
                for sub in reduction.accumulator.subscripts
            )
            if not invariant:
                break
            loop = outer
        reduction.loop = loop
        return
    while loop.loop is not None:
        outer = loop.loop
        defs = _defs_of_symbol_in(proc, outer, reduction.symbol.name)
        if {d.stmt_id for d in defs} != update_ids:
            break
        uses = _uses_of_symbol_in(outer, reduction.symbol.name)
        if any(s.stmt_id not in update_ids for s, _ in uses):
            break
        if reduction.location_symbol is not None:
            loc_defs = _defs_of_symbol_in(proc, outer, reduction.location_symbol.name)
            if {d.stmt_id for d in loc_defs} - update_ids:
                break
        loop = outer
    reduction.loop = loop


def find_reductions(proc: Procedure, ssa: SSAInfo) -> list[Reduction]:
    """All recognized reductions in the procedure, innermost-loop first."""
    result: list[Reduction] = []
    seen_array_updates: set[int] = set()
    for loop in proc.loops():
        accs = _find_accumulations(proc, ssa, loop)
        locs = _find_maxloc(proc, loop)
        arrs = [
            r
            for r in _find_array_accumulations(proc, loop)
            if r.update_stmts[0].stmt_id not in seen_array_updates
        ]
        seen_array_updates.update(r.update_stmts[0].stmt_id for r in arrs)
        found = accs + locs + arrs
        for r in found:
            _grow_reduction(proc, r)
        # REDUCTION clause assertions not matched by an idiom.
        matched = {r.symbol.name for r in found}
        for name in loop.reduction_vars:
            if name in matched:
                for r in found:
                    if r.symbol.name == name:
                        r.from_directive = True
                continue
            defs = _defs_of_symbol_in(proc, loop, name)
            if defs:
                symbol = defs[0].lhs.symbol
                result.append(
                    Reduction(
                        symbol=symbol,
                        op="+",
                        loop=loop,
                        update_stmts=defs,
                        candidate_refs=[
                            r for d in defs for r in _array_refs(d.rhs)
                        ],
                        from_directive=True,
                    )
                )
        result.extend(found)
    return result


def reduction_for_def(
    reductions: list[Reduction], stmt: AssignStmt
) -> Reduction | None:
    """The reduction (if any) whose update set contains ``stmt``."""
    for r in reductions:
        if any(s is stmt for s in r.update_stmts):
            return r
    return None
