"""SSA construction and use–def machinery for scalar variables.

The paper (Section 2.2): "phpf uses the SSA representation to associate
a separate mapping decision with each assignment to a scalar" and "given
a use of a scalar variable, all reaching definitions are given an
identical mapping". This module provides exactly the queries that
algorithm needs:

* :meth:`SSAInfo.def_of_use` — the (possibly phi) definition a use sees,
* :meth:`SSAInfo.reaching_real_defs` — real definitions reaching a use,
  expanding phi chains,
* :meth:`SSAInfo.reached_uses` — real uses reached by a definition,
  expanding phi chains,
* :meth:`SSAInfo.is_unique_def` — the ``IsUniqueDef`` predicate of paper
  Figure 3,
* phi-path queries used by privatizability analysis (does the value
  flow through a given loop's header phi, i.e. across iterations?).

Array variables are *not* renamed (standard practice); array analysis
lives in :mod:`repro.analysis.dependence`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..ir.cfg import CFG, CFGNode
from ..ir.expr import ScalarRef
from ..ir.stmt import AssignStmt, LoopStmt, Stmt
from ..ir.symbols import Symbol
from .dataflow import LivenessInfo
from .dominance import DominatorInfo, compute_dominance

_def_counter = itertools.count(1)


@dataclass
class SSADef:
    """One SSA definition of a scalar symbol.

    kind:
      * ``entry`` — implicit definition at procedure entry,
      * ``real``  — an assignment statement (``lhs_ref`` is its lhs),
      * ``loop``  — a loop header's definition of its index variable,
      * ``phi``   — a phi node at a join point.
    """

    symbol: Symbol
    kind: str
    node: CFGNode
    lhs_ref: ScalarRef | None = None
    def_id: int = field(default_factory=lambda: next(_def_counter))
    #: phi operands: definition ids, one per predecessor edge (aligned
    #: with node.preds order)
    operands: list[int] = field(default_factory=list)

    @property
    def is_real(self) -> bool:
        return self.kind == "real"

    @property
    def stmt(self) -> Stmt | None:
        return self.node.stmt

    def __hash__(self) -> int:
        return self.def_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SSADef) and other.def_id == self.def_id

    def __repr__(self) -> str:  # pragma: no cover
        where = f"n{self.node.index}"
        return f"<def {self.symbol.name}#{self.def_id} {self.kind}@{where}>"


class SSAInfo:
    """SSA form of the scalar variables of one procedure.

    The form is *pruned*: a phi for a symbol is placed at a join node
    only when the symbol is live-in there. Pruning matters for the
    paper's algorithm — a same-iteration temporary like ``x`` in Fig. 1
    must not appear to flow around the loop back edge through a dead
    phi, or it would be wrongly classified as non-privatizable.
    """

    def __init__(
        self,
        cfg: CFG,
        dom: DominatorInfo | None = None,
        liveness: LivenessInfo | None = None,
    ):
        self.cfg = cfg
        self.proc = cfg.proc
        self.dom = dom if dom is not None else compute_dominance(cfg)
        self.liveness = liveness if liveness is not None else LivenessInfo(cfg)
        #: def_id -> SSADef
        self.defs: dict[int, SSADef] = {}
        #: ref_id of a scalar *use* -> def_id it sees
        self.use_def: dict[int, int] = {}
        #: ref_id of a real def's lhs ScalarRef -> def_id
        self.def_of_lhs: dict[int, int] = {}
        #: symbol name -> list of def_ids
        self.defs_of_symbol: dict[str, list[int]] = {}
        #: node index -> list of phi def_ids placed there
        self.phis_at: dict[int, list[int]] = {}
        #: def_id -> list of use ref_ids that directly see it
        self.direct_uses: dict[int, list[int]] = {}
        #: use ref_id -> (ScalarRef, CFGNode) for reverse lookup
        self.use_info: dict[int, tuple[ScalarRef, CFGNode]] = {}

        self._build()

    # -- construction -----------------------------------------------------------

    def _scalar_defs_of_node(self, node: CFGNode) -> list[ScalarRef]:
        if node.stmt is None:
            return []
        return [
            ref
            for ref in node.stmt.defs()
            if isinstance(ref, ScalarRef) and ref.symbol.is_scalar
        ]

    def _scalar_uses_of_node(self, node: CFGNode) -> list[ScalarRef]:
        if node.stmt is None:
            return []
        return [
            ref
            for ref in node.stmt.uses()
            if isinstance(ref, ScalarRef) and ref.symbol.is_scalar
        ]

    def _build(self) -> None:
        reachable = {node.index for node in self.dom.rpo}
        # Collect the set of scalar symbols and their def sites.
        def_sites: dict[str, list[CFGNode]] = {}
        symbols: dict[str, Symbol] = {}
        for node in self.dom.rpo:
            for ref in self._scalar_defs_of_node(node):
                def_sites.setdefault(ref.symbol.name, []).append(node)
                symbols[ref.symbol.name] = ref.symbol
            for ref in self._scalar_uses_of_node(node):
                symbols.setdefault(ref.symbol.name, ref.symbol)

        # Entry definitions (version 0) for every scalar.
        entry_defs: dict[str, SSADef] = {}
        for name, symbol in symbols.items():
            d = SSADef(symbol=symbol, kind="entry", node=self.cfg.entry)
            self.defs[d.def_id] = d
            self.defs_of_symbol.setdefault(name, []).append(d.def_id)
            entry_defs[name] = d

        # Pruned phi placement: iterated dominance frontier of the def
        # sites, restricted to joins where the symbol is live-in.
        phi_nodes: dict[tuple[str, int], SSADef] = {}
        for name, sites in def_sites.items():
            sites_with_entry = sites + [self.cfg.entry]
            for node_index in self.dom.iterated_frontier(sites_with_entry):
                if node_index not in reachable:
                    continue
                if name not in self.liveness.live_in.get(node_index, frozenset()):
                    continue
                node = self.cfg.nodes[node_index]
                phi = SSADef(symbol=symbols[name], kind="phi", node=node)
                self.defs[phi.def_id] = phi
                self.defs_of_symbol.setdefault(name, []).append(phi.def_id)
                self.phis_at.setdefault(node_index, []).append(phi.def_id)
                phi_nodes[(name, node_index)] = phi

        # Renaming via dominator-tree walk.
        stacks: dict[str, list[int]] = {
            name: [entry_defs[name].def_id] for name in symbols
        }

        def current(name: str) -> int:
            return stacks[name][-1]

        def visit(node: CFGNode) -> None:
            pushed: list[str] = []
            # Phis at this node define before anything else.
            for def_id in self.phis_at.get(node.index, ()):
                phi = self.defs[def_id]
                stacks[phi.symbol.name].append(def_id)
                pushed.append(phi.symbol.name)
            # Uses see the current reaching definition.
            for ref in self._scalar_uses_of_node(node):
                def_id = current(ref.symbol.name)
                self.use_def[ref.ref_id] = def_id
                self.direct_uses.setdefault(def_id, []).append(ref.ref_id)
                self.use_info[ref.ref_id] = (ref, node)
            # Real definitions (assignments and loop-index defs).
            for ref in self._scalar_defs_of_node(node):
                kind = "loop" if isinstance(node.stmt, LoopStmt) else "real"
                d = SSADef(symbol=ref.symbol, kind=kind, node=node, lhs_ref=ref)
                self.defs[d.def_id] = d
                self.defs_of_symbol.setdefault(ref.symbol.name, []).append(d.def_id)
                self.def_of_lhs[ref.ref_id] = d.def_id
                stacks[ref.symbol.name].append(d.def_id)
                pushed.append(ref.symbol.name)
            # Fill phi operands of CFG successors.
            for succ in node.succs:
                try:
                    pred_pos = succ.preds.index(node)
                except ValueError:  # pragma: no cover - defensive
                    continue
                for def_id in self.phis_at.get(succ.index, ()):
                    phi = self.defs[def_id]
                    while len(phi.operands) < len(succ.preds):
                        phi.operands.append(0)
                    phi.operands[pred_pos] = current(phi.symbol.name)
            # Recurse into dominator-tree children.
            for child in self.dom.children.get(node.index, ()):
                visit(child)
            for name in reversed(pushed):
                stacks[name].pop()

        visit(self.cfg.entry)
        # Drop unfilled (unreachable-pred) phi operands.
        for d in self.defs.values():
            if d.kind == "phi":
                d.operands = [op for op in d.operands if op != 0]

    # -- queries -----------------------------------------------------------------

    def def_of_use(self, ref: ScalarRef) -> SSADef:
        return self.defs[self.use_def[ref.ref_id]]

    def def_of_assignment(self, stmt: AssignStmt) -> SSADef | None:
        """The SSA definition created by a scalar assignment."""
        if isinstance(stmt.lhs, ScalarRef):
            def_id = self.def_of_lhs.get(stmt.lhs.ref_id)
            return self.defs[def_id] if def_id is not None else None
        return None

    def real_defs(self, symbol_name: str | None = None):
        for d in self.defs.values():
            if d.is_real and (symbol_name is None or d.symbol.name == symbol_name):
                yield d

    def reaching_real_defs(self, ref: ScalarRef) -> set[SSADef]:
        """All non-phi definitions whose value may reach ``ref``,
        expanding phi chains. Entry and loop-index defs are included."""
        start = self.use_def.get(ref.ref_id)
        if start is None:
            return set()
        return self.expand_phis(start)

    def expand_phis(self, def_id: int) -> set[SSADef]:
        result: set[SSADef] = set()
        seen: set[int] = set()
        work = [def_id]
        while work:
            current_id = work.pop()
            if current_id in seen:
                continue
            seen.add(current_id)
            d = self.defs[current_id]
            if d.kind == "phi":
                work.extend(d.operands)
            else:
                result.add(d)
        return result

    def reached_uses(self, d: SSADef) -> list[ScalarRef]:
        """All real uses that may observe the value written by ``d``,
        following phi chains forward."""
        uses: list[ScalarRef] = []
        seen_defs: set[int] = set()
        seen_uses: set[int] = set()
        work = [d.def_id]
        phi_users = self._phi_users()
        while work:
            current_id = work.pop()
            if current_id in seen_defs:
                continue
            seen_defs.add(current_id)
            for ref_id in self.direct_uses.get(current_id, ()):
                if ref_id not in seen_uses:
                    seen_uses.add(ref_id)
                    uses.append(self.use_info[ref_id][0])
            work.extend(phi_users.get(current_id, ()))
        return uses

    def _phi_users(self) -> dict[int, list[int]]:
        if not hasattr(self, "_phi_users_cache"):
            cache: dict[int, list[int]] = {}
            for d in self.defs.values():
                if d.kind == "phi":
                    for op in d.operands:
                        cache.setdefault(op, []).append(d.def_id)
            self._phi_users_cache = cache
        return self._phi_users_cache

    def is_unique_def(self, d: SSADef) -> bool:
        """``IsUniqueDef`` of paper Fig. 3: ``d`` is the only reaching
        definition of every use it reaches."""
        for use in self.reached_uses(d):
            if self.reaching_real_defs(use) != {d}:
                return False
        return True

    # -- phi-path queries (privatizability support) --------------------------------

    def flows_through_phi_at(self, d: SSADef, node: CFGNode) -> bool:
        """Does some value-flow path from ``d`` to a use pass through a
        phi placed at ``node``? For a loop-header node this means the
        value crosses an iteration boundary (or the loop exit merge)."""
        phi_users = self._phi_users()
        seen: set[int] = set()
        work = list(phi_users.get(d.def_id, ()))
        while work:
            current_id = work.pop()
            if current_id in seen:
                continue
            seen.add(current_id)
            phi = self.defs[current_id]
            if phi.node.index == node.index:
                return True
            work.extend(phi_users.get(current_id, ()))
        return False

    def uses_reached_through_phis(self, d: SSADef) -> list[ScalarRef]:
        """Uses of ``d`` that are reached only via at least one phi."""
        direct = set(self.direct_uses.get(d.def_id, ()))
        return [u for u in self.reached_uses(d) if u.ref_id not in direct]

    def stmt_of_use(self, ref: ScalarRef) -> Stmt:
        return self.use_info[ref.ref_id][1].stmt

    def node_of_use(self, ref: ScalarRef) -> CFGNode:
        return self.use_info[ref.ref_id][1]


def build_ssa(
    cfg: CFG,
    dom: DominatorInfo | None = None,
    liveness: LivenessInfo | None = None,
) -> SSAInfo:
    return SSAInfo(cfg, dom=dom, liveness=liveness)
